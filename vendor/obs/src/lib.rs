#![warn(missing_docs)]

//! Vendored, zero-dependency observability layer for the workspace:
//! hierarchical **spans** (RAII timer guards building a nested wall-clock
//! tree with per-span numeric attributes), **counters**, and
//! **log₂-bucketed histograms** with an exact-percentile fallback for small
//! counts, behind one process-global recorder.
//!
//! The build environment has no crates.io access, so instead of `tracing` +
//! `metrics` this crate implements exactly what the APSP suite's layers
//! need, with two hard guarantees:
//!
//! * **Branch-cheap when disabled.** Every instrumentation entry point
//!   starts with a single `Relaxed` atomic load ([`is_enabled`]); when the
//!   recorder is off, [`span`] returns an inert guard, no string is
//!   formatted ([`span_lazy`] never calls its closure), and nothing is
//!   allocated or locked.
//! * **Recording never changes computed output.** Instrumented code paths
//!   read nothing back from the recorder; spans collect into thread-local
//!   buffers that are flushed into the global store only when the thread's
//!   span stack empties, and the store merges by span *path* into ordered
//!   maps with commutative aggregation (sums), so the captured tree is
//!   deterministic regardless of thread interleaving — and enabling tracing
//!   is observationally invisible to the computation itself
//!   (property-tested by the workspace's `tests/obs_determinism.rs`).
//!
//! # Spans
//!
//! A span is opened with [`span`] (or [`span_lazy`]) and closed by dropping
//! the returned [`SpanGuard`]; nesting on one thread builds slash-separated
//! paths (`"theorem-1.1/skeleton"`). Guards carry numeric attributes
//! ([`SpanGuard::attr`]) that are **summed** across all executions of the
//! same path — so a phase's `rounds` attribute accumulates exactly like its
//! wall-clock. Spans opened on pool worker threads form their own roots
//! (the worker has no view of the spawning thread's stack); the pipeline
//! phases themselves run on the driving thread, so the phase tree stays
//! connected.
//!
//! ```
//! cc_obs::reset();
//! cc_obs::enable();
//! {
//!     let mut phase = cc_obs::span("build");
//!     phase.attr("rounds", 3.0);
//!     let _inner = cc_obs::span("spanner");
//!     // both guards drop here: timings + attributes are recorded
//! }
//! cc_obs::disable();
//! let snap = cc_obs::capture();
//! assert_eq!(snap.spans[0].name, "build");
//! assert_eq!(snap.spans[0].attrs, vec![("rounds".to_string(), 3.0)]);
//! assert_eq!(snap.spans[0].children[0].name, "spanner");
//! assert_eq!(snap.spans[0].children[0].path, "build/spanner");
//! ```
//!
//! # Exporters
//!
//! [`capture`] returns a [`Snapshot`] (span tree + counters + histograms +
//! raw events); [`render_text`] formats it as the human-readable metrics
//! report, [`render_json`] as a nested JSON span-tree dump, and
//! [`render_chrome`] as a Chrome-trace-format event file loadable in
//! `chrome://tracing` or Perfetto.
//!
//! # Windowed instruments
//!
//! The [`window`] module adds the live-serving side of the house —
//! [`Gauge`] levels with high-water marks, [`RollingHistogram`] sliding
//! windows over epoch-bucket rings, and the [`FlightRecorder`] ring of
//! recent structured events — as plain owned values driven by an injected
//! clock, independent of the global recorder.

pub mod window;

pub use window::{render_flight_json, FlightEvent, FlightRecorder, Gauge, RollingHistogram};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Values per histogram kept exactly before spilling to buckets: percentile
/// queries on counts up to this are answered from a sorted copy (the same
/// `((len - 1) * q)` index rule the serve loadgen has always used), beyond
/// it from log₂ buckets with 16 linear sub-buckets (≤ 6.25% relative error).
pub const EXACT_CAP: usize = 4096;

/// Linear sub-buckets per power-of-two major bucket.
const SUBS: usize = 16;

/// Bucket count: values `< SUBS` get one exact bucket each; every major
/// `ilog2` level from 4 to 63 gets `SUBS` sub-buckets.
const BUCKETS: usize = SUBS + (64 - 4) * SUBS;

/// A log₂-bucketed histogram of `u64` samples with an exact-percentile
/// fallback for small counts (see [`EXACT_CAP`]).
///
/// Also usable standalone (the serve loadgen reduces its latency lists
/// through one); [`Histogram::merge`] is commutative and associative, so
/// per-thread histograms combine deterministically.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Exact samples, kept until [`EXACT_CAP`]; empty once spilled.
    exact: Vec<u64>,
    /// Bucket counts, allocated lazily on spill ([`BUCKETS`] long).
    buckets: Vec<u64>,
}

/// A histogram is a multiset of samples: two are equal when they hold the
/// same samples, regardless of recording/merge order. (A derived `Eq` would
/// compare the exact-sample vec positionally, and merge order across
/// flushing threads is scheduler-dependent — only the *contents* are
/// deterministic.)
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        let sorted = |h: &Histogram| {
            let mut v = h.exact.clone();
            v.sort_unstable();
            v
        };
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets == other.buckets
            && sorted(self) == sorted(other)
    }
}

impl Eq for Histogram {}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if self.buckets.is_empty() {
            if self.exact.len() < EXACT_CAP {
                self.exact.push(v);
                return;
            }
            self.spill();
        }
        self.buckets[bucket_index(v)] += 1;
    }

    /// Moves the exact samples into buckets (one-way; percentiles become
    /// interpolated from here on).
    fn spill(&mut self) {
        self.buckets = vec![0u64; BUCKETS];
        for &v in &self.exact {
            self.buckets[bucket_index(v)] += 1;
        }
        self.exact.clear();
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) of the recorded samples.
    ///
    /// Exact (nearest-rank on a sorted copy, index `(count - 1) * q`
    /// truncated) while at most [`EXACT_CAP`] samples were recorded;
    /// linearly interpolated inside the matching log₂ sub-bucket after
    /// spilling. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if !self.exact.is_empty() {
            let mut sorted = self.exact.clone();
            sorted.sort_unstable();
            let idx = ((sorted.len() - 1) as f64 * q) as usize;
            return sorted[idx] as f64;
        }
        let rank = (self.count - 1) as f64 * q;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 > rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - cum as f64) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Folds `other` into `self`. Commutative and associative up to the
    /// exact/bucketed representation switch (which only affects percentile
    /// resolution, never counts or sums).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.is_empty()
            && other.buckets.is_empty()
            && self.exact.len() + other.exact.len() <= EXACT_CAP
        {
            self.exact.extend_from_slice(&other.exact);
            return;
        }
        if self.buckets.is_empty() {
            self.spill();
        }
        if other.buckets.is_empty() {
            for &v in &other.exact {
                self.buckets[bucket_index(v)] += 1;
            }
        } else {
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                *mine += theirs;
            }
        }
    }
}

/// Bucket index of a value: values below [`SUBS`] get exact unit buckets;
/// larger values split their `ilog2` level into [`SUBS`] linear sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let major = 63 - v.leading_zeros() as usize; // ilog2, >= 4 here
    let sub = ((v >> (major - 4)) - SUBS as u64) as usize; // 0..SUBS
    SUBS + (major - 4) * SUBS + sub
}

/// Half-open value range `[lo, hi)` covered by a bucket index.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUBS {
        return (i as u64, i as u64 + 1);
    }
    let major = 4 + (i - SUBS) / SUBS;
    let sub = ((i - SUBS) % SUBS) as u64;
    let width = 1u64 << (major - 4);
    let lo = (1u64 << major) + sub * width;
    (lo, lo.saturating_add(width))
}

// ---------------------------------------------------------------------------
// Global recorder state
// ---------------------------------------------------------------------------

/// The one branch every instrumentation entry point takes when disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic thread-id source for Chrome-trace `tid`s (thread 0 = first
/// thread that ever recorded, typically the driver).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Aggregated wall-clock + attributes of one span path.
#[derive(Debug, Clone, Default, PartialEq)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    attrs: BTreeMap<String, f64>,
}

impl SpanStat {
    fn absorb(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (k, v) in &other.attrs {
            *self.attrs.entry(k.clone()).or_insert(0.0) += v;
        }
    }
}

/// One completed span occurrence, for the Chrome-trace exporter.
#[derive(Debug, Clone)]
struct RawEvent {
    path: String,
    tid: u64,
    start: Instant,
    dur_ns: u64,
}

/// The global store: ordered maps keyed by span path / metric name, so the
/// merge order (and hence every export) is deterministic no matter which
/// thread flushed first.
struct Store {
    epoch: Option<Instant>,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<RawEvent>,
}

static STORE: Mutex<Store> = Mutex::new(Store {
    epoch: None,
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    hists: BTreeMap::new(),
    events: Vec::new(),
});

/// Locks the global store, recovering from poisoning: observability must
/// never amplify a crash. A thread that panicked while flushing leaves the
/// store's maps in a valid (at worst partially-merged) state — absorbing
/// into a `BTreeMap` upholds its invariants at every statement — so later
/// recorders and exporters keep working instead of panicking in
/// `.lock().unwrap()`.
fn lock_store() -> std::sync::MutexGuard<'static, Store> {
    STORE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-thread collection state; flushed into [`STORE`] whenever the span
/// stack empties (so the global lock is taken once per span *tree*, not
/// once per span).
struct Tls {
    tid: u64,
    stack: Vec<Frame>,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<RawEvent>,
}

struct Frame {
    name: String,
    start: Instant,
    attrs: Vec<(String, f64)>,
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        spans: BTreeMap::new(),
        counters: BTreeMap::new(),
        hists: BTreeMap::new(),
        events: Vec::new(),
    });
}

/// Turns recording on (idempotent). Sets the trace epoch on first use so
/// Chrome-trace timestamps are relative to the first `enable`.
pub fn enable() {
    let mut store = lock_store();
    if store.epoch.is_none() {
        store.epoch = Some(Instant::now());
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off (idempotent). Already-open spans still record when
/// they close; new ones become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is on — the single `Relaxed` load every
/// instrumentation site is gated on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears everything recorded so far (and this thread's pending buffers)
/// and restarts the trace epoch. Leaves the enabled flag untouched.
pub fn reset() {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.spans.clear();
        tls.counters.clear();
        tls.hists.clear();
        tls.events.clear();
    });
    let mut store = lock_store();
    store.spans.clear();
    store.counters.clear();
    store.hists.clear();
    store.events.clear();
    store.epoch = Some(Instant::now());
}

// ---------------------------------------------------------------------------
// Spans, counters, histograms — the instrumentation API
// ---------------------------------------------------------------------------

/// RAII guard of one open span; dropping it records the elapsed wall-clock
/// under the slash-path of every span open on this thread. Inert (and
/// attribute calls are no-ops) when the recorder was disabled at open time.
///
/// Not `Send`: a guard must drop on the thread that opened it (the span
/// stack is thread-local).
#[must_use = "a span records when the guard drops; binding to _ drops immediately"]
pub struct SpanGuard {
    /// Stack depth of this span's frame (0 = inert guard).
    depth: usize,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` (no-op when disabled). Slashes in `name` would
/// collide with the path separator; use dashes.
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            depth: 0,
            _not_send: PhantomData,
        };
    }
    open_span(name.to_string())
}

/// [`span`] with a lazily built name: `f` is never called when the recorder
/// is disabled, so `span_lazy(|| format!(...))` costs one atomic load on
/// the fast path.
pub fn span_lazy(f: impl FnOnce() -> String) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            depth: 0,
            _not_send: PhantomData,
        };
    }
    open_span(f())
}

fn open_span(name: String) -> SpanGuard {
    let depth = TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.stack.push(Frame {
            name,
            start: Instant::now(),
            attrs: Vec::new(),
        });
        tls.stack.len()
    });
    SpanGuard {
        depth,
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Whether this guard is live (recorder was enabled at open time). Use
    /// to skip computing expensive attribute values.
    pub fn is_active(&self) -> bool {
        self.depth > 0
    }

    /// Attaches (or accumulates, when called twice with one key) a numeric
    /// attribute on this span. Attributes **sum** across executions of the
    /// same span path. No-op on an inert guard.
    pub fn attr(&mut self, key: &str, value: f64) {
        if self.depth == 0 {
            return;
        }
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let depth = self.depth;
            if let Some(frame) = tls.stack.get_mut(depth - 1) {
                match frame.attrs.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v += value,
                    None => frame.attrs.push((key.to_string(), value)),
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            // Locals drop in reverse order, so the frame to close is the
            // top of the stack; tolerate a leaked guard by popping to depth.
            while tls.stack.len() >= self.depth {
                let frame = tls.stack.pop().expect("depth > 0 implies a frame");
                let dur_ns = frame.start.elapsed().as_nanos() as u64;
                let path = tls
                    .stack
                    .iter()
                    .map(|f| f.name.as_str())
                    .chain(std::iter::once(frame.name.as_str()))
                    .collect::<Vec<_>>()
                    .join("/");
                let stat = tls.spans.entry(path.clone()).or_default();
                stat.count += 1;
                stat.total_ns += dur_ns;
                for (k, v) in frame.attrs {
                    *stat.attrs.entry(k).or_insert(0.0) += v;
                }
                let tid = tls.tid;
                tls.events.push(RawEvent {
                    path,
                    tid,
                    start: frame.start,
                    dur_ns,
                });
            }
            if tls.stack.is_empty() {
                flush(&mut tls);
            }
        });
    }
}

/// Adds `delta` to the named counter (no-op when disabled).
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        *tls.counters.entry(name.to_string()).or_insert(0) += delta;
        if tls.stack.is_empty() {
            flush(&mut tls);
        }
    });
}

/// Records one sample into the named global histogram (no-op when
/// disabled).
pub fn record_hist(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.hists.entry(name.to_string()).or_default().record(value);
        if tls.stack.is_empty() {
            flush(&mut tls);
        }
    });
}

/// Merges this thread's pending buffers into the global store.
fn flush(tls: &mut Tls) {
    if tls.spans.is_empty() && tls.counters.is_empty() && tls.hists.is_empty() {
        return;
    }
    let mut store = lock_store();
    for (path, stat) in std::mem::take(&mut tls.spans) {
        store.spans.entry(path).or_default().absorb(&stat);
    }
    for (name, delta) in std::mem::take(&mut tls.counters) {
        *store.counters.entry(name).or_insert(0) += delta;
    }
    for (name, hist) in std::mem::take(&mut tls.hists) {
        store.hists.entry(name).or_default().merge(&hist);
    }
    store.events.append(&mut tls.events);
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// One node of the captured span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Leaf segment of the path.
    pub name: String,
    /// Full slash-path from the root.
    pub path: String,
    /// Times this path completed.
    pub count: u64,
    /// Total wall-clock across all completions, nanoseconds.
    pub total_ns: u64,
    /// Summed attributes, sorted by key.
    pub attrs: Vec<(String, f64)>,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

/// One completed span occurrence with trace-relative timestamps (Chrome
/// trace export).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Full slash-path of the span.
    pub path: String,
    /// Recorder-assigned thread id.
    pub tid: u64,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Everything recorded so far, merged deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Root spans (children nested), sorted by name at every level.
    pub spans: Vec<SpanNode>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Global histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Raw span occurrences in flush order (timing-dependent; only the
    /// Chrome exporter reads these).
    pub events: Vec<TraceEvent>,
}

impl Snapshot {
    /// Depth-first search for a span node by exact path.
    pub fn find(&self, path: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], path: &str) -> Option<&'a SpanNode> {
            for node in nodes {
                if node.path == path {
                    return Some(node);
                }
                if let Some(found) = walk(&node.children, path) {
                    return Some(found);
                }
            }
            None
        }
        walk(&self.spans, path)
    }
}

/// Captures a [`Snapshot`] of everything recorded so far (flushing this
/// thread's completed spans first). Spans still open on other threads are
/// not included — capture after the instrumented work has finished.
pub fn capture() -> Snapshot {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if tls.stack.is_empty() {
            flush(&mut tls);
        }
    });
    let store = lock_store();
    let epoch = store.epoch;
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in &store.spans {
        insert_path(&mut roots, path, stat);
    }
    Snapshot {
        spans: roots,
        counters: store
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect(),
        histograms: store
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        events: store
            .events
            .iter()
            .map(|e| TraceEvent {
                path: e.path.clone(),
                tid: e.tid,
                start_ns: epoch
                    .map(|t0| e.start.saturating_duration_since(t0).as_nanos() as u64)
                    .unwrap_or(0),
                dur_ns: e.dur_ns,
            })
            .collect(),
    }
}

/// Inserts one `path → stat` into the tree, creating zero-count
/// intermediate nodes for paths whose parents never closed. Children stay
/// sorted because the store iterates paths in `BTreeMap` order and sibling
/// prefixes share ordering with their full paths.
fn insert_path(roots: &mut Vec<SpanNode>, path: &str, stat: &SpanStat) {
    let mut nodes = roots;
    let mut prefix = String::new();
    let mut segments = path.split('/').peekable();
    while let Some(segment) = segments.next() {
        if !prefix.is_empty() {
            prefix.push('/');
        }
        prefix.push_str(segment);
        let idx = match nodes.iter().position(|n| n.name == segment) {
            Some(i) => i,
            None => {
                let at = nodes
                    .iter()
                    .position(|n| n.name.as_str() > segment)
                    .unwrap_or(nodes.len());
                nodes.insert(
                    at,
                    SpanNode {
                        name: segment.to_string(),
                        path: prefix.clone(),
                        count: 0,
                        total_ns: 0,
                        attrs: Vec::new(),
                        children: Vec::new(),
                    },
                );
                at
            }
        };
        if segments.peek().is_none() {
            let node = &mut nodes[idx];
            node.count += stat.count;
            node.total_ns += stat.total_ns;
            node.attrs = stat.attrs.iter().map(|(k, &v)| (k.clone(), v)).collect();
        }
        nodes = &mut nodes[idx].children;
    }
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` without trailing noise (JSON-safe: NaN/∞ become
/// 0, which cannot occur from summed wall-clock/attribute values anyway).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".into()
    }
}

/// Human-readable metrics report: the span tree (indented, with counts,
/// total wall-clock, and summed attributes), then counters, then
/// histograms. This is the body a future `ccapsp serve` metrics endpoint
/// returns.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::from("== spans ==\n");
    if snap.spans.is_empty() {
        out.push_str("(none)\n");
    }
    fn walk(out: &mut String, node: &SpanNode, depth: usize) {
        let indent = "  ".repeat(depth);
        let attrs = node
            .attrs
            .iter()
            .map(|(k, v)| format!(" {k}={v:.0}"))
            .collect::<String>();
        out.push_str(&format!(
            "{indent}{name:<width$} x{count:<6} {ms:>10.3} ms{attrs}\n",
            name = node.name,
            width = 28usize.saturating_sub(2 * depth).max(1),
            count = node.count,
            ms = node.total_ns as f64 / 1e6,
        ));
        for child in &node.children {
            walk(out, child, depth + 1);
        }
    }
    for root in &snap.spans {
        walk(&mut out, root, 0);
    }
    out.push_str("== counters ==\n");
    if snap.counters.is_empty() {
        out.push_str("(none)\n");
    }
    for (name, value) in &snap.counters {
        out.push_str(&format!("{name:<30} {value}\n"));
    }
    out.push_str("== histograms ==\n");
    if snap.histograms.is_empty() {
        out.push_str("(none)\n");
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "{name:<30} n={} min={} p50={:.0} p95={:.0} p99={:.0} max={}\n",
            h.count(),
            h.min(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max(),
        ));
    }
    out
}

/// JSON span-tree dump (`cc-obs/v1`): nested spans with `wall_ms` and
/// summed attributes, plus counters and histogram summaries.
pub fn render_json(snap: &Snapshot) -> String {
    fn node_json(node: &SpanNode) -> String {
        let attrs = node
            .attrs
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_number(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let children = node.children.iter().map(node_json).collect::<Vec<_>>();
        format!(
            "{{\"name\":{},\"path\":{},\"count\":{},\"wall_ms\":{},\"attrs\":{{{}}},\"children\":[{}]}}",
            json_string(&node.name),
            json_string(&node.path),
            node.count,
            json_number(node.total_ns as f64 / 1e6),
            attrs,
            children.join(",")
        )
    }
    let spans = snap.spans.iter().map(node_json).collect::<Vec<_>>();
    let counters = snap
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{v}", json_string(k)))
        .collect::<Vec<_>>();
    let hists = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "{}:{{\"count\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_string(k),
                h.count(),
                h.min(),
                h.max(),
                json_number(h.percentile(0.50)),
                json_number(h.percentile(0.95)),
                json_number(h.percentile(0.99)),
            )
        })
        .collect::<Vec<_>>();
    format!(
        "{{\"schema\":\"cc-obs/v1\",\"spans\":[{}],\"counters\":{{{}}},\"histograms\":{{{}}}}}\n",
        spans.join(","),
        counters.join(","),
        hists.join(",")
    )
}

/// Chrome-trace-format event file: one complete (`"ph":"X"`) event per span
/// occurrence, microsecond timestamps relative to the trace epoch. Loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn render_chrome(snap: &Snapshot) -> String {
    let events = snap
        .events
        .iter()
        .map(|e| {
            let name = e.path.rsplit('/').next().unwrap_or(&e.path);
            format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"path\":{}}}}}",
                json_string(name),
                json_number(e.start_ns as f64 / 1e3),
                json_number(e.dur_ns as f64 / 1e3),
                e.tid,
                json_string(&e.path)
            )
        })
        .collect::<Vec<_>>();
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that enable/reset it hold this
    /// lock so they cannot shear each other's captures.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = locked();
        reset();
        disable();
        {
            let mut sp = span("never");
            assert!(!sp.is_active());
            sp.attr("x", 1.0);
        }
        let called = std::cell::Cell::new(false);
        let _sp = span_lazy(|| {
            called.set(true);
            "never".into()
        });
        assert!(!called.get(), "span_lazy must not format when disabled");
        counter("never", 1);
        record_hist("never", 1);
        let snap = capture();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        let _g = locked();
        reset();
        enable();
        for _ in 0..3 {
            let mut outer = span("outer");
            outer.attr("rounds", 2.0);
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        disable();
        let snap = capture();
        assert_eq!(snap.spans.len(), 1);
        let outer = &snap.spans[0];
        assert_eq!((outer.name.as_str(), outer.count), ("outer", 3));
        assert_eq!(outer.path, "outer");
        assert_eq!(outer.attrs, vec![("rounds".to_string(), 6.0)]);
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!((inner.path.as_str(), inner.count), ("outer/inner", 6));
        assert_eq!(snap.find("outer/inner").map(|n| n.count), Some(6));
        assert_eq!(snap.events.len(), 9);
    }

    #[test]
    fn merge_order_is_deterministic_across_thread_interleavings() {
        let _g = locked();
        // Record the same span set from several threads, twice, with
        // different completion orders; the captured trees must be equal
        // (modulo timings, which we zero out).
        fn strip(mut nodes: Vec<SpanNode>) -> Vec<SpanNode> {
            for n in &mut nodes {
                n.total_ns = 0;
                n.children = strip(std::mem::take(&mut n.children));
            }
            nodes
        }
        let run = |order: &'static [usize]| {
            reset();
            enable();
            let handles: Vec<_> = order
                .iter()
                .map(|&i| {
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(i as u64));
                        let mut sp = span_lazy(|| format!("worker-{i}"));
                        sp.attr("shard", i as f64);
                        counter("jobs", 1);
                        record_hist("latency", 10 * (i as u64 + 1));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            disable();
            let snap = capture();
            (strip(snap.spans), snap.counters, snap.histograms)
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(a.1, vec![("jobs".to_string(), 4)]);
        let names: Vec<&str> = a.0.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["worker-0", "worker-1", "worker-2", "worker-3"]);
    }

    #[test]
    fn histogram_small_counts_match_exact_sort() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.50, 0.95, 0.99, 1.0] {
            let idx = ((values.len() - 1) as f64 * q) as usize;
            assert_eq!(h.percentile(q), values[idx] as f64, "q={q}");
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_500.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bucketed_percentiles_track_exact_sort() {
        // A deterministic LCG stream, large enough to spill to buckets;
        // bucketed answers must stay within the sub-bucket resolution
        // (6.25% relative) of the true sorted values.
        let mut h = Histogram::new();
        let mut values = Vec::new();
        let mut x = 88172645463325252u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1_000_000;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99] {
            let exact = values[((values.len() - 1) as f64 * q) as usize] as f64;
            let approx = h.percentile(q);
            let tolerance = exact * 0.0625 + 16.0;
            assert!(
                (approx - exact).abs() <= tolerance,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.percentile(1.0), h.max() as f64);
    }

    #[test]
    fn histogram_merge_is_count_exact_and_order_insensitive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..6000u64 {
            let v = i * 37 % 5000;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for h in [&ab, &ba] {
            assert_eq!(h.count(), whole.count());
            assert_eq!(h.sum(), whole.sum());
            assert_eq!(h.min(), whole.min());
            assert_eq!(h.max(), whole.max());
        }
        assert_eq!(ab.percentile(0.5), ba.percentile(0.5));
        // Merging into an empty histogram preserves the exact path.
        let mut small = Histogram::new();
        small.record(7);
        let mut empty = Histogram::new();
        empty.merge(&small);
        assert_eq!(empty.percentile(0.5), 7.0);
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for v in (0..1000).chain([4095, 4096, 1 << 20, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} i={i} [{lo},{hi})"
            );
            assert!(i < BUCKETS);
        }
    }

    #[test]
    fn exporters_emit_wellformed_documents() {
        let _g = locked();
        reset();
        enable();
        {
            let mut sp = span("pha\"se");
            sp.attr("rounds", 4.0);
            let _inner = span("child");
        }
        counter("queries", 12);
        record_hist("lat_ns", 1234);
        disable();
        let snap = capture();
        let text = render_text(&snap);
        assert!(text.contains("pha\"se"));
        assert!(text.contains("queries"));
        assert!(text.contains("lat_ns"));
        let json = render_json(&snap);
        assert!(json.contains("\"schema\":\"cc-obs/v1\""));
        assert!(json.contains("pha\\\"se"));
        assert!(json.contains("\"rounds\":4.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let chrome = render_chrome(&snap);
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        // Two span occurrences → two complete events.
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn poisoned_store_does_not_kill_the_recorder() {
        let _g = locked();
        reset();
        enable();
        // Poison the global store: a thread panics while holding the lock.
        let poison = std::thread::spawn(|| {
            let _guard = STORE.lock().unwrap();
            panic!("deliberate poison while holding STORE");
        });
        assert!(poison.join().is_err());
        assert!(STORE.is_poisoned());
        // Recording and capture must keep working on the recovered guard.
        counter("survived", 2);
        record_hist("lat_ns", 42);
        {
            let _sp = span("after-poison");
        }
        disable();
        let snap = capture();
        assert_eq!(snap.counters, vec![("survived".to_string(), 2)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
        assert_eq!(snap.spans[0].name, "after-poison");
    }

    #[test]
    fn reset_clears_previous_recordings() {
        let _g = locked();
        reset();
        enable();
        {
            let _sp = span("before");
        }
        reset();
        {
            let _sp = span("after");
        }
        disable();
        let snap = capture();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "after");
    }
}
