//! Time-windowed instruments for live serving telemetry: [`Gauge`],
//! [`RollingHistogram`], and the [`FlightRecorder`] ring of recent
//! structured events.
//!
//! Unlike the process-global recorder in the crate root, these types are
//! plain values the owner embeds and shares explicitly (the serving daemon
//! holds them in its telemetry block) — nothing here touches the global
//! store or the enabled flag, so they are always on and never interact
//! with `--trace` capture.
//!
//! # Injected clocks
//!
//! Every time-dependent operation takes the current time as an explicit
//! `now_ms` argument instead of reading a wall clock. Production callers
//! pass milliseconds since their own epoch (the daemon uses
//! `Instant::elapsed` from boot); tests pass synthetic timestamps, which
//! makes windowed behavior — epoch rollover, ring reuse, rate math —
//! fully deterministic and flake-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{json_string, Histogram};

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time level with a high-water mark: queue depths, live
/// connection counts, batch occupancy. All operations are lock-free
/// (`Relaxed` atomics — gauges are statistics, never synchronization).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the level and advances the high-water mark.
    pub fn add(&self, delta: u64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `delta` from the level, saturating at zero (a release
    /// racing a reset must not wrap to 2⁶⁴).
    pub fn sub(&self, delta: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// Sets the level outright and advances the high-water mark.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.high.fetch_max(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest level ever observed by `add`/`set`.
    pub fn high_water(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// RollingHistogram
// ---------------------------------------------------------------------------

/// A sliding-window histogram: a ring of fixed-width epoch buckets, each a
/// full log₂ [`Histogram`], so any trailing window that is a whole number
/// of epochs can be summarized by merging live buckets ([`Histogram::merge`]
/// is commutative, so windowed merges equal whole-stream merges at epoch
/// boundaries — property-tested in `tests/window_props.rs`).
///
/// Recording is epoch-keyed: a sample lands in the bucket of
/// `now_ms / width_ms`, reclaiming the slot (ring index `epoch % len`) when
/// its previous epoch has scrolled out of the window. A sample older than
/// the epoch currently occupying its slot is dropped — the window it
/// belonged to is gone.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingHistogram {
    width_ms: u64,
    buckets: Vec<EpochBucket>,
}

/// One ring slot: the epoch it currently holds plus that epoch's samples.
#[derive(Debug, Clone, Default, PartialEq)]
struct EpochBucket {
    epoch: u64,
    hist: Histogram,
}

impl RollingHistogram {
    /// A ring of `slots` buckets, each covering `width_ms` milliseconds of
    /// samples (so the longest representable window is `slots × width_ms`).
    ///
    /// # Panics
    ///
    /// Panics when `width_ms` or `slots` is zero.
    pub fn new(width_ms: u64, slots: usize) -> Self {
        assert!(width_ms > 0, "epoch width must be positive");
        assert!(slots > 0, "ring needs at least one slot");
        Self {
            width_ms,
            buckets: vec![EpochBucket::default(); slots],
        }
    }

    /// Epoch bucket width, milliseconds.
    pub fn width_ms(&self) -> u64 {
        self.width_ms
    }

    /// Ring capacity in epochs.
    pub fn slots(&self) -> usize {
        self.buckets.len()
    }

    fn slot_of(&self, epoch: u64) -> usize {
        (epoch % self.buckets.len() as u64) as usize
    }

    /// Records one sample stamped `now_ms`. Samples whose epoch has already
    /// scrolled out of the ring are dropped silently.
    pub fn record(&mut self, now_ms: u64, value: u64) {
        let epoch = now_ms / self.width_ms;
        let slot = self.slot_of(epoch);
        let bucket = &mut self.buckets[slot];
        if bucket.epoch > epoch {
            return; // the slot has been reclaimed by a newer epoch
        }
        if bucket.epoch < epoch {
            bucket.epoch = epoch;
            bucket.hist = Histogram::new();
        }
        bucket.hist.record(value);
    }

    /// Samples recorded in the (possibly partial) epoch containing
    /// `now_ms`.
    pub fn current_epoch_count(&self, now_ms: u64) -> u64 {
        let epoch = now_ms / self.width_ms;
        let bucket = &self.buckets[self.slot_of(epoch)];
        if bucket.epoch == epoch {
            bucket.hist.count()
        } else {
            0
        }
    }

    /// Whether a bucket's epoch falls inside the trailing window of
    /// `window_ms` ending at `now_ms` (the current partial epoch included).
    fn in_window(&self, epoch: u64, now_ms: u64, window_ms: u64) -> bool {
        let now_epoch = now_ms / self.width_ms;
        let span = (window_ms / self.width_ms).max(1);
        epoch <= now_epoch && epoch + span > now_epoch
    }

    /// Merges the buckets of the trailing `window_ms` window into one
    /// [`Histogram`] for percentile queries. `window_ms` is rounded down to
    /// whole epochs (minimum one).
    pub fn window(&self, now_ms: u64, window_ms: u64) -> Histogram {
        let mut merged = Histogram::new();
        for bucket in &self.buckets {
            if bucket.hist.count() > 0 && self.in_window(bucket.epoch, now_ms, window_ms) {
                merged.merge(&bucket.hist);
            }
        }
        merged
    }

    /// Samples in the trailing `window_ms` window (cheaper than
    /// [`RollingHistogram::window`] when only the count is needed).
    pub fn window_count(&self, now_ms: u64, window_ms: u64) -> u64 {
        self.buckets
            .iter()
            .filter(|b| self.in_window(b.epoch, now_ms, window_ms))
            .map(|b| b.hist.count())
            .sum()
    }

    /// The derived rate over the trailing window: samples per second.
    /// This is the QPS read the exposition reports for 1 s/10 s/60 s.
    pub fn rate_per_sec(&self, now_ms: u64, window_ms: u64) -> f64 {
        let window_ms = window_ms.max(self.width_ms);
        self.window_count(now_ms, window_ms) as f64 / (window_ms as f64 / 1e3)
    }

    /// Folds `other` into `self`, bucket-by-epoch: matching epochs merge
    /// their histograms (commutative), a newer epoch reclaims the slot, an
    /// older one is dropped — exactly the single-stream semantics, so
    /// splitting a sample stream across rings and merging equals recording
    /// the whole stream into one ring.
    ///
    /// # Panics
    ///
    /// Panics when the rings disagree on epoch width or slot count.
    pub fn merge(&mut self, other: &RollingHistogram) {
        assert_eq!(self.width_ms, other.width_ms, "epoch widths must match");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "ring sizes must match"
        );
        for theirs in &other.buckets {
            if theirs.hist.count() == 0 && theirs.epoch == 0 {
                continue; // untouched slot
            }
            let slot = self.slot_of(theirs.epoch);
            let mine = &mut self.buckets[slot];
            if mine.epoch == theirs.epoch {
                mine.hist.merge(&theirs.hist);
            } else if mine.epoch < theirs.epoch {
                *mine = theirs.clone();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

/// One structured event in the flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (1-based, never reused).
    pub seq: u64,
    /// Event timestamp, milliseconds on the owner's injected clock.
    pub at_ms: u64,
    /// Machine-readable event kind (`"conn-accept"`, `"overload"`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A bounded ring buffer of recent [`FlightEvent`]s — the last N things
/// that happened before a fault. Wraparound discards the *oldest* events;
/// the newest are never lost (property-tested in `tests/window_props.rs`).
/// Snapshot it on demand (`serve-admin flight-dump`) or on fault.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    state: Mutex<FlightState>,
}

#[derive(Debug, Default)]
struct FlightState {
    next_seq: u64,
    ring: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        // Poison recovery, same rationale as the global store: telemetry
        // must never amplify a crash, and a ring is valid at every push.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one event, evicting the oldest when the ring is full.
    pub fn record(&self, at_ms: u64, kind: &str, detail: impl Into<String>) {
        let mut state = self.lock();
        state.next_seq += 1;
        let seq = state.next_seq;
        if state.ring.len() == self.cap {
            state.ring.pop_front();
        }
        state.ring.push_back(FlightEvent {
            seq,
            at_ms,
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// Events recorded so far (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Events currently in the ring.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Whether nothing has been recorded (or everything has been evicted —
    /// impossible, eviction only happens on insert).
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// The ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.lock().ring.iter().cloned().collect()
    }
}

/// Renders flight events as a `cc-flight/v1` JSON document (same
/// hand-rolled emission style as [`crate::render_json`]; validated by the
/// workspace's shared JSON scanner).
pub fn render_flight_json(events: &[FlightEvent]) -> String {
    let body = events
        .iter()
        .map(|e| {
            format!(
                "{{\"seq\":{},\"at_ms\":{},\"kind\":{},\"detail\":{}}}",
                e.seq,
                e.at_ms,
                json_string(&e.kind),
                json_string(&e.detail)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"schema\":\"cc-flight/v1\",\"count\":{},\"events\":[{}]}}\n",
        events.len(),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 5);
        g.sub(10); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 5);
        g.set(9);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn rolling_histogram_windows_and_rates() {
        let mut r = RollingHistogram::new(1000, 8);
        // Three epochs: 0, 1, 2 — two samples each.
        for epoch in 0u64..3 {
            r.record(epoch * 1000 + 10, 100 * (epoch + 1));
            r.record(epoch * 1000 + 990, 100 * (epoch + 1));
        }
        let now = 2500; // inside epoch 2
        assert_eq!(r.current_epoch_count(now), 2);
        assert_eq!(r.window_count(now, 1000), 2); // epoch 2 only
        assert_eq!(r.window_count(now, 2000), 4); // epochs 1..=2
        assert_eq!(r.window_count(now, 60_000), 6); // everything
        assert_eq!(r.rate_per_sec(now, 1000), 2.0);
        assert_eq!(r.rate_per_sec(now, 2000), 2.0);
        let w = r.window(now, 2000);
        assert_eq!(w.count(), 4);
        assert_eq!(w.min(), 200);
        assert_eq!(w.max(), 300);
    }

    #[test]
    fn rolling_histogram_ring_reclaims_old_epochs() {
        let mut r = RollingHistogram::new(1000, 4);
        r.record(500, 1); // epoch 0
        r.record(4500, 2); // epoch 4 → same slot as epoch 0, reclaims it
        assert_eq!(r.window_count(4500, 60_000), 1);
        assert_eq!(r.window(4500, 60_000).min(), 2);
        // A sample from the evicted epoch is dropped, not resurrected.
        r.record(600, 3);
        assert_eq!(r.window_count(4500, 60_000), 1);
    }

    #[test]
    fn rolling_merge_matches_whole_stream() {
        let mut whole = RollingHistogram::new(100, 16);
        let mut a = RollingHistogram::new(100, 16);
        let mut b = RollingHistogram::new(100, 16);
        for i in 0u64..300 {
            let (ts, v) = (i * 7, i * 13 % 400);
            whole.record(ts, v);
            if i % 2 == 0 {
                a.record(ts, v);
            } else {
                b.record(ts, v);
            }
        }
        a.merge(&b);
        let now = 299 * 7;
        for window in [100, 300, 1000, 1600] {
            assert_eq!(
                a.window(now, window),
                whole.window(now, window),
                "window={window}"
            );
        }
    }

    #[test]
    fn flight_recorder_wraps_keeping_newest() {
        let fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for i in 0..5u64 {
            fr.record(i * 10, "tick", format!("event {i}"));
        }
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.len(), 3);
        let events = fr.snapshot();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest evicted, newest kept, in order"
        );
        assert_eq!(events[2].detail, "event 4");
    }

    #[test]
    fn flight_json_is_balanced_and_escaped() {
        let fr = FlightRecorder::new(4);
        fr.record(1, "conn-drop", "peer \"weird\"\nbytes=2");
        let doc = render_flight_json(&fr.snapshot());
        assert!(doc.contains("\"schema\":\"cc-flight/v1\""));
        assert!(doc.contains("\\\"weird\\\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
