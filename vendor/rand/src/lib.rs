//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++ (public
//! domain, Blackman & Vigna) initialised through SplitMix64, so streams are
//! deterministic per seed — which is all the workloads and tests rely on.
//! The bit streams differ from upstream `rand`'s ChaCha12-based `StdRng`;
//! nothing in this workspace asserts on specific drawn values.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair).
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`). Generic over the
    /// output type like upstream, so `gen_range(1..30)` infers the element
    /// type from context.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        distributions::unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Distribution plumbing behind [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Converts the next word to a uniform `f64` in `[0, 1)` (53 bits).
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types samplable by [`Rng::gen`](super::Rng::gen).
    pub trait Standard: Sized {
        /// Draws one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges samplable by [`Rng::gen_range`](super::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps a word to `[0, span)` by 128-bit widening multiply (unbiased
    /// enough for simulation workloads; avoids modulo skew).
    pub(crate) fn bounded(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + unit_f64(rng) * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            lo + unit_f64(rng) * (hi - lo)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`, this is *not* cryptographic — it only promises
    /// a fixed, high-quality stream per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..4).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..4).map(|_| c.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
