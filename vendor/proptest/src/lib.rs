//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of proptest's API the workspace's tests use:
//! [`Strategy`] over integer ranges, tuples, [`Just`], [`collection::vec`],
//! and [`any`]; the combinators `prop_map` / `prop_flat_map`; and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros driven by a
//! [`ProptestConfig`]. Two deliberate simplifications versus upstream:
//!
//! 1. **No shrinking.** A failing case panics with the case's seed; re-run
//!    with `PROPTEST_SEED=<seed>` to reproduce exactly that input.
//! 2. **Deterministic by default.** Cases derive from a fixed base seed, so
//!    CI runs are reproducible; set `PROPTEST_SEED` to explore a different
//!    stream.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::RngCore as TestRngCore;

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// Run-loop configuration, mirroring the upstream struct-update idiom
/// (`ProptestConfig { cases: 24, ..ProptestConfig::default() }`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; failures are reported by seed
    /// (`PROPTEST_SEED`), never persisted to disk.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Builds a [`VecStrategy`]: each case draws a length from `size`, then
    /// that many elements from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The base seed for a named test's case stream: `PROPTEST_SEED` if set,
/// else a stable hash of the test name.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a, so each test gets its own stream without global state.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the RNG for one case of a property run.
pub fn case_rng(base: u64, case: u32) -> TestRng {
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::base_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::case_rng(base, case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let run = || { $body };
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_compose(n in 2usize..10, pair in (1u64..5, 1u64..5)) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(pair.0 < 5 && pair.1 < 5);
        }

        #[test]
        fn flat_map_respects_dependency(
            (n, v) in (1usize..8).prop_flat_map(|n| (Just(n), collection::vec(0usize..n.max(1), n)))
        ) {
            prop_assert_eq!(v.len(), n);
            for x in v {
                prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        let base = crate::base_seed("some::test");
        let mut a = crate::case_rng(base, 3);
        let mut b = crate::case_rng(base, 3);
        let s = 0u64..1000;
        assert_eq!(
            crate::Strategy::sample(&s, &mut a),
            crate::Strategy::sample(&s, &mut b)
        );
    }
}
