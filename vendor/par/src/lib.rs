#![warn(missing_docs)]

//! Vendored, zero-dependency work-stealing thread pool for the workspace's
//! compute kernels, in the spirit of a small rayon API subset.
//!
//! The build environment has no crates.io access, so instead of rayon this
//! crate implements exactly what the APSP simulator's hot paths need:
//!
//! * [`Pool`] — a fixed-size pool of `std::thread` workers with per-worker
//!   job queues and work stealing, offering **scoped** execution
//!   ([`Pool::scope`]) so jobs may borrow from the caller's stack, plus the
//!   two bulk helpers [`Pool::par_map_collect`] and [`Pool::par_chunks_mut`].
//! * [`ExecPolicy`] — the `Seq | Par(threads)` handle threaded through every
//!   compute layer (`cc_graph::apsp`, `cc_matrix::dense`/`sparse`,
//!   `cc_apsp::pipeline`, …). `Seq` runs plain loops; `Par(k)` runs the same
//!   loops sharded over a `k`-worker pool.
//!
//! # Determinism
//!
//! Every parallel helper performs an **ordered reduction**: shard outputs are
//! collected and recombined in shard-index order, and shard boundaries depend
//! only on `(len, threads)` — never on scheduling. A computation whose
//! per-index work is a pure function therefore produces **bit-identical**
//! output under `Seq` and `Par(k)` for every `k`. The workspace's pipelines
//! rely on this: results must not change with the thread count.
//!
//! # `CC_THREADS`
//!
//! [`ExecPolicy::from_env`] (also [`ExecPolicy::default`]) reads the
//! `CC_THREADS` environment variable once per process: `CC_THREADS=1` forces
//! [`ExecPolicy::Seq`], `CC_THREADS=k` gives `Par(k)`, and when unset (or
//! `0`) the available hardware parallelism is used.
//!
//! # Worked example
//!
//! Scoped jobs may borrow local data; the scope blocks until every spawned
//! job has finished, so the borrows are safe:
//!
//! ```
//! use cc_par::Pool;
//!
//! let pool = Pool::new(4);
//! let input = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
//! let mut squares = vec![0u64; input.len()];
//!
//! // Split the output into halves, each filled by a pool worker that
//! // reads the (shared) input slice.
//! let (lo, hi) = squares.split_at_mut(4);
//! pool.scope(|s| {
//!     let input = &input;
//!     s.spawn(move || {
//!         for (i, out) in lo.iter_mut().enumerate() {
//!             *out = input[i] * input[i];
//!         }
//!     });
//!     s.spawn(move || {
//!         for (i, out) in hi.iter_mut().enumerate() {
//!             *out = input[4 + i] * input[4 + i];
//!         }
//!     });
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25, 36, 49, 64]);
//!
//! // The bulk helper does the sharding and ordered reduction itself:
//! assert_eq!(pool.par_map_collect(4, |i| i * 10), vec![0, 10, 20, 30]);
//! ```

use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased, heap-allocated unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How many shard-jobs each bulk helper creates per pool worker. More shards
/// than workers lets the stealing smooth out uneven per-index costs (e.g.
/// Dijkstra from sources with very different reach).
const SHARDS_PER_THREAD: usize = 4;

/// State shared between a [`Pool`]'s handle and its worker threads.
struct Shared {
    /// One job deque per worker. Owners pop from the front; thieves (other
    /// workers, and threads blocked in [`Pool::scope`]) pop from the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep coordination: `inject` and job completion notify under this
    /// lock so a worker re-checking the queues before waiting cannot miss a
    /// wakeup.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for [`Shared::inject`].
    next_queue: AtomicUsize,
}

impl Shared {
    fn inject(&self, job: Job) {
        let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i].lock().unwrap().push_back(job);
        // Take (and release) the sleep lock before notifying: a worker that
        // observed empty queues is either still holding the lock (and will
        // re-check) or already waiting (and will get the notification).
        drop(self.sleep.lock().unwrap());
        self.wake.notify_all();
    }

    /// Pops a job: the `home` queue from the front, then the others (work
    /// stealing) from the back.
    fn try_pop(&self, home: usize) -> Option<Job> {
        let k = self.queues.len();
        if let Some(job) = self.queues[home % k].lock().unwrap().pop_front() {
            return Some(job);
        }
        for off in 1..k {
            if let Some(job) = self.queues[(home + off) % k].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn any_queued(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn notify_under_lock(&self) {
        drop(self.sleep.lock().unwrap());
        self.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        if let Some(job) = shared.try_pop(home) {
            job();
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.any_queued() {
            continue; // a job arrived between try_pop and the lock
        }
        // The timeout is only a backstop; inject/complete notify under the
        // sleep lock, so wakeups are not lost.
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(100))
            .unwrap();
    }
}

/// Book-keeping for one [`Pool::scope`] invocation.
struct ScopeState {
    pending: AtomicUsize,
    panicked: AtomicBool,
    shared: Arc<Shared>,
}

impl ScopeState {
    fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::Release) == 1 {
            self.shared.notify_under_lock();
        }
    }
}

/// A fixed-size work-stealing thread pool over `std::thread`.
///
/// Workers are spawned once in [`Pool::new`] and parked when idle. All
/// execution goes through [`Pool::scope`]; the bulk helpers
/// [`Pool::par_map_collect`] and [`Pool::par_chunks_mut`] are sharded,
/// deterministically reduced wrappers around it. See the
/// [crate docs](crate) for a worked example.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cc-par-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn cc-par worker thread")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing non-`'static` data
    /// may be spawned, and blocks until **all** spawned jobs have finished
    /// (even if `f` or a job panics — the panic is propagated afterwards).
    ///
    /// While blocked, the calling thread *helps*: it executes queued jobs
    /// instead of idling, which both speeds up the scope and makes nested
    /// scopes (a pool job that itself calls [`Pool::scope`]) deadlock-free.
    pub fn scope<'env, T>(
        &self,
        f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    ) -> T {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shared: Arc::clone(&self.shared),
        });
        let scope = Scope {
            state: Arc::clone(&state),
            shared: &self.shared,
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait for every spawned job; help run queued jobs meanwhile.
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.try_pop(0) {
                job();
                continue;
            }
            let guard = self.shared.sleep.lock().unwrap();
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = self
                .shared
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if state.panicked.load(Ordering::Acquire) {
                    panic!("a job spawned in cc_par::Pool::scope panicked");
                }
                value
            }
        }
    }

    /// Maps `f` over `0..len` in parallel and collects the results **in
    /// index order** (the ordered reduction that makes `Par` runs
    /// bit-identical to `Seq` for pure `f`).
    pub fn par_map_collect<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let parts: Vec<Vec<T>> = self.run_shards(len, |range| range.map(&f).collect());
        parts.into_iter().flatten().collect()
    }

    /// Splits `data` into chunks of `chunk_len` elements and runs
    /// `f(chunk_index, chunk)` on each in parallel. Chunks are disjoint
    /// `&mut` views, so no synchronization is needed inside `f`; the chunk
    /// index identifies the chunk's position (`chunk_index * chunk_len` is
    /// its element offset).
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        self.scope(|s| {
            for (i, piece) in data.chunks_mut(chunk_len).enumerate() {
                let f = &f;
                s.spawn(move || f(i, piece));
            }
        });
    }

    /// Runs `shard(range)` over a deterministic partition of `0..len` and
    /// returns the per-shard outputs in shard order.
    fn run_shards<T, F>(&self, len: usize, shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = shard_ranges(len, self.threads * SHARDS_PER_THREAD);
        let slots: Vec<Mutex<Option<T>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (slot, range) in slots.iter().zip(ranges) {
                let shard = &shard;
                s.spawn(move || {
                    let out = shard(range);
                    *slot.lock().unwrap() = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("cc-par shard job did not run")
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_under_lock();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Deterministic balanced partition of `0..len` into at most `shards`
/// contiguous ranges (fewer when `len < shards`; never an empty range).
fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A handle for spawning borrowed jobs inside [`Pool::scope`]; mirrors
/// `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<ScopeState>,
    shared: &'scope Shared,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` on the pool. The job may borrow anything that outlives the
    /// enclosing [`Pool::scope`] call; the scope blocks until it finishes.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::Relaxed);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            state.complete();
        });
        // SAFETY: `Pool::scope` does not return (or unwind) before `pending`
        // reaches zero, and `complete()` runs strictly after the user
        // closure — including its captured borrows — has been consumed, so
        // no job touches `'scope` data after the scope ends. Extending the
        // lifetime to `'static` is therefore sound; the transmute only
        // changes the trait object's lifetime bound, not its layout.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.inject(job);
    }
}

/// Execution policy handle threaded through every compute layer: run
/// sequentially, or on a work-stealing pool with a fixed thread count.
///
/// The policy is *observationally irrelevant*: all helpers reduce shard
/// outputs in deterministic order, so for pure per-index work the results
/// are bit-identical across policies (see the [crate docs](crate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Plain sequential loops on the calling thread.
    Seq,
    /// Sharded execution on a pool with this many worker threads. Pools are
    /// created on first use and cached per thread count for the process
    /// lifetime. `Par(0)` and `Par(1)` behave like [`ExecPolicy::Seq`].
    Par(usize),
}

impl Default for ExecPolicy {
    /// [`ExecPolicy::from_env`]: the `CC_THREADS` environment default.
    fn default() -> Self {
        Self::from_env()
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Seq => write!(f, "seq"),
            ExecPolicy::Par(k) => write!(f, "par({k})"),
        }
    }
}

impl ExecPolicy {
    /// The process-wide default, read from `CC_THREADS` once and cached:
    /// `1` → `Seq`, `k > 1` → `Par(k)`, unset/`0`/unparsable → the hardware
    /// parallelism ([`std::thread::available_parallelism`]).
    pub fn from_env() -> Self {
        static CACHED: OnceLock<ExecPolicy> = OnceLock::new();
        *CACHED.get_or_init(|| {
            let requested = std::env::var("CC_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&k| k > 0);
            match requested {
                Some(threads) => Self::with_threads(threads),
                None => Self::auto(),
            }
        })
    }

    /// The hardware default: one worker per available core
    /// ([`std::thread::available_parallelism`]), i.e. the policy `0` selects
    /// on every configuration surface (`CC_THREADS=0`, `--threads 0`).
    pub fn auto() -> Self {
        Self::with_threads(std::thread::available_parallelism().map_or(1, |p| p.get()))
    }

    /// `Seq` for `threads <= 1`, `Par(threads)` otherwise.
    pub fn with_threads(threads: usize) -> Self {
        if threads <= 1 {
            ExecPolicy::Seq
        } else {
            ExecPolicy::Par(threads)
        }
    }

    /// Worker count this policy executes with (`Seq` → 1).
    pub fn threads(&self) -> usize {
        match self {
            ExecPolicy::Seq => 1,
            ExecPolicy::Par(k) => (*k).max(1),
        }
    }

    /// The cached pool backing this policy, if it executes in parallel.
    fn pool(&self) -> Option<Arc<Pool>> {
        match self {
            ExecPolicy::Seq | ExecPolicy::Par(0) | ExecPolicy::Par(1) => None,
            ExecPolicy::Par(k) => Some(pool_with_threads(*k)),
        }
    }

    /// Maps `f` over `0..len`, collecting results in index order.
    pub fn map_collect<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.pool() {
            None => (0..len).map(f).collect(),
            Some(pool) => pool.par_map_collect(len, f),
        }
    }

    /// Runs `shard` over a deterministic partition of `0..len` and
    /// concatenates the per-shard output vectors in shard order. Under
    /// `Seq` there is exactly one shard (`0..len`), so a shard body that
    /// streams `range` in order is the sequential algorithm verbatim; shards
    /// may keep per-shard scratch state without synchronization.
    pub fn map_shards_collect<T, F>(&self, len: usize, shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> Vec<T> + Sync,
    {
        match self.pool() {
            None => shard(0..len),
            Some(pool) => {
                let parts = pool.run_shards(len, &shard);
                parts.into_iter().flatten().collect()
            }
        }
    }

    /// [`Pool::par_chunks_mut`] under this policy: disjoint `&mut` chunks of
    /// `chunk_len` elements, each passed to `f(chunk_index, chunk)`.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        match self.pool() {
            None => {
                for (i, piece) in data.chunks_mut(chunk_len).enumerate() {
                    f(i, piece);
                }
            }
            Some(pool) => pool.par_chunks_mut(data, chunk_len, f),
        }
    }

    /// A balanced chunk length (in *elements*) for row-blocked work over
    /// `rows` rows of `row_len` elements each: enough chunks to keep every
    /// worker busy, always a whole number of rows.
    pub fn row_block_len(&self, rows: usize, row_len: usize) -> usize {
        let blocks = (self.threads() * SHARDS_PER_THREAD).max(1);
        rows.div_ceil(blocks).max(1) * row_len.max(1)
    }
}

/// Process-wide pool cache, keyed by thread count, so repeated
/// `ExecPolicy::Par(k)` executions reuse workers instead of respawning them.
fn pool_with_threads(threads: usize) -> Arc<Pool> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().unwrap();
    Arc::clone(
        map.entry(threads)
            .or_insert_with(|| Arc::new(Pool::new(threads))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_collect_matches_sequential_order() {
        let pool = Pool::new(4);
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(pool.par_map_collect(1000, |i| i * i), seq);
    }

    #[test]
    fn scope_jobs_borrow_stack_data() {
        let pool = Pool::new(3);
        let data = vec![5u64; 64];
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(16) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5 * 64);
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let pool = Pool::new(4);
        let mut data = vec![0usize; 103]; // deliberately not a chunk multiple
        pool.par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = ci * 10 + off;
            }
        });
        let expect: Vec<usize> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                s.spawn(move || {
                    // A pool job that itself uses the (same, global) pool.
                    let inner: u64 = ExecPolicy::Par(2)
                        .map_collect(8, |i| i as u64)
                        .into_iter()
                        .sum();
                    total.fetch_add(inner, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 28);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn job_panic_propagates_after_all_jobs_finish() {
        let pool = Pool::new(2);
        pool.scope(|s| {
            s.spawn(|| {});
            s.spawn(|| panic!("boom"));
            s.spawn(|| {});
        });
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 7, 16, 103] {
            for shards in [1usize, 2, 5, 16, 200] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    assert!(!r.is_empty());
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, len, "len={len} shards={shards}");
            }
        }
    }

    #[test]
    fn exec_policy_map_collect_is_policy_independent() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let seq = ExecPolicy::Seq.map_collect(257, f);
        for k in [1usize, 2, 4, 8] {
            assert_eq!(ExecPolicy::with_threads(k).map_collect(257, f), seq);
        }
    }

    #[test]
    fn exec_policy_map_shards_preserves_order() {
        let shard = |r: Range<usize>| r.map(|i| i * 3).collect::<Vec<_>>();
        let seq = ExecPolicy::Seq.map_shards_collect(100, shard);
        assert_eq!(ExecPolicy::Par(4).map_shards_collect(100, shard), seq);
        assert_eq!(seq, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn with_threads_normalizes_degenerate_counts() {
        assert_eq!(ExecPolicy::with_threads(0), ExecPolicy::Seq);
        assert_eq!(ExecPolicy::with_threads(1), ExecPolicy::Seq);
        assert_eq!(ExecPolicy::with_threads(3), ExecPolicy::Par(3));
        assert_eq!(ExecPolicy::Par(1).threads(), 1);
        assert_eq!(ExecPolicy::Seq.to_string(), "seq");
        assert_eq!(ExecPolicy::Par(4).to_string(), "par(4)");
    }

    #[test]
    fn transient_pool_shuts_down_cleanly() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let out = pool.par_map_collect(10, |i| i + 1);
        drop(pool); // joins workers; must not hang
        assert_eq!(out[9], 10);
    }
}
