//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the API subset the `kernels` bench target uses: [`Criterion`]
//! with `sample_size` / `measurement_time` / `warm_up_time` builders,
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It reports mean / min / max wall-clock time
//! per iteration — honest timings, none of upstream's statistics (no outlier
//! analysis, no HTML reports). Set `FAST=1` to cap sampling at one batch for
//! smoke runs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (upstream's identity-barrier).
pub use std::hint::black_box;

/// The benchmark driver: collects samples and prints one summary line per
/// registered function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time run before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let fast = std::env::var("FAST").is_ok_and(|v| v == "1");
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up_time,
            },
            samples: Vec::new(),
        };
        if !fast {
            f(&mut b); // warm-up pass: runs the closure, discards timings
        }
        let samples = if fast { 1 } else { self.sample_size };
        let per_sample = self.measurement_time.max(Duration::from_millis(1)) / samples as u32;
        b.mode = Mode::Measure { per_sample };
        for _ in 0..samples {
            f(&mut b);
        }
        report(name, &b.samples);
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { per_sample: Duration },
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    black_box(routine());
                }
            }
            Mode::Measure { per_sample } => {
                // One sample = the mean over however many iterations fit in
                // the per-sample budget (at least one).
                let start = Instant::now();
                let mut iters = 0u32;
                loop {
                    black_box(routine());
                    iters += 1;
                    if start.elapsed() >= per_sample {
                        break;
                    }
                }
                self.samples.push(start.elapsed() / iters);
            }
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples: bencher closure never called iter)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Groups benchmark functions under a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(6))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
