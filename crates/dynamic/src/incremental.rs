//! Incremental oracle maintenance: apply an [`UpdateBatch`] to a servable
//! `(graph, estimate)` state by recomputing only the rows that can change.
//!
//! # The repair rule
//!
//! For an **exact** estimate (δ = d) on an undirected graph, the affected
//! source set is computed from the batch's changed edges without touching
//! unaffected rows, using two facts about shortest paths:
//!
//! * **Improvement** (`d_new(s,t) < d_old(s,t)`): the new shortest path
//!   must cross some changed edge `{u, v}` at its *new* weight, so
//!   `d_new(s,t) = d_new(s,u) + w_new + d_new(v,t)` for some orientation.
//!   The engine runs Dijkstra from every batch endpoint on the updated
//!   graph (the "bounded Dijkstra from batch endpoints" pass — bounded to
//!   the endpoints, not all sources) and flags `s` iff
//!   `d_new(u,s) + w_new + d_new(v,t) < δ_old(s,t)` for some changed edge
//!   and target. This test is exact: it flags `s` iff some pair improved.
//! * **Deterioration** (`d_new(s,t) > d_old(s,t)`): the *old* shortest
//!   path must have used some changed edge at its *old* weight, so
//!   `δ_old(s,u) + w_old + δ_old(v,t) = δ_old(s,t)` for some orientation —
//!   checked directly on the old estimate. This test is conservative
//!   (ties through the edge also flag `s`), which only ever repairs more
//!   rows than strictly needed.
//!
//! Unaffected rows are *proven* unchanged, so repairing the affected rows
//! with fresh per-source Dijkstra (the same kernel
//! [`cc_graph::apsp::exact_apsp_with`] builds full matrices from) yields an
//! estimate **bit-identical** to a from-scratch rebuild on the post-update
//! graph — the invariant `tests/dynamic_props.rs` pins across graph
//! families, thread counts, and kernel modes.
//!
//! When the affected fraction exceeds
//! [`DynamicConfig::repair_fraction`], or the estimate is an approximate
//! pipeline artifact (whose global random structure per-row repair cannot
//! reproduce), the engine falls back to a full pipeline re-entry through
//! [`crate::rebuild::run_algorithm`] with the original algorithm, seed,
//! and config — so the output is the same either way, only the wall-clock
//! differs.

use cc_apsp::landmark::LandmarkSketch;
use cc_apsp::oracle::OracleBackend;
use cc_graph::apsp::exact_rows_with;
use cc_graph::{DistMatrix, Graph, NodeId, Weight, INF};
use cc_matrix::engine::KernelMode;
use cc_par::ExecPolicy;

use crate::delta::{backend_state_fingerprint, Delta, DeltaStrategy};
use crate::rebuild::run_algorithm;
use crate::update::{EdgeChange, UpdateBatch, UpdateError};

/// Tuning knobs for [`IncrementalOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Fall back to a full rebuild when more than this fraction of rows is
    /// affected (repairing most of the matrix row-by-row is slower than
    /// one bulk rebuild).
    pub repair_fraction: f64,
    /// Execution policy for the repair Dijkstras, the affected-set scan,
    /// and the rebuild pipelines. Wall-clock only.
    pub exec: ExecPolicy,
    /// Kernel dispatch for the rebuild pipelines. Wall-clock only.
    pub kernel: KernelMode,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            repair_fraction: 0.25,
            exec: ExecPolicy::from_env(),
            kernel: KernelMode::from_env(),
        }
    }
}

/// Why a batch took the rebuild path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// The affected fraction exceeded [`DynamicConfig::repair_fraction`].
    Churn,
    /// The estimate is an approximate pipeline artifact; per-row repair
    /// cannot reproduce its global random structure bit-for-bit.
    Approximate,
}

/// How one [`IncrementalOracle::apply`] call was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyStrategy {
    /// Per-source repair of the affected rows.
    Repaired {
        /// Rows the affected-set scan flagged (and recomputed).
        affected: usize,
    },
    /// Full pipeline re-entry on the post-update graph.
    Rebuilt {
        /// What forced the rebuild.
        reason: RebuildReason,
    },
}

/// The result of applying one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyOutcome {
    /// Repair or rebuild, with detail.
    pub strategy: ApplyStrategy,
    /// Edges the canonical batch effectively changed.
    pub changed_edges: usize,
    /// The durable delta: canonical batch + the estimate rows that
    /// actually changed, with base/result fingerprints.
    pub delta: Delta,
}

/// Lifetime counters of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicStats {
    /// Batches served by per-row repair.
    pub repairs: u64,
    /// Batches served by full rebuild.
    pub rebuilds: u64,
}

/// A dynamic-graph oracle: the current `(graph, estimate)` state plus the
/// machinery to move it forward by update batches.
///
/// ```
/// use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
/// use cc_dynamic::update::{EdgeOp, UpdateBatch};
/// use cc_graph::graph::{Direction, Graph};
/// use cc_graph::apsp;
///
/// let g = Graph::from_edges(4, Direction::Undirected,
///     &[(0, 1, 5), (1, 2, 2), (2, 3, 2)]);
/// let mut oracle = IncrementalOracle::new(
///     g.clone(), apsp::exact_apsp(&g), "exact", 7, DynamicConfig::default());
///
/// // A shortcut edge appears; the engine repairs only the affected rows…
/// let batch = UpdateBatch::new(vec![EdgeOp::Insert(0, 3, 1)]);
/// let outcome = oracle.apply(&batch).expect("valid batch");
///
/// // …and the result is bit-identical to recomputing from scratch.
/// assert_eq!(oracle.estimate(), &apsp::exact_apsp(oracle.graph()));
/// assert_eq!(oracle.estimate().get(0, 3), 1);
/// assert_eq!(outcome.changed_edges, 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalOracle {
    graph: Graph,
    backend: OracleBackend,
    algo: String,
    seed: u64,
    cfg: DynamicConfig,
    stats: DynamicStats,
}

impl IncrementalOracle {
    /// Wraps a servable dense state. `algo` and `seed` are the provenance
    /// of `estimate` (a snapshot's `meta.algo` / `meta.seed`); they
    /// determine whether repair is possible (`"exact"` only) and which
    /// pipeline a rebuild re-enters.
    ///
    /// # Panics
    ///
    /// Panics if graph and estimate dimensions differ.
    pub fn new(
        graph: Graph,
        estimate: DistMatrix,
        algo: &str,
        seed: u64,
        cfg: DynamicConfig,
    ) -> Self {
        Self::with_backend(graph, OracleBackend::Dense(estimate), algo, seed, cfg)
    }

    /// Wraps any servable backend. Landmark backends have no repair path:
    /// every effective batch rebuilds the sketch deterministically from
    /// `(new graph, sketch seed)` and ships a row-free delta.
    ///
    /// # Panics
    ///
    /// Panics if graph and backend dimensions differ.
    pub fn with_backend(
        graph: Graph,
        backend: OracleBackend,
        algo: &str,
        seed: u64,
        cfg: DynamicConfig,
    ) -> Self {
        assert_eq!(
            graph.n(),
            backend.n(),
            "incremental oracle dimension mismatch"
        );
        Self {
            graph,
            backend,
            algo: algo.to_string(),
            seed,
            cfg,
            stats: DynamicStats::default(),
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current backend.
    pub fn backend(&self) -> &OracleBackend {
        &self.backend
    }

    /// The current dense estimate.
    ///
    /// # Panics
    ///
    /// Panics if the backend is a landmark sketch; use [`Self::backend`].
    pub fn estimate(&self) -> &DistMatrix {
        self.backend
            .as_dense()
            .expect("estimate(): landmark backend has no dense matrix")
    }

    /// The algorithm the estimate came from.
    pub fn algo(&self) -> &str {
        &self.algo
    }

    /// Lifetime repair/rebuild counters.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// [`backend_state_fingerprint`] of the current state.
    pub fn fingerprint(&self) -> u64 {
        backend_state_fingerprint(&self.graph, &self.backend)
    }

    /// Whether batches can take the repair path at all: exact dense
    /// estimates on undirected graphs only (see the [module docs](self)).
    pub fn supports_repair(&self) -> bool {
        matches!(self.backend, OracleBackend::Dense(_)) && self.algo == "exact"
    }

    /// Applies a batch: validates + canonicalizes it, computes the affected
    /// rows, repairs or rebuilds, advances the state, and returns the
    /// durable [`Delta`]. The state is untouched on error.
    ///
    /// # Errors
    ///
    /// Any batch validation failure ([`UpdateError`]); also
    /// [`UpdateError::UnknownAlgorithm`] if a rebuild is needed but the
    /// provenance algorithm is not in the dispatch table.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<ApplyOutcome, UpdateError> {
        let n = self.graph.n();
        let base_fingerprint = self.fingerprint();
        let (new_graph, changes) = batch.apply_to(&self.graph)?;
        let canonical = batch.canonicalize();
        if changes.is_empty() {
            // Identity delta; nothing to repair, no counter moves.
            return Ok(ApplyOutcome {
                strategy: ApplyStrategy::Repaired { affected: 0 },
                changed_edges: 0,
                delta: Delta {
                    n,
                    strategy: DeltaStrategy::Repaired,
                    base_fingerprint,
                    result_fingerprint: base_fingerprint,
                    batch: canonical,
                    rows: Vec::new(),
                },
            });
        }
        if let OracleBackend::Landmark(sketch) = &self.backend {
            // No per-row repair for sketches: rebuild deterministically from
            // the sketch's own seed and ship a row-free delta (the receiver
            // rebuilds the same way; see `Delta::apply_backend`).
            let mut sp = cc_obs::span("dyn-rebuild");
            sp.attr("changed_edges", changes.len() as f64);
            let rebuilt = LandmarkSketch::build(&new_graph, sketch.seed(), self.cfg.exec);
            self.graph = new_graph;
            self.backend = OracleBackend::Landmark(rebuilt);
            self.stats.rebuilds += 1;
            return Ok(ApplyOutcome {
                strategy: ApplyStrategy::Rebuilt {
                    reason: RebuildReason::Approximate,
                },
                changed_edges: changes.len(),
                delta: Delta {
                    n,
                    strategy: DeltaStrategy::Rebuilt,
                    base_fingerprint,
                    result_fingerprint: self.fingerprint(),
                    batch: canonical,
                    rows: Vec::new(),
                },
            });
        }

        // Decide the path, producing the new estimate without touching the
        // current one (the delta needs the old rows to diff against, and
        // errors must leave the state intact).
        let repairable = if !self.supports_repair() {
            Err(RebuildReason::Approximate)
        } else {
            let (affected, endpoints, endpoint_rows) = self.affected_sources(&new_graph, &changes);
            if affected.len() as f64 > self.cfg.repair_fraction * n as f64 {
                Err(RebuildReason::Churn)
            } else {
                Ok((affected, endpoints, endpoint_rows))
            }
        };
        let (strategy, new_estimate) = match repairable {
            Ok((affected, endpoints, endpoint_rows)) => {
                let mut sp = cc_obs::span("dyn-repair");
                sp.attr("affected_rows", affected.len() as f64);
                sp.attr("changed_edges", changes.len() as f64);
                // Endpoint rows were already computed on the new graph for
                // the affected-set scan; Dijkstra only the rest.
                let fresh: Vec<NodeId> = affected
                    .iter()
                    .copied()
                    .filter(|s| endpoints.binary_search(s).is_err())
                    .collect();
                let fresh_rows = exact_rows_with(&new_graph, &fresh, self.cfg.exec);
                let mut est = self.estimate().clone();
                for (&s, row) in endpoints.iter().zip(&endpoint_rows) {
                    est.row_mut(s).copy_from_slice(row);
                }
                for (&s, row) in fresh.iter().zip(&fresh_rows) {
                    est.row_mut(s).copy_from_slice(row);
                }
                (
                    ApplyStrategy::Repaired {
                        affected: affected.len(),
                    },
                    est,
                )
            }
            Err(reason) => {
                // The re-entered pipeline's phase spans nest under this one.
                let mut sp = cc_obs::span("dyn-rebuild");
                sp.attr("changed_edges", changes.len() as f64);
                let (estimate, _bound, _rounds) = run_algorithm(
                    &new_graph,
                    &self.algo,
                    self.seed,
                    self.cfg.exec,
                    self.cfg.kernel,
                )?;
                (ApplyStrategy::Rebuilt { reason }, estimate)
            }
        };

        // Record only the rows that actually changed: canonical, minimal,
        // and independent of which path produced them (a repaired row may
        // equal the old one — the affected set is conservative — and is
        // then dropped from the delta).
        let rows: Vec<(NodeId, Vec<Weight>)> = (0..n)
            .filter(|&s| new_estimate.row(s) != self.estimate().row(s))
            .map(|s| (s, new_estimate.row(s).to_vec()))
            .collect();
        self.graph = new_graph;
        self.backend = OracleBackend::Dense(new_estimate);
        match strategy {
            ApplyStrategy::Repaired { .. } => self.stats.repairs += 1,
            ApplyStrategy::Rebuilt { .. } => self.stats.rebuilds += 1,
        }
        Ok(ApplyOutcome {
            strategy,
            changed_edges: changes.len(),
            delta: Delta {
                n,
                strategy: match strategy {
                    ApplyStrategy::Repaired { .. } => DeltaStrategy::Repaired,
                    ApplyStrategy::Rebuilt { .. } => DeltaStrategy::Rebuilt,
                },
                base_fingerprint,
                result_fingerprint: self.fingerprint(),
                batch: canonical,
                rows,
            },
        })
    }

    /// The sources whose estimate row can differ between the old and new
    /// graphs; see the [module docs](self) for the two tests and why their
    /// union is a superset of the truly-changed rows. Also returns the
    /// batch endpoints and their freshly computed post-update rows so the
    /// repair pass can reuse them instead of re-running those Dijkstras.
    fn affected_sources(
        &self,
        new_graph: &Graph,
        changes: &[EdgeChange],
    ) -> (Vec<NodeId>, Vec<NodeId>, Vec<Vec<Weight>>) {
        let n = self.graph.n();
        // One Dijkstra per distinct batch endpoint, on the updated graph.
        let mut endpoints: Vec<NodeId> = changes.iter().flat_map(|c| [c.u, c.v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let endpoint_rows = exact_rows_with(new_graph, &endpoints, self.cfg.exec);
        let row_of = |x: NodeId| -> &[Weight] {
            &endpoint_rows[endpoints.binary_search(&x).expect("endpoint present")]
        };

        let old = self.estimate();
        // Each change needs exactly one of the two tests: an edge whose
        // weight went *up* (or away) cannot create a strictly shorter path
        // — any new shortest path through only such edges would have been
        // at least as short before — and an edge whose weight went *down*
        // (or appeared) cannot break an old shortest path — paths through
        // it only got shorter. So increases/deletes run the deterioration
        // test at the old weight, decreases/inserts the improvement test
        // at the new weight.
        enum Scan<'a> {
            /// `(u, v, w_old, δ_old row of u, δ_old row of v)`
            Deteriorate(NodeId, NodeId, Weight, &'a [Weight], &'a [Weight]),
            /// `(w_new, d_new row of u, d_new row of v)`
            Improve(Weight, &'a [Weight], &'a [Weight]),
        }
        let scans: Vec<Scan> = changes
            .iter()
            .map(|c| match (c.old, c.new) {
                (Some(w_old), None) => {
                    Scan::Deteriorate(c.u, c.v, w_old, old.row(c.u), old.row(c.v))
                }
                (Some(w_old), Some(w_new)) if w_new > w_old => {
                    Scan::Deteriorate(c.u, c.v, w_old, old.row(c.u), old.row(c.v))
                }
                (_, Some(w_new)) => Scan::Improve(w_new, row_of(c.u), row_of(c.v)),
                (None, None) => unreachable!("apply_to drops no-op changes"),
            })
            .collect();
        let flags: Vec<bool> = self.cfg.exec.map_shards_collect(n, |sources| {
            sources
                .map(|s| {
                    let row_s = old.row(s);
                    for scan in &scans {
                        match *scan {
                            // δ_old(s,·) is symmetric on undirected exact
                            // estimates, so row reads stand in for column
                            // reads throughout.
                            // Plain adds stand in for `wadd` in both
                            // loops: every operand is at most INF
                            // (= u64::MAX/4), so sums cannot wrap, and a
                            // sum with an INF operand is ≥ INF — never
                            // equal to a finite d_st and never < d_st ≤
                            // INF — exactly the saturating semantics,
                            // minus the branch.
                            Scan::Deteriorate(u, v, w_old, row_u, row_v) => {
                                let a_uv = row_s[u] + w_old;
                                let a_vu = row_s[v] + w_old;
                                for t in 0..n {
                                    let d_st = row_s[t];
                                    if d_st < INF
                                        && (a_uv + row_v[t] == d_st || a_vu + row_u[t] == d_st)
                                    {
                                        return true;
                                    }
                                }
                            }
                            Scan::Improve(w_new, new_u, new_v) => {
                                let b_uv = new_u[s] + w_new;
                                let b_vu = new_v[s] + w_new;
                                for t in 0..n {
                                    let d_st = row_s[t];
                                    if b_uv + new_v[t] < d_st || b_vu + new_u[t] < d_st {
                                        return true;
                                    }
                                }
                            }
                        }
                    }
                    false
                })
                .collect()
        });
        let mut affected: Vec<NodeId> = flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(s, _)| s)
            .collect();
        // Endpoints ride along: their rows are already computed and always
        // worth refreshing.
        for &x in &endpoints {
            if !flags[x] {
                affected.push(x);
            }
        }
        affected.sort_unstable();
        (affected, endpoints, endpoint_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{random_batch, EdgeOp, MutationProfile};
    use cc_graph::apsp::exact_apsp;
    use cc_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_engine(n: usize, seed: u64, cfg: DynamicConfig) -> IncrementalOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.15, 1..=20, &mut rng);
        let e = exact_apsp(&g);
        IncrementalOracle::new(g, e, "exact", seed, cfg)
    }

    #[test]
    fn repair_matches_rebuild_for_single_ops() {
        let mut oracle = exact_engine(30, 1, DynamicConfig::default());
        for batch in [
            UpdateBatch::new(vec![EdgeOp::Insert(0, 29, 1)]),
            UpdateBatch::new(vec![EdgeOp::Reweight(0, 29, 7)]),
            UpdateBatch::new(vec![EdgeOp::Delete(0, 29)]),
        ] {
            oracle.apply(&batch).expect("valid batch");
            assert_eq!(
                oracle.estimate(),
                &exact_apsp(oracle.graph()),
                "batch {batch:?}"
            );
        }
        assert_eq!(oracle.stats().repairs + oracle.stats().rebuilds, 3);
    }

    #[test]
    fn repair_matches_rebuild_for_random_batches() {
        let mut oracle = exact_engine(36, 2, DynamicConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..6 {
            let batch = random_batch(oracle.graph(), 4, MutationProfile::TopologyHeavy, &mut rng);
            let outcome = oracle.apply(&batch).expect("valid batch");
            assert_eq!(
                oracle.estimate(),
                &exact_apsp(oracle.graph()),
                "step {step} ({:?})",
                outcome.strategy
            );
        }
    }

    #[test]
    fn empty_batch_is_an_identity_delta() {
        let mut oracle = exact_engine(16, 3, DynamicConfig::default());
        let before = oracle.fingerprint();
        let outcome = oracle.apply(&UpdateBatch::default()).expect("empty ok");
        assert_eq!(outcome.changed_edges, 0);
        assert_eq!(outcome.delta.base_fingerprint, before);
        assert_eq!(outcome.delta.result_fingerprint, before);
        assert!(outcome.delta.rows.is_empty());
        assert_eq!(oracle.stats(), DynamicStats::default());
    }

    #[test]
    fn zero_repair_fraction_forces_rebuild_with_identical_output() {
        let forced = DynamicConfig {
            repair_fraction: 0.0,
            ..Default::default()
        };
        let always_repair = DynamicConfig {
            repair_fraction: 1.0,
            ..Default::default()
        };
        let mut rebuilt = exact_engine(28, 4, forced);
        let mut repaired = exact_engine(28, 4, always_repair);
        let batch = random_batch(
            rebuilt.graph(),
            2,
            MutationProfile::ReweightHeavy,
            &mut StdRng::seed_from_u64(42),
        );
        let a = rebuilt.apply(&batch).expect("rebuild path");
        let b = repaired.apply(&batch).expect("repair path");
        assert!(matches!(
            a.strategy,
            ApplyStrategy::Rebuilt {
                reason: RebuildReason::Churn
            }
        ));
        assert!(matches!(b.strategy, ApplyStrategy::Repaired { .. }));
        assert_eq!(rebuilt.estimate(), repaired.estimate());
        // Identical deltas up to the strategy provenance field.
        assert_eq!(a.delta.batch, b.delta.batch);
        assert_eq!(a.delta.rows, b.delta.rows);
        assert_eq!(a.delta.base_fingerprint, b.delta.base_fingerprint);
        assert_eq!(a.delta.result_fingerprint, b.delta.result_fingerprint);
        assert_eq!(rebuilt.stats().rebuilds, 1);
        assert_eq!(repaired.stats().repairs, 1);
    }

    #[test]
    fn approximate_estimates_always_rebuild() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp_connected(24, 0.2, 1..=9, &mut rng);
        let (est, _, _) = run_algorithm(
            &g,
            "spanner",
            5,
            ExecPolicy::from_env(),
            KernelMode::from_env(),
        )
        .unwrap();
        let mut oracle = IncrementalOracle::new(g, est, "spanner", 5, DynamicConfig::default());
        assert!(!oracle.supports_repair());
        let batch = UpdateBatch::new(vec![EdgeOp::Insert(0, 23, 3)]);
        let outcome = oracle.apply(&batch).expect("valid");
        assert!(matches!(
            outcome.strategy,
            ApplyStrategy::Rebuilt {
                reason: RebuildReason::Approximate
            }
        ));
        // The rebuilt estimate is exactly what a fresh pipeline run gives.
        let (direct, _, _) = run_algorithm(
            oracle.graph(),
            "spanner",
            5,
            ExecPolicy::from_env(),
            KernelMode::from_env(),
        )
        .unwrap();
        assert_eq!(oracle.estimate(), &direct);
        assert_eq!(oracle.stats().rebuilds, 1);
    }

    #[test]
    fn delta_replays_onto_an_untouched_copy() {
        let mut oracle = exact_engine(26, 6, DynamicConfig::default());
        let base_graph = oracle.graph().clone();
        let base_estimate = oracle.estimate().clone();
        let batch = random_batch(
            &base_graph,
            3,
            MutationProfile::TopologyHeavy,
            &mut StdRng::seed_from_u64(17),
        );
        let outcome = oracle.apply(&batch).expect("valid");
        let (g2, e2) = outcome
            .delta
            .apply(&base_graph, &base_estimate)
            .expect("replays");
        assert_eq!(&g2, oracle.graph());
        assert_eq!(&e2, oracle.estimate());
    }

    #[test]
    fn landmark_backends_rebuild_with_row_free_replayable_deltas() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::gnp_connected(30, 0.15, 1..=20, &mut rng);
        let sketch = LandmarkSketch::build(&g, 9, ExecPolicy::Seq);
        let mut oracle = IncrementalOracle::with_backend(
            g.clone(),
            OracleBackend::Landmark(sketch),
            "landmark",
            9,
            DynamicConfig::default(),
        );
        assert!(!oracle.supports_repair());
        let base_graph = oracle.graph().clone();
        let base_backend = oracle.backend().clone();

        let batch = UpdateBatch::new(vec![EdgeOp::Insert(0, 29, 1), EdgeOp::Insert(5, 25, 2)]);
        let outcome = oracle.apply(&batch).expect("valid batch");
        assert!(matches!(
            outcome.strategy,
            ApplyStrategy::Rebuilt {
                reason: RebuildReason::Approximate
            }
        ));
        assert!(outcome.delta.rows.is_empty(), "sketch deltas ship no rows");
        assert_eq!(oracle.stats().rebuilds, 1);

        // The new state is exactly a fresh deterministic build…
        let expect = LandmarkSketch::build(oracle.graph(), 9, ExecPolicy::Seq);
        assert_eq!(oracle.backend(), &OracleBackend::Landmark(expect));
        // …and the delta replays onto an untouched copy of the base state.
        let (g2, b2) = outcome
            .delta
            .apply_backend(&base_graph, &base_backend)
            .expect("replays");
        assert_eq!(&g2, oracle.graph());
        assert_eq!(&b2, oracle.backend());

        // Empty batches stay identity deltas with no counter moves.
        let before = oracle.fingerprint();
        let idle = oracle.apply(&UpdateBatch::default()).expect("empty ok");
        assert_eq!(idle.changed_edges, 0);
        assert_eq!(idle.delta.result_fingerprint, before);
        assert_eq!(oracle.stats().rebuilds, 1);
    }

    #[test]
    #[should_panic(expected = "landmark backend has no dense matrix")]
    fn estimate_accessor_panics_on_landmark_backend() {
        let g = Graph::from_edges(3, cc_graph::graph::Direction::Undirected, &[(0, 1, 1)]);
        let sketch = LandmarkSketch::build(&g, 1, ExecPolicy::Seq);
        let oracle = IncrementalOracle::with_backend(
            g,
            OracleBackend::Landmark(sketch),
            "landmark",
            1,
            DynamicConfig::default(),
        );
        let _ = oracle.estimate();
    }

    #[test]
    fn failed_batches_leave_the_state_untouched() {
        let mut oracle = exact_engine(14, 7, DynamicConfig::default());
        let before = oracle.fingerprint();
        let bad = UpdateBatch::new(vec![EdgeOp::Insert(0, 99, 1)]);
        assert!(oracle.apply(&bad).is_err());
        assert_eq!(oracle.fingerprint(), before);
        assert_eq!(oracle.stats(), DynamicStats::default());
    }

    #[test]
    fn disconnecting_updates_produce_inf_rows() {
        // A path graph cut in the middle: the far side becomes unreachable
        // and the repaired rows must say so.
        let g = Graph::from_edges(
            4,
            cc_graph::graph::Direction::Undirected,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1)],
        );
        let e = exact_apsp(&g);
        let mut oracle = IncrementalOracle::new(g, e, "exact", 0, DynamicConfig::default());
        oracle
            .apply(&UpdateBatch::new(vec![EdgeOp::Delete(1, 2)]))
            .expect("valid");
        assert_eq!(oracle.estimate(), &exact_apsp(oracle.graph()));
        assert_eq!(oracle.estimate().get(0, 3), INF);
        assert_eq!(oracle.estimate().get(0, 1), 1);
    }
}
