#![warn(missing_docs)]

//! **cc-dynamic** — the dynamic update engine: the write path of the
//! serving stack.
//!
//! Every pipeline in the workspace assumes a frozen graph; this crate makes
//! the servable `(graph, estimate)` state *move*. The shape follows the
//! related congested-clique literature — the paper's constant-approximation
//! estimates tolerate bounded local perturbation, and the CDKL/Dory–Parter
//! line recomputes only sparse skeleton structure after a change — which is
//! exactly the contract here: touch only what an update batch can affect,
//! and prove the result equals a from-scratch rebuild.
//!
//! * [`update`] — [`UpdateBatch`](update::UpdateBatch)es of
//!   `Insert`/`Delete`/`Reweight` ops with deterministic canonicalization
//!   (dedupe, last-write-wins, stable order) and typed validation;
//! * [`incremental`] —
//!   [`IncrementalOracle`](incremental::IncrementalOracle), which applies a
//!   batch by computing the affected source set (Dijkstra from batch
//!   endpoints + old-estimate path tests) and repairing only those rows,
//!   falling back to a full pipeline rebuild past a churn threshold; the
//!   hard invariant is **bit-identical output** either way;
//! * [`delta`] — the section-checksummed `*.ccdelta` format recording
//!   `base fingerprint + batch + repaired rows`, with chain
//!   [`replay`](delta::replay) and [`compact`](delta::compact)ion;
//! * [`rebuild`] — the named-algorithm dispatch table
//!   ([`run_algorithm`](rebuild::run_algorithm)) shared by the CLI and the
//!   rebuild fallback.

pub mod delta;
pub mod incremental;
pub mod rebuild;
pub mod update;

pub use delta::{backend_state_fingerprint, state_fingerprint, Delta, DeltaError, DeltaStrategy};
pub use incremental::{ApplyOutcome, ApplyStrategy, DynamicConfig, IncrementalOracle};
pub use update::{EdgeOp, MutationProfile, UpdateBatch, UpdateError};
