//! Delta snapshots: the durable form of one applied update batch.
//!
//! A [`Delta`] records everything needed to move a servable state
//! `(graph, estimate)` forward by one batch — and to *prove* it moved to
//! the right place:
//!
//! * the [`state_fingerprint`] of the base state it applies to,
//! * the canonical [`UpdateBatch`],
//! * the estimate rows that changed (whether repaired row-by-row or taken
//!   from a full rebuild),
//! * the fingerprint of the resulting state.
//!
//! The file form (conventionally `*.ccdelta`) uses the same framing style
//! as the `*.ccsnap` snapshot format: magic, format version, section count,
//! then length-prefixed FNV-1a-checksummed sections:
//!
//! ```text
//! magic "CCDELTA\n" (8 bytes)
//! format version      u32
//! section count       u32
//! per section: tag u32 · payload length u64 · FNV-1a checksum u64 · payload
//! ```
//!
//! Sections: header (n, strategy, base/result fingerprints), batch (ops),
//! rows (repaired row indices + entries). Serialization is canonical, and
//! [`Delta::apply`] verifies **both** fingerprints, so a delta can neither
//! be applied to the wrong base nor silently produce a wrong result.
//!
//! Chains compose: [`replay`] folds `state + delta*` forward, and
//! [`compact`] collapses a chain into one equivalent delta whose batch is
//! the canonical base→final diff and whose rows carry the final values.

use cc_apsp::landmark::LandmarkSketch;
use cc_apsp::oracle::OracleBackend;
use cc_graph::graph::Direction;
use cc_graph::{DistMatrix, Graph, NodeId, Weight};
use cc_par::ExecPolicy;

use crate::update::{EdgeOp, UpdateBatch, UpdateError};

/// File magic: identifies a delta regardless of format version.
pub const MAGIC: [u8; 8] = *b"CCDELTA\n";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

const SEC_HEAD: u32 = 1;
const SEC_BATCH: u32 = 2;
const SEC_ROWS: u32 = 3;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_REWEIGHT: u8 = 3;

/// FNV-1a 64-bit hash (the same function the snapshot format checksums
/// with, re-implemented here so `cc_dynamic` stays independent of the
/// serving crate).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Word-wise FNV-1a accumulator: each `u64` is one absorption step.
/// Hashing the estimate per word instead of per byte keeps the two
/// fingerprint computations in every delta application well under the cost
/// of a single repaired row.
struct WordHasher(u64);

impl WordHasher {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn absorb(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Content fingerprint of a servable state: word-wise FNV-1a over a
/// canonical encoding of the graph (n, direction, sorted edge triples) and
/// the estimate (row-major entries). Two states agree iff their graphs and
/// estimates are identical, independent of how either was produced — which
/// is exactly the identity delta chains are checked against.
pub fn state_fingerprint(graph: &Graph, estimate: &DistMatrix) -> u64 {
    let mut h = WordHasher::new();
    absorb_graph(&mut h, graph);
    for &d in estimate.raw() {
        h.absorb(d);
    }
    h.0
}

fn absorb_graph(h: &mut WordHasher, graph: &Graph) {
    h.absorb(graph.n() as u64);
    h.absorb(match graph.direction() {
        Direction::Undirected => 0,
        Direction::Directed => 1,
    });
    for (u, v, w) in graph.edges() {
        h.absorb(u as u64);
        h.absorb(v as u64);
        h.absorb(w);
    }
}

/// Backend-aware [`state_fingerprint`]: identical to the dense fingerprint
/// for `OracleBackend::Dense` (so existing `*.ccdelta` chains and pinned
/// fixtures keep their identities), and a canonical word-wise hash of the
/// sketch's serialized content for `OracleBackend::Landmark` (prefixed with
/// a domain tag so a dense state and a landmark state can never collide by
/// construction).
pub fn backend_state_fingerprint(graph: &Graph, backend: &OracleBackend) -> u64 {
    match backend {
        OracleBackend::Dense(m) => state_fingerprint(graph, m),
        OracleBackend::Landmark(sketch) => {
            let mut h = WordHasher::new();
            absorb_graph(&mut h, graph);
            h.absorb(u64::from_le_bytes(*b"LANDMARK"));
            sketch.fold_words(|w| h.absorb(w));
            h.0
        }
    }
}

/// How the producing engine computed the delta's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStrategy {
    /// Only the affected rows were recomputed.
    Repaired,
    /// The whole estimate was rebuilt (the rows section still carries only
    /// the rows that changed).
    Rebuilt,
}

impl DeltaStrategy {
    /// Machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DeltaStrategy::Repaired => "repaired",
            DeltaStrategy::Rebuilt => "rebuilt",
        }
    }
}

impl std::fmt::Display for DeltaStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One applied batch in durable, verifiable form; see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Node count of the states this delta moves between.
    pub n: usize,
    /// How the rows were produced (provenance only; apply treats both the
    /// same).
    pub strategy: DeltaStrategy,
    /// [`state_fingerprint`] of the base state.
    pub base_fingerprint: u64,
    /// [`state_fingerprint`] of the resulting state.
    pub result_fingerprint: u64,
    /// The canonical batch that was applied.
    pub batch: UpdateBatch,
    /// Replaced estimate rows: `(row index, row values)`, sorted by index.
    pub rows: Vec<(NodeId, Vec<Weight>)>,
}

/// Everything that can go wrong reading or applying a delta.
#[derive(Debug)]
pub enum DeltaError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The input ended before a declared length was satisfied.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Which section failed (`"header"`, `"batch"`, `"rows"`).
        section: &'static str,
    },
    /// Structurally invalid content.
    Malformed(String),
    /// The delta's base fingerprint does not match the state it was
    /// applied to.
    BaseMismatch {
        /// Fingerprint the delta expects.
        expected: u64,
        /// Fingerprint of the state it was given.
        actual: u64,
    },
    /// Applying the batch + rows did not land on the recorded result
    /// fingerprint (a corrupted or hand-edited rows section).
    ResultMismatch {
        /// Fingerprint the delta promises.
        expected: u64,
        /// Fingerprint actually produced.
        actual: u64,
    },
    /// The embedded batch failed validation against the base graph.
    Batch(UpdateError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "i/o error: {e}"),
            DeltaError::BadMagic => write!(f, "not a cc-dynamic delta (bad magic)"),
            DeltaError::UnsupportedVersion(v) => {
                write!(f, "unsupported delta format version {v}")
            }
            DeltaError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated delta: needed {needed} bytes, {available} available"
                )
            }
            DeltaError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            DeltaError::Malformed(what) => write!(f, "malformed delta: {what}"),
            DeltaError::BaseMismatch { expected, actual } => write!(
                f,
                "delta applies to state {expected:016x}, got {actual:016x}"
            ),
            DeltaError::ResultMismatch { expected, actual } => write!(
                f,
                "delta promises result {expected:016x}, produced {actual:016x}"
            ),
            DeltaError::Batch(e) => write!(f, "invalid batch: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Io(e) => Some(e),
            DeltaError::Batch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        DeltaError::Io(e)
    }
}

impl From<UpdateError> for DeltaError {
    fn from(e: UpdateError) -> Self {
        DeltaError::Batch(e)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounded reader turning overruns into [`DeltaError::Truncated`].
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DeltaError> {
        if self.remaining() < n {
            return Err(DeltaError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DeltaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DeltaError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DeltaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Delta {
    /// Serializes to the canonical byte form (see the [module docs](self)).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = Vec::new();
        put_u64(&mut head, self.n as u64);
        head.push(match self.strategy {
            DeltaStrategy::Repaired => 0,
            DeltaStrategy::Rebuilt => 1,
        });
        put_u64(&mut head, self.base_fingerprint);
        put_u64(&mut head, self.result_fingerprint);

        let mut batch = Vec::new();
        put_u64(&mut batch, self.batch.ops.len() as u64);
        for op in &self.batch.ops {
            match *op {
                EdgeOp::Insert(u, v, w) => {
                    batch.push(OP_INSERT);
                    put_u64(&mut batch, u as u64);
                    put_u64(&mut batch, v as u64);
                    put_u64(&mut batch, w);
                }
                EdgeOp::Delete(u, v) => {
                    batch.push(OP_DELETE);
                    put_u64(&mut batch, u as u64);
                    put_u64(&mut batch, v as u64);
                }
                EdgeOp::Reweight(u, v, w) => {
                    batch.push(OP_REWEIGHT);
                    put_u64(&mut batch, u as u64);
                    put_u64(&mut batch, v as u64);
                    put_u64(&mut batch, w);
                }
            }
        }

        let mut rows = Vec::with_capacity(8 + self.rows.len() * (8 + 8 * self.n));
        put_u64(&mut rows, self.rows.len() as u64);
        for (idx, row) in &self.rows {
            put_u64(&mut rows, *idx as u64);
            for &d in row {
                put_u64(&mut rows, d);
            }
        }

        let sections = [(SEC_HEAD, head), (SEC_BATCH, batch), (SEC_ROWS, rows)];
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, sections.len() as u32);
        for (tag, payload) in &sections {
            put_u32(&mut out, *tag);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, fnv1a(payload));
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a delta, validating magic, version, per-section checksums,
    /// and structural invariants.
    ///
    /// # Errors
    ///
    /// Every decoding failure maps to a specific [`DeltaError`] variant; no
    /// input panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DeltaError> {
        let mut cur = Cursor::new(data);
        if cur.take(MAGIC.len())? != MAGIC {
            return Err(DeltaError::BadMagic);
        }
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(DeltaError::UnsupportedVersion(version));
        }
        let section_count = cur.u32()?;
        let mut head_payload: Option<&[u8]> = None;
        let mut batch_payload: Option<&[u8]> = None;
        let mut rows_payload: Option<&[u8]> = None;
        for _ in 0..section_count {
            let tag = cur.u32()?;
            let len = cur.u64()? as usize;
            let checksum = cur.u64()?;
            let payload = cur.take(len)?;
            let (slot, name) = match tag {
                SEC_HEAD => (&mut head_payload, "header"),
                SEC_BATCH => (&mut batch_payload, "batch"),
                SEC_ROWS => (&mut rows_payload, "rows"),
                other => {
                    return Err(DeltaError::Malformed(format!(
                        "unknown section tag {other}"
                    )))
                }
            };
            if fnv1a(payload) != checksum {
                return Err(DeltaError::ChecksumMismatch { section: name });
            }
            if slot.replace(payload).is_some() {
                return Err(DeltaError::Malformed(format!("duplicate {name} section")));
            }
        }
        if cur.remaining() != 0 {
            return Err(DeltaError::Malformed(format!(
                "{} trailing bytes after the last section",
                cur.remaining()
            )));
        }
        let (n, strategy, base_fingerprint, result_fingerprint) = decode_head(
            head_payload.ok_or_else(|| DeltaError::Malformed("missing header section".into()))?,
        )?;
        let batch = decode_batch(
            batch_payload.ok_or_else(|| DeltaError::Malformed("missing batch section".into()))?,
        )?;
        let rows = decode_rows(
            rows_payload.ok_or_else(|| DeltaError::Malformed("missing rows section".into()))?,
            n,
        )?;
        Ok(Delta {
            n,
            strategy,
            base_fingerprint,
            result_fingerprint,
            batch,
            rows,
        })
    }

    /// Writes the delta to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), DeltaError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a delta from `path`.
    ///
    /// # Errors
    ///
    /// I/O and decoding errors; see [`Delta::from_bytes`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, DeltaError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data)
    }

    /// Applies the delta to a base state, verifying the base fingerprint
    /// before touching anything and the result fingerprint after. The
    /// returned state is fully constructed before the caller sees it, so a
    /// blue/green swap can never expose a half-applied update.
    ///
    /// # Errors
    ///
    /// [`DeltaError::BaseMismatch`] when applied to the wrong state,
    /// [`DeltaError::Batch`] when the embedded batch does not validate,
    /// [`DeltaError::ResultMismatch`] when the recorded rows do not
    /// reproduce the promised result.
    pub fn apply(
        &self,
        graph: &Graph,
        estimate: &DistMatrix,
    ) -> Result<(Graph, DistMatrix), DeltaError> {
        let actual = state_fingerprint(graph, estimate);
        if actual != self.base_fingerprint {
            return Err(DeltaError::BaseMismatch {
                expected: self.base_fingerprint,
                actual,
            });
        }
        if graph.n() != self.n {
            return Err(DeltaError::Malformed(format!(
                "delta is for n={}, state has n={}",
                self.n,
                graph.n()
            )));
        }
        let (new_graph, _changes) = self.batch.apply_to(graph)?;
        let mut new_estimate = estimate.clone();
        for (idx, row) in &self.rows {
            new_estimate.row_mut(*idx).copy_from_slice(row);
        }
        let produced = state_fingerprint(&new_graph, &new_estimate);
        if produced != self.result_fingerprint {
            return Err(DeltaError::ResultMismatch {
                expected: self.result_fingerprint,
                actual: produced,
            });
        }
        Ok((new_graph, new_estimate))
    }

    /// Backend-aware [`Delta::apply`]: the dense arm is exactly `apply`
    /// (same verification, same result); the landmark arm applies the batch
    /// to the graph and **rebuilds the sketch** from `(new graph, sketch
    /// seed)` — sketch construction is a deterministic pure function of
    /// those two, which is why a landmark delta ships no rows — then
    /// verifies the result fingerprint like any other link.
    ///
    /// # Errors
    ///
    /// As [`Delta::apply`]; additionally [`DeltaError::Malformed`] when a
    /// delta carrying dense rows is applied to a landmark backend.
    pub fn apply_backend(
        &self,
        graph: &Graph,
        backend: &OracleBackend,
    ) -> Result<(Graph, OracleBackend), DeltaError> {
        match backend {
            OracleBackend::Dense(estimate) => {
                let (g, e) = self.apply(graph, estimate)?;
                Ok((g, OracleBackend::Dense(e)))
            }
            OracleBackend::Landmark(sketch) => {
                let actual = backend_state_fingerprint(graph, backend);
                if actual != self.base_fingerprint {
                    return Err(DeltaError::BaseMismatch {
                        expected: self.base_fingerprint,
                        actual,
                    });
                }
                if graph.n() != self.n {
                    return Err(DeltaError::Malformed(format!(
                        "delta is for n={}, state has n={}",
                        self.n,
                        graph.n()
                    )));
                }
                if !self.rows.is_empty() {
                    return Err(DeltaError::Malformed(
                        "delta carries dense rows but the state is a landmark sketch".into(),
                    ));
                }
                let (new_graph, _changes) = self.batch.apply_to(graph)?;
                let rebuilt =
                    LandmarkSketch::build(&new_graph, sketch.seed(), ExecPolicy::from_env());
                let new_backend = OracleBackend::Landmark(rebuilt);
                let produced = backend_state_fingerprint(&new_graph, &new_backend);
                if produced != self.result_fingerprint {
                    return Err(DeltaError::ResultMismatch {
                        expected: self.result_fingerprint,
                        actual: produced,
                    });
                }
                Ok((new_graph, new_backend))
            }
        }
    }
}

fn decode_head(payload: &[u8]) -> Result<(usize, DeltaStrategy, u64, u64), DeltaError> {
    let mut cur = Cursor::new(payload);
    let n = cur.u64()? as usize;
    let strategy = match cur.u8()? {
        0 => DeltaStrategy::Repaired,
        1 => DeltaStrategy::Rebuilt,
        other => {
            return Err(DeltaError::Malformed(format!(
                "invalid strategy byte {other}"
            )))
        }
    };
    let base = cur.u64()?;
    let result = cur.u64()?;
    if cur.remaining() != 0 {
        return Err(DeltaError::Malformed(
            "trailing bytes in header section".into(),
        ));
    }
    Ok((n, strategy, base, result))
}

fn decode_batch(payload: &[u8]) -> Result<UpdateBatch, DeltaError> {
    let mut cur = Cursor::new(payload);
    let count = cur.u64()? as usize;
    // Cap pre-allocation by the bytes present (17 per op minimum): a lying
    // count must surface as Truncated, not a capacity panic.
    let mut ops = Vec::with_capacity(count.min(cur.remaining() / 17));
    for _ in 0..count {
        let tag = cur.u8()?;
        let u = cur.u64()? as NodeId;
        let v = cur.u64()? as NodeId;
        ops.push(match tag {
            OP_INSERT => EdgeOp::Insert(u, v, cur.u64()?),
            OP_DELETE => EdgeOp::Delete(u, v),
            OP_REWEIGHT => EdgeOp::Reweight(u, v, cur.u64()?),
            other => return Err(DeltaError::Malformed(format!("invalid op tag {other}"))),
        });
    }
    if cur.remaining() != 0 {
        return Err(DeltaError::Malformed(
            "trailing bytes in batch section".into(),
        ));
    }
    Ok(UpdateBatch::new(ops))
}

fn decode_rows(payload: &[u8], n: usize) -> Result<Vec<(NodeId, Vec<Weight>)>, DeltaError> {
    let mut cur = Cursor::new(payload);
    let count = cur.u64()? as usize;
    // Saturating math: a crafted header can declare an absurd n, and the
    // per-row byte estimate must degrade to "no pre-allocation", never
    // overflow (the per-cell reads below then fail as Truncated).
    let per_row = n.saturating_mul(8).saturating_add(8);
    let mut rows = Vec::with_capacity(count.min(cur.remaining() / per_row));
    let mut prev: Option<NodeId> = None;
    for _ in 0..count {
        let idx = cur.u64()? as NodeId;
        if idx >= n {
            return Err(DeltaError::Malformed(format!(
                "row index {idx} out of range for n={n}"
            )));
        }
        if prev.is_some_and(|p| p >= idx) {
            return Err(DeltaError::Malformed(
                "row indices must be strictly increasing".into(),
            ));
        }
        prev = Some(idx);
        let mut row = Vec::with_capacity(n.min(cur.remaining() / 8));
        for _ in 0..n {
            row.push(cur.u64()?);
        }
        rows.push((idx, row));
    }
    if cur.remaining() != 0 {
        return Err(DeltaError::Malformed(
            "trailing bytes in rows section".into(),
        ));
    }
    Ok(rows)
}

/// Replays a delta chain: folds `state + deltas` forward in order, verifying
/// every link's fingerprints.
///
/// # Errors
///
/// The first failing link's [`DeltaError`].
pub fn replay(
    graph: &Graph,
    estimate: &DistMatrix,
    deltas: &[Delta],
) -> Result<(Graph, DistMatrix), DeltaError> {
    let mut g = graph.clone();
    let mut e = estimate.clone();
    for d in deltas {
        let (ng, ne) = d.apply(&g, &e)?;
        g = ng;
        e = ne;
    }
    Ok((g, e))
}

/// Collapses a delta chain into one equivalent delta: the batch is the
/// canonical base→final graph diff, the rows are the union of the chain's
/// row indices carrying the **final** values, and the fingerprints span the
/// whole chain. `apply(base, compact(chain)) == replay(base, chain)`.
///
/// Returns the compacted delta together with the final state.
///
/// # Errors
///
/// Any replay failure; see [`replay`].
pub fn compact(
    graph: &Graph,
    estimate: &DistMatrix,
    deltas: &[Delta],
) -> Result<(Delta, Graph, DistMatrix), DeltaError> {
    let (final_graph, final_estimate) = replay(graph, estimate, deltas)?;
    let mut indices: Vec<NodeId> = deltas
        .iter()
        .flat_map(|d| d.rows.iter().map(|(i, _)| *i))
        .collect();
    indices.sort_unstable();
    indices.dedup();
    let rows: Vec<(NodeId, Vec<Weight>)> = indices
        .into_iter()
        .map(|i| (i, final_estimate.row(i).to_vec()))
        .collect();
    let strategy = if deltas.iter().any(|d| d.strategy == DeltaStrategy::Rebuilt) {
        DeltaStrategy::Rebuilt
    } else {
        DeltaStrategy::Repaired
    };
    let delta = Delta {
        n: graph.n(),
        strategy,
        base_fingerprint: state_fingerprint(graph, estimate),
        result_fingerprint: state_fingerprint(&final_graph, &final_estimate),
        batch: UpdateBatch::diff(graph, &final_graph),
        rows,
    };
    Ok((delta, final_graph, final_estimate))
}

/// Backend-aware [`replay`]: folds `state + deltas` forward with
/// [`Delta::apply_backend`], verifying every link's fingerprints.
///
/// # Errors
///
/// The first failing link's [`DeltaError`].
pub fn replay_backend(
    graph: &Graph,
    backend: &OracleBackend,
    deltas: &[Delta],
) -> Result<(Graph, OracleBackend), DeltaError> {
    let mut g = graph.clone();
    let mut b = backend.clone();
    for d in deltas {
        let (ng, nb) = d.apply_backend(&g, &b)?;
        g = ng;
        b = nb;
    }
    Ok((g, b))
}

/// Backend-aware [`compact`]: the dense arm delegates to `compact`; the
/// landmark arm replays the chain, emits the canonical base→final batch with
/// **no rows** (the receiver rebuilds the sketch deterministically), and
/// spans the chain with backend fingerprints. In both arms
/// `apply_backend(base, compacted) == replay_backend(base, chain)`.
///
/// # Errors
///
/// Any replay failure; see [`replay_backend`].
pub fn compact_backend(
    graph: &Graph,
    backend: &OracleBackend,
    deltas: &[Delta],
) -> Result<(Delta, Graph, OracleBackend), DeltaError> {
    match backend {
        OracleBackend::Dense(estimate) => {
            let (delta, g, e) = compact(graph, estimate, deltas)?;
            Ok((delta, g, OracleBackend::Dense(e)))
        }
        OracleBackend::Landmark(_) => {
            let (final_graph, final_backend) = replay_backend(graph, backend, deltas)?;
            let strategy = if deltas.iter().any(|d| d.strategy == DeltaStrategy::Rebuilt) {
                DeltaStrategy::Rebuilt
            } else {
                DeltaStrategy::Repaired
            };
            let delta = Delta {
                n: graph.n(),
                strategy,
                base_fingerprint: backend_state_fingerprint(graph, backend),
                result_fingerprint: backend_state_fingerprint(&final_graph, &final_backend),
                batch: UpdateBatch::diff(graph, &final_graph),
                rows: Vec::new(),
            };
            Ok((delta, final_graph, final_backend))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::apsp;
    use cc_graph::graph::Direction;

    fn state() -> (Graph, DistMatrix) {
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 3), (1, 2, 1), (2, 3, 4), (3, 4, 2), (0, 4, 9)],
        );
        let e = apsp::exact_apsp(&g);
        (g, e)
    }

    /// A hand-built delta moving `state()` forward by one reweight, rows
    /// recomputed exactly.
    fn sample_delta() -> (Delta, Graph, DistMatrix) {
        let (g, e) = state();
        let batch = UpdateBatch::new(vec![EdgeOp::Reweight(0, 1, 1)]).canonicalize();
        let (ng, _) = batch.apply_to(&g).unwrap();
        let ne = apsp::exact_apsp(&ng);
        let rows: Vec<(NodeId, Vec<Weight>)> = (0..5)
            .filter(|&i| e.row(i) != ne.row(i))
            .map(|i| (i, ne.row(i).to_vec()))
            .collect();
        assert!(!rows.is_empty());
        let delta = Delta {
            n: 5,
            strategy: DeltaStrategy::Repaired,
            base_fingerprint: state_fingerprint(&g, &e),
            result_fingerprint: state_fingerprint(&ng, &ne),
            batch,
            rows,
        };
        (delta, ng, ne)
    }

    #[test]
    fn round_trips_through_bytes() {
        let (delta, _, _) = sample_delta();
        let bytes = delta.to_bytes();
        let back = Delta::from_bytes(&bytes).expect("decode");
        assert_eq!(back, delta);
        assert_eq!(back.to_bytes(), bytes, "canonical form must be stable");
    }

    #[test]
    fn apply_verifies_and_produces_the_recorded_state() {
        let (delta, ng, ne) = sample_delta();
        let (g, e) = state();
        let (got_g, got_e) = delta.apply(&g, &e).expect("applies");
        assert_eq!(got_g, ng);
        assert_eq!(got_e, ne);
        // Wrong base: apply to the *result* state.
        assert!(matches!(
            delta.apply(&got_g, &got_e),
            Err(DeltaError::BaseMismatch { .. })
        ));
        // Corrupted rows: flip one value; result fingerprint must catch it.
        let mut bad = delta.clone();
        bad.rows[0].1[0] ^= 1;
        assert!(matches!(
            bad.apply(&g, &e),
            Err(DeltaError::ResultMismatch { .. })
        ));
    }

    #[test]
    fn state_fingerprint_distinguishes_graph_and_estimate() {
        let (g, e) = state();
        let fp = state_fingerprint(&g, &e);
        let mut e2 = e.clone();
        e2.set(0, 1, 99);
        assert_ne!(fp, state_fingerprint(&g, &e2));
        let g2 = Graph::from_edges(5, Direction::Undirected, &[(0, 1, 3)]);
        assert_ne!(fp, state_fingerprint(&g2, &e));
        assert_eq!(fp, state_fingerprint(&g.clone(), &e.clone()));
    }

    #[test]
    fn bad_magic_version_and_corruption_are_typed() {
        let (delta, _, _) = sample_delta();
        let bytes = delta.to_bytes();
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Delta::from_bytes(&bad), Err(DeltaError::BadMagic)));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            Delta::from_bytes(&bad),
            Err(DeltaError::UnsupportedVersion(99))
        ));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(
            Delta::from_bytes(&bad),
            Err(DeltaError::ChecksumMismatch { section: "rows" })
        ));
        let mut bad = bytes;
        bad.push(0);
        assert!(matches!(
            Delta::from_bytes(&bad),
            Err(DeltaError::Malformed(_))
        ));
    }

    #[test]
    fn absurd_header_n_errors_instead_of_panicking() {
        // A correctly-checksummed frame whose header declares n = 2^61 - 1:
        // the rows decoder's pre-allocation estimate must saturate (not
        // overflow) and the decode must fail cleanly, not abort.
        let mut head = Vec::new();
        put_u64(&mut head, (1u64 << 61) - 1);
        head.push(0); // Repaired
        put_u64(&mut head, 0);
        put_u64(&mut head, 0);
        let mut batch = Vec::new();
        put_u64(&mut batch, 0);
        let mut rows = Vec::new();
        put_u64(&mut rows, 1); // one row claimed, no bytes behind it
        let sections = [(SEC_HEAD, head), (SEC_BATCH, batch), (SEC_ROWS, rows)];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION);
        put_u32(&mut bytes, sections.len() as u32);
        for (tag, payload) in &sections {
            put_u32(&mut bytes, *tag);
            put_u64(&mut bytes, payload.len() as u64);
            put_u64(&mut bytes, fnv1a(payload));
            bytes.extend_from_slice(payload);
        }
        assert!(matches!(
            Delta::from_bytes(&bytes),
            Err(DeltaError::Truncated { .. })
        ));
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let (delta, _, _) = sample_delta();
        let bytes = delta.to_bytes();
        for len in 0..bytes.len() {
            let err = Delta::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, DeltaError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    fn landmark_state(seed: u64) -> (Graph, OracleBackend) {
        let (g, _) = state();
        let sketch = LandmarkSketch::build(&g, seed, ExecPolicy::Seq);
        (g, OracleBackend::Landmark(sketch))
    }

    /// A landmark delta: batch only, no rows; result = deterministic
    /// sketch rebuild on the updated graph.
    fn landmark_delta(
        g: &Graph,
        b: &OracleBackend,
        ops: Vec<EdgeOp>,
    ) -> (Delta, Graph, OracleBackend) {
        let seed = b.as_landmark().unwrap().seed();
        let batch = UpdateBatch::new(ops).canonicalize();
        let (ng, _) = batch.apply_to(g).unwrap();
        let nb = OracleBackend::Landmark(LandmarkSketch::build(&ng, seed, ExecPolicy::Seq));
        let delta = Delta {
            n: g.n(),
            strategy: DeltaStrategy::Rebuilt,
            base_fingerprint: backend_state_fingerprint(g, b),
            result_fingerprint: backend_state_fingerprint(&ng, &nb),
            batch,
            rows: Vec::new(),
        };
        (delta, ng, nb)
    }

    #[test]
    fn landmark_apply_backend_rebuilds_and_verifies() {
        let (g, b) = landmark_state(42);
        let (delta, ng, nb) = landmark_delta(&g, &b, vec![EdgeOp::Reweight(0, 1, 1)]);
        let (got_g, got_b) = delta.apply_backend(&g, &b).expect("applies");
        assert_eq!(got_g, ng);
        assert_eq!(got_b, nb);
        // Wrong base state is caught before anything is rebuilt.
        assert!(matches!(
            delta.apply_backend(&got_g, &got_b),
            Err(DeltaError::BaseMismatch { .. })
        ));
        // A dense-rows delta cannot apply to a landmark state.
        let mut with_rows = delta.clone();
        with_rows.rows = vec![(0, vec![0; 5])];
        assert!(matches!(
            with_rows.apply_backend(&g, &b),
            Err(DeltaError::Malformed(_))
        ));
        // A tampered result fingerprint is a ResultMismatch.
        let mut lying = delta.clone();
        lying.result_fingerprint ^= 1;
        assert!(matches!(
            lying.apply_backend(&g, &b),
            Err(DeltaError::ResultMismatch { .. })
        ));
    }

    #[test]
    fn dense_apply_backend_matches_dense_apply() {
        let (delta, ng, ne) = sample_delta();
        let (g, e) = state();
        let backend = OracleBackend::Dense(e.clone());
        let (got_g, got_b) = delta.apply_backend(&g, &backend).expect("applies");
        assert_eq!(got_g, ng);
        assert_eq!(got_b, OracleBackend::Dense(ne));
        assert_eq!(
            backend_state_fingerprint(&g, &backend),
            state_fingerprint(&g, &e),
            "dense backend fingerprint must equal the legacy dense fingerprint"
        );
    }

    #[test]
    fn landmark_and_dense_fingerprints_never_collide() {
        let (g, e) = state();
        let dense = OracleBackend::Dense(e);
        let (_, landmark) = landmark_state(0);
        assert_ne!(
            backend_state_fingerprint(&g, &dense),
            backend_state_fingerprint(&g, &landmark)
        );
    }

    #[test]
    fn landmark_replay_and_compact_agree() {
        let (g, b) = landmark_state(9);
        let (d1, g1, b1) = landmark_delta(&g, &b, vec![EdgeOp::Reweight(0, 1, 1)]);
        let (d2, g2, b2) = landmark_delta(
            &g1,
            &b1,
            vec![EdgeOp::Delete(0, 4), EdgeOp::Insert(1, 4, 2)],
        );
        let chain = [d1, d2];
        let (rg, rb) = replay_backend(&g, &b, &chain).expect("replays");
        assert_eq!((&rg, &rb), (&g2, &b2));
        let (merged, cg, cb) = compact_backend(&g, &b, &chain).expect("compacts");
        assert_eq!((&cg, &cb), (&rg, &rb));
        assert!(merged.rows.is_empty(), "landmark compaction ships no rows");
        let (ag, ab) = merged.apply_backend(&g, &b).expect("compacted applies");
        assert_eq!((ag, ab), (rg, rb));
    }

    #[test]
    fn replay_and_compact_agree() {
        let (g, e) = state();
        let (d1, g1, e1) = sample_delta();
        // A second hand-built delta on top of the first.
        let batch = UpdateBatch::new(vec![EdgeOp::Delete(0, 4), EdgeOp::Insert(1, 4, 2)]);
        let (g2, _) = batch.canonicalize().apply_to(&g1).unwrap();
        let e2 = apsp::exact_apsp(&g2);
        let rows: Vec<(NodeId, Vec<Weight>)> = (0..5)
            .filter(|&i| e1.row(i) != e2.row(i))
            .map(|i| (i, e2.row(i).to_vec()))
            .collect();
        let d2 = Delta {
            n: 5,
            strategy: DeltaStrategy::Repaired,
            base_fingerprint: state_fingerprint(&g1, &e1),
            result_fingerprint: state_fingerprint(&g2, &e2),
            batch: batch.canonicalize(),
            rows,
        };
        let chain = [d1, d2];
        let (rg, re) = replay(&g, &e, &chain).expect("replays");
        assert_eq!(state_fingerprint(&rg, &re), state_fingerprint(&g2, &e2));
        let (merged, cg, ce) = compact(&g, &e, &chain).expect("compacts");
        assert_eq!((&cg, &ce), (&rg, &re));
        let (ag, ae) = merged.apply(&g, &e).expect("compacted delta applies");
        assert_eq!((ag, ae), (rg, re));
        // Empty chain compacts to the identity delta.
        let (id, ig, ie) = compact(&g, &e, &[]).expect("identity");
        assert!(id.batch.is_empty() && id.rows.is_empty());
        assert_eq!(id.base_fingerprint, id.result_fingerprint);
        assert_eq!((ig, ie), (g, e));
    }
}
