//! Pipeline re-entry: run any of the suite's named algorithms over a graph.
//!
//! This is the dispatch table the `ccapsp` CLI used to own; it lives here so
//! the dynamic engine's full-rebuild fallback, the CLI, and the benches all
//! share one definition of what `--algo thm11` (etc.) means. An
//! [`IncrementalOracle`](crate::incremental::IncrementalOracle) re-enters
//! the same pipeline (same algorithm, same seed, same exec/kernel config)
//! whenever a batch churns too much for per-row repair, which is what makes
//! the repaired and rebuilt estimates interchangeable.

use cc_apsp::pipeline::{approximate_apsp, apsp_large_bandwidth, PipelineConfig};
use cc_apsp::smalldiam::{small_diameter_apsp, SmallDiamConfig};
use cc_baselines::{exact as exact_baseline, spanner_only};
use cc_graph::{DistMatrix, Graph};
use cc_matrix::engine::KernelMode;
use cc_par::ExecPolicy;
use clique_sim::{Bandwidth, Clique};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::update::UpdateError;

/// The algorithm names [`run_algorithm`] accepts, for usage strings.
pub const ALGORITHMS: &str = "thm11|thm81|smalldiam|thm71|spanner|exact";

/// Runs one named algorithm over `g`, returning
/// `(estimate, stretch bound, simulated rounds)`.
///
/// Algorithms: `thm11` (Theorem 1.1), `thm81` (Theorem 8.1 on CC[log⁴n]),
/// `smalldiam` (Theorem 7.1; `thm71` is an alias), `spanner` (the O(log n)
/// baseline), `exact`
/// (min-plus squaring baseline). Deterministic per `(algo, seed)`; `exec`
/// and `kernel` only move wall-clock time.
///
/// # Errors
///
/// [`UpdateError::UnknownAlgorithm`] for a name outside the table.
pub fn run_algorithm(
    g: &Graph,
    algo: &str,
    seed: u64,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> Result<(DistMatrix, f64, u64), UpdateError> {
    let cfg = PipelineConfig {
        seed,
        exec,
        kernel,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    Ok(match algo {
        "thm11" => {
            let r = approximate_apsp(g, &cfg);
            (r.estimate, r.stretch_bound, r.rounds)
        }
        "thm81" => {
            let mut clique = Clique::new(n, Bandwidth::polylog(4, n));
            let (est, bound) = apsp_large_bandwidth(&mut clique, g, &cfg, &mut rng);
            (est, bound, clique.rounds())
        }
        // `thm71` is an alias: `smalldiam` *is* the paper's Theorem 7.1.
        "smalldiam" | "thm71" => {
            let mut clique = Clique::new(n, Bandwidth::standard(n));
            let sd_cfg = SmallDiamConfig {
                exec,
                kernel,
                ..Default::default()
            };
            let (est, bound) = small_diameter_apsp(&mut clique, g, &sd_cfg, &mut rng);
            (est, bound, clique.rounds())
        }
        "spanner" => {
            let mut clique = Clique::new(n, Bandwidth::standard(n));
            let (est, bound) = spanner_only::spanner_only_apsp_with(&mut clique, g, &mut rng, exec);
            (est, bound, clique.rounds())
        }
        "exact" => {
            let mut clique = Clique::new(n, Bandwidth::standard(n));
            let est = exact_baseline::exact_apsp_squaring_kernel(&mut clique, g, exec, kernel);
            (est, 1.0, clique.rounds())
        }
        other => return Err(UpdateError::UnknownAlgorithm(other.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators};

    #[test]
    fn exact_matches_ground_truth_and_unknown_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_connected(20, 0.2, 1..=9, &mut rng);
        let (est, bound, _rounds) =
            run_algorithm(&g, "exact", 1, ExecPolicy::Seq, KernelMode::Auto).expect("exact runs");
        assert_eq!(est, apsp::exact_apsp(&g));
        assert_eq!(bound, 1.0);
        assert!(matches!(
            run_algorithm(&g, "nope", 1, ExecPolicy::Seq, KernelMode::Auto),
            Err(UpdateError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn every_named_algorithm_runs_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp_connected(18, 0.25, 1..=7, &mut rng);
        for algo in ["thm11", "thm81", "smalldiam", "spanner", "exact"] {
            let a = run_algorithm(&g, algo, 9, ExecPolicy::Seq, KernelMode::Auto).unwrap();
            let b = run_algorithm(&g, algo, 9, ExecPolicy::Seq, KernelMode::Auto).unwrap();
            assert_eq!(a.0, b.0, "{algo} estimate deterministic");
            assert_eq!(a.2, b.2, "{algo} rounds deterministic");
        }
    }
}
