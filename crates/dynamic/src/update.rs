//! Edge-update batches: the write-side input of the dynamic engine.
//!
//! An [`UpdateBatch`] is a list of [`EdgeOp`]s — `Insert`/`Delete`/
//! `Reweight` — that together declare the **final state** of the touched
//! edges relative to a base graph. A batch is not a sequential edit script:
//! after [`UpdateBatch::canonicalize`], at most one op survives per
//! unordered endpoint pair (last write wins), ops are sorted by `(u, v)`,
//! and validation happens against the base graph at apply time. That makes
//! canonicalization idempotent and order-insensitive across distinct pairs,
//! which is what keeps delta replay deterministic.
//!
//! Semantics against the base graph (all checked by
//! [`UpdateBatch::apply_to`]):
//!
//! * `Insert(u, v, w)` — the edge must be absent; afterwards present with
//!   weight `w`.
//! * `Delete(u, v)` — the edge must be present; afterwards absent.
//! * `Reweight(u, v, w)` — the edge must be present; afterwards weight `w`.
//!
//! Weights keep the paper's standing assumption: strictly positive and
//! finite. The engine is undirected-only (the serving path loads every
//! graph undirected), so endpoint pairs are normalized to `u < v`.

use cc_graph::graph::Direction;
use cc_graph::{Graph, NodeId, Weight, INF};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashSet};

/// One edge operation. Endpoints are an unordered pair (the engine is
/// undirected-only); [`UpdateBatch::canonicalize`] normalizes them to
/// `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Add edge `(u, v)` with weight `w`; the edge must not already exist.
    Insert(NodeId, NodeId, Weight),
    /// Remove edge `(u, v)`; the edge must exist.
    Delete(NodeId, NodeId),
    /// Set the weight of existing edge `(u, v)` to `w`.
    Reweight(NodeId, NodeId, Weight),
}

impl EdgeOp {
    /// The (un-normalized) endpoint pair.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeOp::Insert(u, v, _) | EdgeOp::Delete(u, v) | EdgeOp::Reweight(u, v, _) => (u, v),
        }
    }

    /// The endpoint pair normalized to `(min, max)`.
    pub fn key(&self) -> (NodeId, NodeId) {
        let (u, v) = self.endpoints();
        (u.min(v), u.max(v))
    }

    /// The same op with endpoints normalized to `(min, max)`.
    fn normalized(self) -> EdgeOp {
        let (u, v) = self.key();
        match self {
            EdgeOp::Insert(_, _, w) => EdgeOp::Insert(u, v, w),
            EdgeOp::Delete(_, _) => EdgeOp::Delete(u, v),
            EdgeOp::Reweight(_, _, w) => EdgeOp::Reweight(u, v, w),
        }
    }
}

impl std::fmt::Display for EdgeOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EdgeOp::Insert(u, v, w) => write!(f, "insert {u} {v} {w}"),
            EdgeOp::Delete(u, v) => write!(f, "delete {u} {v}"),
            EdgeOp::Reweight(u, v, w) => write!(f, "reweight {u} {v} {w}"),
        }
    }
}

/// Everything that can make a batch invalid against a base graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An op names an endpoint `>= n`.
    OutOfRange {
        /// The offending op, rendered.
        op: String,
        /// Node count of the base graph.
        n: usize,
    },
    /// An op names `u == v` (self-loops are never stored).
    SelfLoop(String),
    /// An `Insert`/`Reweight` weight is zero or not finite (`>= INF`).
    InvalidWeight(String),
    /// An `Insert` targets an edge the base graph already has.
    InsertExisting(String),
    /// A `Delete`/`Reweight` targets an edge the base graph does not have.
    MissingEdge(String),
    /// The base graph is directed; the dynamic engine is undirected-only.
    DirectedUnsupported,
    /// The rebuild path was asked for an algorithm the dispatch table does
    /// not know.
    UnknownAlgorithm(String),
    /// A textual ops file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::OutOfRange { op, n } => {
                write!(f, "op {op:?} out of range for a {n}-node graph")
            }
            UpdateError::SelfLoop(op) => write!(f, "op {op:?} is a self-loop"),
            UpdateError::InvalidWeight(op) => {
                write!(f, "op {op:?} has a non-positive or non-finite weight")
            }
            UpdateError::InsertExisting(op) => {
                write!(f, "op {op:?} inserts an edge that already exists")
            }
            UpdateError::MissingEdge(op) => {
                write!(f, "op {op:?} targets an edge that does not exist")
            }
            UpdateError::DirectedUnsupported => {
                write!(f, "dynamic updates support undirected graphs only")
            }
            UpdateError::UnknownAlgorithm(a) => write!(f, "unknown algorithm {a:?}"),
            UpdateError::Parse { line, what } => write!(f, "ops file line {line}: {what}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// One edge's before/after view, produced by [`UpdateBatch::apply_to`].
/// `old == None` means inserted, `new == None` means deleted; ops that
/// change nothing (`Reweight` to the current weight) are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeChange {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Weight in the base graph (`None` for an insert).
    pub old: Option<Weight>,
    /// Weight in the updated graph (`None` for a delete).
    pub new: Option<Weight>,
}

/// A batch of edge ops plus the canonicalization/validation/application
/// machinery; see the [module docs](self) for semantics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateBatch {
    /// The ops, in declaration order (canonical order after
    /// [`UpdateBatch::canonicalize`]).
    pub ops: Vec<EdgeOp>,
}

impl UpdateBatch {
    /// A batch over the given ops.
    pub fn new(ops: Vec<EdgeOp>) -> Self {
        Self { ops }
    }

    /// Whether the batch has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The canonical form: endpoints normalized to `u < v`, at most one op
    /// per pair (the **last** op in declaration order wins), ops sorted by
    /// `(u, v)`. Canonicalization is idempotent, and batches touching
    /// distinct pairs canonicalize identically under any reordering.
    pub fn canonicalize(&self) -> UpdateBatch {
        let mut last: BTreeMap<(NodeId, NodeId), EdgeOp> = BTreeMap::new();
        for op in &self.ops {
            last.insert(op.key(), op.normalized());
        }
        UpdateBatch {
            ops: last.into_values().collect(),
        }
    }

    /// Validates the canonical form of this batch against `base` and
    /// applies it, returning the updated graph and the effective per-edge
    /// changes (no-op reweights are dropped; the change list is sorted by
    /// `(u, v)` like the canonical ops).
    ///
    /// # Errors
    ///
    /// Any violation of the semantics in the [module docs](self) returns
    /// the matching [`UpdateError`]; the base graph is never modified.
    pub fn apply_to(&self, base: &Graph) -> Result<(Graph, Vec<EdgeChange>), UpdateError> {
        if base.direction() != Direction::Undirected {
            return Err(UpdateError::DirectedUnsupported);
        }
        let n = base.n();
        let canonical = self.canonicalize();
        let mut changes: Vec<EdgeChange> = Vec::with_capacity(canonical.ops.len());
        for op in &canonical.ops {
            let (u, v) = op.key();
            if u == v {
                return Err(UpdateError::SelfLoop(op.to_string()));
            }
            if v >= n {
                return Err(UpdateError::OutOfRange {
                    op: op.to_string(),
                    n,
                });
            }
            let old = base.edge_weight(u, v);
            let new = match *op {
                EdgeOp::Insert(_, _, w) => {
                    if old.is_some() {
                        return Err(UpdateError::InsertExisting(op.to_string()));
                    }
                    Some(w)
                }
                EdgeOp::Reweight(_, _, w) => {
                    if old.is_none() {
                        return Err(UpdateError::MissingEdge(op.to_string()));
                    }
                    Some(w)
                }
                EdgeOp::Delete(_, _) => {
                    if old.is_none() {
                        return Err(UpdateError::MissingEdge(op.to_string()));
                    }
                    None
                }
            };
            if let Some(w) = new {
                if w == 0 || w >= INF {
                    return Err(UpdateError::InvalidWeight(op.to_string()));
                }
            }
            if old != new {
                changes.push(EdgeChange { u, v, old, new });
            }
        }
        if changes.is_empty() {
            return Ok((base.clone(), changes));
        }
        // Rebuild the edge list through a map so deletes and reweights are
        // O(log m) and the output is canonical (Graph::from_edges sorts).
        let mut edges: BTreeMap<(NodeId, NodeId), Weight> = base
            .edges()
            .into_iter()
            .map(|(u, v, w)| ((u, v), w))
            .collect();
        for c in &changes {
            match c.new {
                Some(w) => {
                    edges.insert((c.u, c.v), w);
                }
                None => {
                    edges.remove(&(c.u, c.v));
                }
            }
        }
        let list: Vec<(NodeId, NodeId, Weight)> =
            edges.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        Ok((Graph::from_edges(n, Direction::Undirected, &list), changes))
    }

    /// The batch that turns `base` into `target` (both undirected, same
    /// `n`): the canonical diff used by delta compaction.
    ///
    /// # Panics
    ///
    /// Panics if node counts differ or either graph is directed.
    pub fn diff(base: &Graph, target: &Graph) -> UpdateBatch {
        assert_eq!(base.n(), target.n(), "diff requires equal node counts");
        assert!(
            base.direction() == Direction::Undirected
                && target.direction() == Direction::Undirected,
            "diff requires undirected graphs"
        );
        let old: BTreeMap<(NodeId, NodeId), Weight> = base
            .edges()
            .into_iter()
            .map(|(u, v, w)| ((u, v), w))
            .collect();
        let new: BTreeMap<(NodeId, NodeId), Weight> = target
            .edges()
            .into_iter()
            .map(|(u, v, w)| ((u, v), w))
            .collect();
        let mut ops = Vec::new();
        for (&(u, v), &w) in &new {
            match old.get(&(u, v)) {
                None => ops.push(EdgeOp::Insert(u, v, w)),
                Some(&ow) if ow != w => ops.push(EdgeOp::Reweight(u, v, w)),
                Some(_) => {}
            }
        }
        for &(u, v) in old.keys() {
            if !new.contains_key(&(u, v)) {
                ops.push(EdgeOp::Delete(u, v));
            }
        }
        UpdateBatch::new(ops).canonicalize()
    }

    /// Parses the textual ops format the CLI's `--ops` flag reads: one op
    /// per line (`insert u v w` / `delete u v` / `reweight u v w`), blank
    /// lines and `#` comments ignored.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError::Parse`] with the offending 1-based line.
    pub fn parse(text: &str) -> Result<UpdateBatch, UpdateError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            let num = |s: &str, what: &str| -> Result<u64, UpdateError> {
                s.parse().map_err(|_| UpdateError::Parse {
                    line,
                    what: format!("{what} expects a number, got {s:?}"),
                })
            };
            let op = match fields[..] {
                ["insert", u, v, w] => EdgeOp::Insert(
                    num(u, "u")? as NodeId,
                    num(v, "v")? as NodeId,
                    num(w, "w")?,
                ),
                ["delete", u, v] => EdgeOp::Delete(num(u, "u")? as NodeId, num(v, "v")? as NodeId),
                ["reweight", u, v, w] => EdgeOp::Reweight(
                    num(u, "u")? as NodeId,
                    num(v, "v")? as NodeId,
                    num(w, "w")?,
                ),
                _ => {
                    return Err(UpdateError::Parse {
                        line,
                        what: format!(
                            "expected `insert u v w`, `delete u v`, or `reweight u v w`, got {trimmed:?}"
                        ),
                    })
                }
            };
            ops.push(op);
        }
        Ok(UpdateBatch::new(ops))
    }

    /// Renders the batch in the textual format [`UpdateBatch::parse`]
    /// reads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.to_string());
            out.push('\n');
        }
        out
    }
}

/// Shape of a randomly generated mutation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationProfile {
    /// Mostly weight churn on existing edges (≈ 8:1:1
    /// reweight:insert:delete) — the "traffic conditions drifted" workload.
    /// Reweights perturb the current weight by a bounded multiplicative
    /// jitter (±25%, at least ±1) rather than redrawing it uniformly: local
    /// drift keeps the affected row set small, which is the regime
    /// incremental repair is built for.
    ReweightHeavy,
    /// Mostly structural churn (≈ 2:4:4 reweight:insert:delete) with
    /// uniformly redrawn weights — the "links come and go" workload, whose
    /// batches routinely exceed the repair threshold and exercise the
    /// rebuild fallback.
    TopologyHeavy,
}

impl MutationProfile {
    /// Parses a CLI spelling: `reweight` or `topology`.
    pub fn parse(s: &str) -> Option<MutationProfile> {
        match s.trim() {
            "reweight" => Some(MutationProfile::ReweightHeavy),
            "topology" => Some(MutationProfile::TopologyHeavy),
            _ => None,
        }
    }

    /// Machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MutationProfile::ReweightHeavy => "reweight",
            MutationProfile::TopologyHeavy => "topology",
        }
    }

    /// `(reweight, insert, delete)` relative weights.
    fn mix(self) -> (u32, u32, u32) {
        match self {
            MutationProfile::ReweightHeavy => (8, 1, 1),
            MutationProfile::TopologyHeavy => (2, 4, 4),
        }
    }
}

impl std::fmt::Display for MutationProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded random batch of `k` valid ops against `g`: each op touches a
/// distinct edge pair, weights are drawn from `1..=w_max` (the graph's max
/// weight, at least 1), and op kinds follow `profile`. Deletes are capped
/// so the batch never removes more than half the edges. The batch is a
/// pure function of `(g, k, profile, rng state)`.
pub fn random_batch(
    g: &Graph,
    k: usize,
    profile: MutationProfile,
    rng: &mut StdRng,
) -> UpdateBatch {
    let n = g.n();
    let edges = g.edges();
    let w_max = g.max_weight().max(1);
    let (rw, ins, del) = profile.mix();
    let total = rw + ins + del;
    let mut touched: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut deleted = 0usize;
    let mut ops = Vec::with_capacity(k);
    if n < 2 {
        return UpdateBatch::default();
    }
    for _ in 0..k {
        let mut placed = false;
        // Bounded retries: dense graphs can exhaust insertable pairs and
        // tiny graphs can exhaust untouched edges.
        for _ in 0..64 {
            let pick = rng.gen_range(0..total);
            if pick < rw + del && !edges.is_empty() {
                let (u, v, w) = edges[rng.gen_range(0..edges.len())];
                if touched.contains(&(u, v)) {
                    continue;
                }
                if pick >= rw {
                    if deleted * 2 >= edges.len() {
                        continue;
                    }
                    deleted += 1;
                    ops.push(EdgeOp::Delete(u, v));
                } else {
                    let nw = match profile {
                        // Bounded drift: ±25% of the current weight
                        // (at least ±1), floored at 1.
                        MutationProfile::ReweightHeavy => {
                            let span = (w / 4).max(1);
                            let delta = rng.gen_range(1..=span);
                            if rng.gen_bool(0.5) {
                                w.saturating_sub(delta).max(1)
                            } else {
                                w + delta
                            }
                        }
                        // Uniform redraw, nudged off the current weight.
                        MutationProfile::TopologyHeavy => {
                            let mut nw = rng.gen_range(1..=w_max);
                            if nw == w {
                                nw = if w == w_max { 1.max(w - 1) } else { w + 1 };
                            }
                            nw
                        }
                    };
                    if nw == w {
                        continue; // jitter landed back on the floor
                    }
                    ops.push(EdgeOp::Reweight(u, v, nw));
                }
                touched.insert((u, v));
                placed = true;
                break;
            }
            // Insert path: rejection-sample a non-edge.
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            let (u, v) = (u.min(v), u.max(v));
            if u == v || touched.contains(&(u, v)) || g.edge_weight(u, v).is_some() {
                continue;
            }
            ops.push(EdgeOp::Insert(u, v, rng.gen_range(1..=w_max)));
            touched.insert((u, v));
            placed = true;
            break;
        }
        if !placed {
            break; // graph too small/dense to place more distinct ops
        }
    }
    UpdateBatch::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> Graph {
        Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 3), (1, 2, 1), (2, 3, 4), (3, 4, 2)],
        )
    }

    #[test]
    fn canonicalize_normalizes_dedupes_and_sorts() {
        let b = UpdateBatch::new(vec![
            EdgeOp::Reweight(3, 2, 9),
            EdgeOp::Insert(0, 4, 5),
            EdgeOp::Reweight(2, 3, 7), // same pair as the first op: wins
        ]);
        let c = b.canonicalize();
        assert_eq!(
            c.ops,
            vec![EdgeOp::Insert(0, 4, 5), EdgeOp::Reweight(2, 3, 7)]
        );
        assert_eq!(c.canonicalize(), c, "idempotent");
    }

    #[test]
    fn apply_insert_delete_reweight() {
        let (g, changes) = UpdateBatch::new(vec![
            EdgeOp::Insert(0, 4, 5),
            EdgeOp::Delete(2, 3),
            EdgeOp::Reweight(0, 1, 8),
        ])
        .apply_to(&base())
        .expect("valid batch");
        assert_eq!(g.edge_weight(0, 4), Some(5));
        assert_eq!(g.edge_weight(2, 3), None);
        assert_eq!(g.edge_weight(0, 1), Some(8));
        assert_eq!(g.edge_weight(3, 4), Some(2), "untouched edge survives");
        assert_eq!(changes.len(), 3);
        assert!(changes
            .windows(2)
            .all(|w| (w[0].u, w[0].v) < (w[1].u, w[1].v)));
    }

    #[test]
    fn noop_reweight_is_dropped_from_changes() {
        let (g, changes) = UpdateBatch::new(vec![EdgeOp::Reweight(0, 1, 3)])
            .apply_to(&base())
            .expect("valid");
        assert_eq!(changes, vec![]);
        assert_eq!(g, base());
    }

    #[test]
    fn validation_errors_are_typed() {
        let g = base();
        let err = |ops: Vec<EdgeOp>| UpdateBatch::new(ops).apply_to(&g).unwrap_err();
        assert!(matches!(
            err(vec![EdgeOp::Insert(0, 9, 1)]),
            UpdateError::OutOfRange { .. }
        ));
        assert!(matches!(
            err(vec![EdgeOp::Insert(2, 2, 1)]),
            UpdateError::SelfLoop(_)
        ));
        assert!(matches!(
            err(vec![EdgeOp::Insert(0, 1, 9)]),
            UpdateError::InsertExisting(_)
        ));
        assert!(matches!(
            err(vec![EdgeOp::Delete(0, 2)]),
            UpdateError::MissingEdge(_)
        ));
        assert!(matches!(
            err(vec![EdgeOp::Reweight(0, 1, 0)]),
            UpdateError::InvalidWeight(_)
        ));
        assert!(matches!(
            err(vec![EdgeOp::Insert(0, 2, INF)]),
            UpdateError::InvalidWeight(_)
        ));
        let directed = Graph::from_edges(3, Direction::Directed, &[(0, 1, 1)]);
        assert_eq!(
            UpdateBatch::new(vec![EdgeOp::Delete(0, 1)])
                .apply_to(&directed)
                .unwrap_err(),
            UpdateError::DirectedUnsupported
        );
    }

    #[test]
    fn diff_round_trips_through_apply() {
        let g = base();
        let target = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 3), (1, 2, 6), (3, 4, 2), (0, 3, 1)],
        );
        let batch = UpdateBatch::diff(&g, &target);
        let (applied, _) = batch.apply_to(&g).expect("diff applies");
        assert_eq!(applied, target);
        assert!(UpdateBatch::diff(&g, &g).is_empty());
    }

    #[test]
    fn parse_and_render_round_trip() {
        let text = "# a comment\ninsert 0 4 5\n\ndelete 2 3\nreweight 0 1 8\n";
        let batch = UpdateBatch::parse(text).expect("parses");
        assert_eq!(batch.len(), 3);
        assert_eq!(UpdateBatch::parse(&batch.render()), Ok(batch));
        assert!(matches!(
            UpdateBatch::parse("insert 0 4"),
            Err(UpdateError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            UpdateBatch::parse("insert 0 x 4"),
            Err(UpdateError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn random_batches_are_valid_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = base();
        for profile in [
            MutationProfile::ReweightHeavy,
            MutationProfile::TopologyHeavy,
        ] {
            let b = random_batch(&g, 3, profile, &mut rng);
            assert!(!b.is_empty());
            b.apply_to(&g).expect("random batch is valid");
        }
        let a = random_batch(
            &g,
            3,
            MutationProfile::ReweightHeavy,
            &mut StdRng::seed_from_u64(9),
        );
        let b = random_batch(
            &g,
            3,
            MutationProfile::ReweightHeavy,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn profile_parses_and_prints() {
        assert_eq!(
            MutationProfile::parse("reweight"),
            Some(MutationProfile::ReweightHeavy)
        );
        assert_eq!(
            MutationProfile::parse("topology"),
            Some(MutationProfile::TopologyHeavy)
        );
        assert_eq!(MutationProfile::parse("x"), None);
        assert_eq!(MutationProfile::TopologyHeavy.to_string(), "topology");
    }
}
