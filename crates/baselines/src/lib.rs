#![warn(missing_docs)]

//! Baseline Congested Clique APSP algorithms the paper compares against
//! (Section 1.1's landscape), charged through the same simulator as the
//! paper's algorithm so experiment E11's "who wins" table is
//! apples-to-apples.
//!
//! * [`exact`] — exact APSP by repeated min-plus squaring, the algebraic
//!   baseline of \[CKK+19\]-flavour. Distributed dense distance products cost
//!   `Θ(n^(1/3))` rounds each (the Congested Clique matrix-multiplication
//!   bound), and `⌈log₂ n⌉` squarings are needed.
//! * [`spanner_only`] — the `O(1)`-round / `O(log n)`-approximation baseline
//!   of [DFKL21; CZ22]: build a spanner, broadcast it, done. (This is also
//!   the paper's bootstrap, re-exported here as a standalone baseline.)
//! * [`doubling`] — the `O(log(hops))`-round k-nearest computation of
//!   \[CDKL21\]-flavour (squaring the filtered matrix), the ablation baseline
//!   for the paper's `O(i)`-round Lemma 5.2.

pub mod doubling;
pub mod exact;
pub mod spanner_only;
