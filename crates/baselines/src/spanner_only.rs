//! The `O(1)`-round / `O(log n)`-approximation baseline ([DFKL21; CZ22]).
//!
//! Build one `(2k−1)`-spanner with `k = Θ(log n)` so the spanner has `O(n)`
//! edges, broadcast it, and let every node answer from the spanner's
//! distances. This was the state of the art for constant-round APSP before
//! the paper; its approximation is stuck at `Ω(log n)` because of the
//! spanner size/stretch tradeoff (Section 1.1).

use cc_apsp::spanner::{bootstrap_k, spanner_apsp_estimate_with};
use cc_graph::{DistMatrix, Graph};
use cc_par::ExecPolicy;
use clique_sim::Clique;
use rand::rngs::StdRng;

/// Runs the spanner-only baseline; returns `(estimate, stretch bound)`.
pub fn spanner_only_apsp(clique: &mut Clique, g: &Graph, rng: &mut StdRng) -> (DistMatrix, f64) {
    spanner_only_apsp_with(clique, g, rng, ExecPolicy::from_env())
}

/// [`spanner_only_apsp`] under an explicit [`ExecPolicy`].
pub fn spanner_only_apsp_with(
    clique: &mut Clique,
    g: &Graph,
    rng: &mut StdRng,
    exec: ExecPolicy,
) -> (DistMatrix, f64) {
    let est = spanner_apsp_estimate_with(clique, g, bootstrap_k(g.n()), rng, exec);
    (est.estimate, est.stretch_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators, log2_ceil};
    use clique_sim::Bandwidth;
    use rand::SeedableRng;

    #[test]
    fn baseline_is_valid_and_log_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp_connected(90, 0.08, 1..=30, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let (est, bound) = spanner_only_apsp(&mut clique, &g, &mut rng);
        assert!(bound <= log2_ceil(g.n()) as f64);
        let stats = est.stretch_vs(&apsp::exact_apsp(&g));
        assert!(stats.is_valid_approximation(bound), "{stats}");
    }

    #[test]
    fn baseline_uses_few_rounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp_connected(128, 0.06, 1..=10, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        spanner_only_apsp(&mut clique, &g, &mut rng);
        // construction (3) + broadcast of an O(n)-edge spanner (the
        // Baswana–Sen size constant drives the broadcast; see DESIGN.md on
        // the CZ22 substitution).
        assert!(clique.rounds() <= 32, "rounds = {}", clique.rounds());
    }
}
