//! Exact APSP by tropical matrix squaring (the algebraic baseline).
//!
//! `A^(2^i)` after `i` squarings; `⌈log₂(n−1)⌉` squarings give the distance
//! matrix. Each dense `n × n` min-plus product costs `Θ(n^(1/3))` rounds in
//! the Congested Clique (\[CKK+19\]); we charge
//! `max(1, ⌈n^(1/3)⌉)` per squaring, labeled with the citation. This is the
//! "polynomial number of rounds" regime the paper's introduction contrasts
//! against.

use cc_graph::{DistMatrix, Graph};
use cc_matrix::dense;
use cc_matrix::engine::{self, KernelMode};
use cc_par::ExecPolicy;
use clique_sim::Clique;

/// Rounds charged per dense min-plus product: `⌈n^(1/3)⌉` (\[CKK+19\]'s
/// `O(n^(1/3))` semiring matrix multiplication; the paper's Section 1.1).
pub fn product_rounds(n: usize) -> u64 {
    (n as f64).cbrt().ceil() as u64
}

/// Exact APSP by repeated squaring, with round charges per squaring, under
/// the `CC_THREADS` execution default.
/// Returns the exact distance matrix.
pub fn exact_apsp_squaring(clique: &mut Clique, g: &Graph) -> DistMatrix {
    exact_apsp_squaring_with(clique, g, ExecPolicy::from_env())
}

/// [`exact_apsp_squaring`] under an explicit [`ExecPolicy`] for the local
/// min-plus squarings, with kernel dispatch from `CC_KERNEL`.
pub fn exact_apsp_squaring_with(clique: &mut Clique, g: &Graph, exec: ExecPolicy) -> DistMatrix {
    exact_apsp_squaring_kernel(clique, g, exec, KernelMode::from_env())
}

/// [`exact_apsp_squaring_with`] under an explicit [`KernelMode`]: every
/// squaring runs through the kernel engine's self-product path
/// ([`engine::square`]), which re-plans per multiply — the first squarings
/// of an adjacency matrix dispatch sparse, the later (filled-in) ones to
/// the blocked-FW k-tiled dense kernel at the narrowest lane width the
/// entries permit. Output and round charges are bit-identical across modes.
pub fn exact_apsp_squaring_kernel(
    clique: &mut Clique,
    g: &Graph,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> DistMatrix {
    clique.phase("exact-squaring", |clique| {
        let mut cur = dense::adjacency_matrix(g);
        let per_product = product_rounds(g.n());
        loop {
            let next = engine::square(&cur, kernel, exec);
            clique.charge("minplus-square (CKK+19 n^(1/3))", per_product);
            if next == cur {
                return next;
            }
            cur = next;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators, log2_ceil};
    use clique_sim::Bandwidth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn squaring_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp_connected(40, 0.15, 1..=25, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let m = exact_apsp_squaring(&mut clique, &g);
        assert_eq!(m, apsp::exact_apsp(&g));
    }

    #[test]
    fn rounds_scale_with_n_to_the_third_times_log() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp_connected(64, 0.1, 1..=9, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        exact_apsp_squaring(&mut clique, &g);
        let per = product_rounds(64);
        let max_squarings = (log2_ceil(64) + 2) as u64;
        assert!(clique.rounds() >= per);
        assert!(
            clique.rounds() <= per * max_squarings,
            "rounds = {}",
            clique.rounds()
        );
    }

    #[test]
    fn disconnected_inputs_keep_inf() {
        let g = Graph::from_edges(
            4,
            cc_graph::graph::Direction::Undirected,
            &[(0, 1, 3), (2, 3, 4)],
        );
        let mut clique = Clique::new(4, Bandwidth::standard(4));
        let m = exact_apsp_squaring(&mut clique, &g);
        assert!(m.get(0, 2) >= cc_graph::INF);
        assert_eq!(m.get(0, 1), 3);
    }
}
