//! The doubling k-nearest baseline (\[CDKL21\]-flavour).
//!
//! Computes k-nearest sets by repeatedly *squaring* the filtered matrix
//! (`Ā → filter(Ā²) → filter(Ā⁴) → …`) — i.e. the paper's Lemma 5.2 engine
//! pinned to `h = 2`, which needs `⌈log₂ β⌉` iterations to cover β hops.
//! The paper's Section 5 contribution is covering `h^i` hops in `i` rounds
//! for larger `h`; experiment E5 compares the two on identical inputs.
//!
//! To keep the comparison apples-to-apples, the baseline runs through the
//! **same** distributed bins machinery (`cc_apsp::knearest`) with `h = 2`,
//! so both sides are charged identically per iteration and the difference
//! is purely the iteration count — exactly the quantity the paper improves.

use cc_graph::Graph;
use cc_matrix::engine::KernelMode;
use cc_matrix::filtered::{filtered_power_engine, FilteredMatrix};
use cc_par::ExecPolicy;
use clique_sim::Clique;

/// Filtered-squaring k-nearest: covers `hop_target` hops with
/// `⌈log₂ hop_target⌉` squarings, each one round-charged like a Lemma 5.1
/// application at `h = 2`.
pub fn doubling_k_nearest(
    clique: &mut Clique,
    g: &Graph,
    k: usize,
    hop_target: usize,
) -> FilteredMatrix {
    clique.phase("doubling-knearest", |clique| {
        let start = FilteredMatrix::from_graph(g, k);
        cc_apsp::knearest::iterated(clique, &start, 2, doubling_iterations(hop_target))
    })
}

/// The same filtered-squaring recurrence run **locally** through the kernel
/// engine (no clique, no round charges): `⌈log₂ hop_target⌉` engine-backed
/// square-and-filter steps. A filtered matrix is `k`-sparse per row, so the
/// engine's auto-dispatch runs these on the sparse kernel; bounded-weight
/// instances use the compact tiled kernel when a step fills in. Bit-identical
/// to [`doubling_k_nearest`]'s output (property: the distributed bins
/// machinery computes exactly `filter_k(Ā²)` per step — Lemma 5.4).
pub fn doubling_k_nearest_central(
    g: &Graph,
    k: usize,
    hop_target: usize,
    kernel: KernelMode,
    exec: ExecPolicy,
) -> FilteredMatrix {
    let mut sp = cc_obs::span("doubling-knearest-central");
    sp.attr("k", k as f64);
    sp.attr("hop_target", hop_target as f64);
    let start = FilteredMatrix::from_graph(g, k);
    filtered_power_engine(&start, doubling_iterations(hop_target), kernel, exec)
}

/// Number of squarings the baseline needs for `hop_target` hops.
pub fn doubling_iterations(hop_target: usize) -> usize {
    let mut covered = 1usize;
    let mut iters = 0;
    while covered < hop_target {
        covered = covered.saturating_mul(2);
        iters += 1;
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, sssp};
    use clique_sim::Bandwidth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn doubling_matches_exact_k_nearest_when_hops_suffice() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp_connected(50, 0.1, 1..=20, &mut rng);
        let k = 6;
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let out = doubling_k_nearest(&mut clique, &g, k, k.next_power_of_two());
        for u in 0..g.n() {
            assert_eq!(out.row(u), &sssp::k_nearest(&g, u, k)[..], "node {u}");
        }
    }

    #[test]
    fn central_engine_doubling_matches_clique_doubling() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::gnp_connected(48, 0.12, 1..=15, &mut rng);
        let (k, hop_target) = (5, 8);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let distributed = doubling_k_nearest(&mut clique, &g, k, hop_target);
        for kernel in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
            let central = doubling_k_nearest_central(&g, k, hop_target, kernel, ExecPolicy::Seq);
            assert_eq!(central, distributed, "kernel={kernel}");
        }
    }

    #[test]
    fn doubling_iteration_count_is_log() {
        assert_eq!(doubling_iterations(1), 0);
        assert_eq!(doubling_iterations(2), 1);
        assert_eq!(doubling_iterations(8), 3);
        assert_eq!(doubling_iterations(9), 4);
    }

    #[test]
    fn doubling_agrees_with_paper_algorithm() {
        // Same inputs, same outputs — only round counts differ.
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(40, 0.15, 1..=10, &mut rng);
        let k = 5;
        let mut c1 = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let mut c2 = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let ours = cc_apsp::knearest::k_nearest_exact(&mut c1, &g, k, 2, 3);
        let baseline = doubling_k_nearest(&mut c2, &g, k, 8);
        assert_eq!(ours, baseline);
    }

    #[test]
    fn larger_h_halves_iterations_at_comparable_rounds() {
        // The paper's point is the *iteration count*: h = 3 covers 9 hops in
        // 2 iterations where doubling needs 4. Per-iteration loads shift
        // with h (bins get larger), so at finite n the total rounds are
        // comparable; the iteration count is what turns into the
        // O(log log n) → O(log log log n) improvement asymptotically.
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnp_connected(256, 0.04, 1..=10, &mut rng);
        let k = 6; // ≤ 256^(1/3)
        let mut ours_clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let ours = cc_apsp::knearest::k_nearest_exact(&mut ours_clique, &g, k, 3, 2);
        let mut base_clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let base = doubling_k_nearest(&mut base_clique, &g, k, 9);
        assert_eq!(ours, base);
        assert_eq!(doubling_iterations(9), 4); // vs our 2
        assert!(
            ours_clique.rounds() <= 2 * base_clique.rounds(),
            "ours {} vs doubling {}",
            ours_clique.rounds(),
            base_clique.rounds()
        );
    }
}
