//! Exact single-source shortest paths.
//!
//! These routines serve two roles:
//!
//! 1. **Local computation inside simulated nodes.** For example, in the
//!    hopset construction (Section 4) each node runs a shortest-path
//!    computation on the subgraph induced by its received edges; in the
//!    k-nearest algorithm (Section 5) each combination node runs hop-limited
//!    searches over its bins.
//! 2. **Ground truth.** Experiments compare every distance estimate against
//!    exact distances computed here.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{wadd, Graph, NodeId, Weight, INF};

/// Dijkstra from `src`; returns the distance to every node (`INF` when
/// unreachable).
///
/// ```
/// use cc_graph::graph::{Graph, Direction};
/// use cc_graph::sssp::dijkstra;
/// let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 2), (1, 2, 2), (0, 2, 5)]);
/// let d = dijkstra(&g, 0);
/// assert_eq!(d[2], 4);
/// assert_eq!(d[3], cc_graph::INF);
/// ```
pub fn dijkstra(g: &Graph, src: NodeId) -> Vec<Weight> {
    let mut dist = vec![INF; g.n()];
    let mut scratch = DijkstraScratch::new();
    dijkstra_into(g, src, &mut dist, &mut scratch);
    dist
}

/// Reusable working state for [`dijkstra_into`]: the binary heap (and its
/// backing allocation) survives across calls, so a caller running Dijkstra
/// from many sources — APSP row blocks, landmark sketch builds — pays for
/// the heap's growth once per worker instead of once per source.
#[derive(Default)]
pub struct DijkstraScratch {
    heap: BinaryHeap<Reverse<(Weight, NodeId)>>,
}

impl DijkstraScratch {
    /// An empty scratch; allocations happen lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`dijkstra`] writing into a caller-owned row. `dist` must have length
/// `g.n()`; every entry is overwritten (no stale state leaks between
/// sources). Output is bit-identical to [`dijkstra`] — the heap's pop order
/// on equal keys is the same because the scratch heap is always empty at
/// entry.
pub fn dijkstra_into(g: &Graph, src: NodeId, dist: &mut [Weight], scratch: &mut DijkstraScratch) {
    debug_assert_eq!(dist.len(), g.n());
    dist.fill(INF);
    dist[src] = 0;
    let heap = &mut scratch.heap;
    heap.clear();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = wadd(d, w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
}

/// Dijkstra with the lexicographic key `(distance, hops)`: among all
/// shortest paths, also minimizes the number of edges.
///
/// The hop counts let experiments *measure* the hop bound β of a hopset
/// (Lemma 3.2): β is the maximum, over the pairs the hopset must serve, of
/// the minimum hop count of an exact-length path in `G ∪ H`.
///
/// Returns `(dist, hops)` per node; `(INF, usize::MAX)` when unreachable.
pub fn dijkstra_with_hops(g: &Graph, src: NodeId) -> Vec<(Weight, usize)> {
    let mut best: Vec<(Weight, usize)> = vec![(INF, usize::MAX); g.n()];
    best[src] = (0, 0);
    let mut heap: BinaryHeap<Reverse<(Weight, usize, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((0, 0, src)));
    while let Some(Reverse((d, h, u))) = heap.pop() {
        if (d, h) > best[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = wadd(d, w);
            if nd >= INF {
                continue;
            }
            let nh = h + 1;
            if (nd, nh) < best[v] {
                best[v] = (nd, nh);
                heap.push(Reverse((nd, nh, v)));
            }
        }
    }
    best
}

/// Dijkstra from `src` truncated to the open ball of radius `bound`:
/// returns `(node, dist)` for exactly the nodes with `d(src, node) < bound`
/// (including `src` at distance 0 when `bound > 0`), sorted by node ID.
///
/// The search never relaxes past the bound, so the cost is proportional to
/// the ball, not the graph — this is what makes Thorup–Zwick-style bunch
/// construction (`B(u) = {v : d(u,v) < d(u, A)}`) affordable at scale.
///
/// ```
/// use cc_graph::graph::{Graph, Direction};
/// use cc_graph::sssp::dijkstra_within;
/// let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 2), (1, 2, 2), (0, 2, 5)]);
/// assert_eq!(dijkstra_within(&g, 0, 3), vec![(0, 0), (1, 2)]);
/// assert_eq!(dijkstra_within(&g, 0, 0), vec![]);
/// ```
pub fn dijkstra_within(g: &Graph, src: NodeId, bound: Weight) -> Vec<(NodeId, Weight)> {
    if bound == 0 {
        return Vec::new();
    }
    let mut dist = vec![INF; g.n()];
    dist[src] = 0;
    let mut touched = vec![src];
    let mut heap: BinaryHeap<Reverse<(Weight, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = wadd(d, w);
            if nd < bound && nd < dist[v] {
                if dist[v] >= INF {
                    touched.push(v);
                }
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    touched.sort_unstable();
    touched.into_iter().map(|v| (v, dist[v])).collect()
}

/// The `k` nearest nodes to `src` (including `src` itself at distance 0),
/// ties broken by node ID, as `(node, dist)` sorted by `(dist, node)`.
///
/// This is the reference implementation of the set `N_k(v)` from Section 2.1:
/// "the k nodes u with the smallest values of d(u, v), breaking ties by node
/// IDs".
///
/// ```
/// use cc_graph::graph::{Graph, Direction};
/// use cc_graph::sssp::k_nearest;
/// let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1), (0, 2, 1), (0, 3, 9)]);
/// assert_eq!(k_nearest(&g, 0, 3), vec![(0, 0), (1, 1), (2, 1)]);
/// ```
pub fn k_nearest(g: &Graph, src: NodeId, k: usize) -> Vec<(NodeId, Weight)> {
    let dist = dijkstra(g, src);
    k_nearest_from_dists(&dist, k)
}

/// Selects the `k` nearest entries from a distance vector, ties broken by ID,
/// excluding unreachable nodes.
pub fn k_nearest_from_dists(dist: &[Weight], k: usize) -> Vec<(NodeId, Weight)> {
    let mut order: Vec<(Weight, NodeId)> = dist
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, d)| d < INF)
        .map(|(v, d)| (d, v))
        .collect();
    order.sort_unstable();
    order.truncate(k);
    order.into_iter().map(|(d, v)| (v, d)).collect()
}

/// Hop-limited Bellman–Ford: the minimum length of a path from `src` with at
/// most `h` edges, for every target (`INF` when no such path exists).
///
/// This is exactly the h-hop distance `A^h[src, ·]` of Section 2.1's matrix
/// exponentiation view, and is the reference against which the filtered
/// matrix machinery of Section 5 is tested.
pub fn bellman_ford_hops(g: &Graph, src: NodeId, h: usize) -> Vec<Weight> {
    let mut dist = vec![INF; g.n()];
    dist[src] = 0;
    for _ in 0..h {
        let mut next = dist.clone();
        let mut changed = false;
        for (u, &du) in dist.iter().enumerate() {
            if du >= INF {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                let nd = wadd(du, w);
                if nd < next[v] {
                    next[v] = nd;
                    changed = true;
                }
            }
        }
        dist = next;
        if !changed {
            break;
        }
    }
    dist
}

/// Hop-limited Bellman–Ford over an explicit arc list (used by simulated
/// nodes whose local knowledge is a bag of received arcs rather than a
/// [`Graph`]).
///
/// `n` bounds the node IDs appearing in `arcs`.
pub fn bellman_ford_hops_arcs(
    n: usize,
    arcs: &[(NodeId, NodeId, Weight)],
    src: NodeId,
    h: usize,
) -> Vec<Weight> {
    let mut dist = vec![INF; n];
    dist[src] = 0;
    for _ in 0..h {
        let mut next = dist.clone();
        let mut changed = false;
        for &(u, v, w) in arcs {
            let nd = wadd(dist[u], w);
            if nd < next[v] {
                next[v] = nd;
                changed = true;
            }
        }
        dist = next;
        if !changed {
            break;
        }
    }
    dist
}

/// Dijkstra over an explicit arc list, restricted to the nodes mentioned in
/// the arcs plus `src`. Used by simulated nodes' local computations, e.g.
/// Step 3 of the hopset algorithm (Section 4.1).
pub fn dijkstra_arcs(n: usize, arcs: &[(NodeId, NodeId, Weight)], src: NodeId) -> Vec<Weight> {
    // Build a local adjacency map to avoid O(n)-per-pop scans.
    let mut adj: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
    for &(u, v, w) in arcs {
        adj[u].push((v, w));
    }
    let mut dist = vec![INF; n];
    dist[src] = 0;
    let mut heap: BinaryHeap<Reverse<(Weight, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = wadd(d, w);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Eccentricity of `src`: max finite distance from `src`.
pub fn eccentricity(g: &Graph, src: NodeId) -> Weight {
    dijkstra(g, src)
        .into_iter()
        .filter(|&d| d < INF)
        .max()
        .unwrap_or(0)
}

/// Weighted diameter (max over a sample of sources if `sample` is set, else
/// exact over all sources). The paper's `d` in Lemma 3.2's bound `O(a log d)`.
pub fn weighted_diameter(g: &Graph) -> Weight {
    (0..g.n()).map(|s| eccentricity(g, s)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn diamond() -> Graph {
        // 0 -2- 1 -2- 3, 0 -5- 2 -1- 3
        Graph::from_edges(
            4,
            Direction::Undirected,
            &[(0, 1, 2), (1, 3, 2), (0, 2, 5), (2, 3, 1)],
        )
    }

    #[test]
    fn dijkstra_matches_hand_computation() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d, vec![0, 2, 5, 4]);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_runs() {
        let g = diamond();
        let mut scratch = DijkstraScratch::new();
        let mut row = vec![0; g.n()];
        // Run every source twice through the same scratch: stale heap or
        // dist state from a previous source must never leak.
        for _ in 0..2 {
            for src in 0..g.n() {
                dijkstra_into(&g, src, &mut row, &mut scratch);
                assert_eq!(row, dijkstra(&g, src), "src {src}");
            }
        }
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        assert_eq!(dijkstra(&g, 0)[2], INF);
    }

    #[test]
    fn dijkstra_with_hops_prefers_fewer_edges_among_shortest() {
        // Two shortest paths of length 4 from 0 to 3: 0-1-3 (2 hops) via
        // weights 2+2, and 0-3 direct with weight 4 (1 hop).
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 2), (1, 3, 2), (0, 3, 4)]);
        let best = dijkstra_with_hops(&g, 0);
        assert_eq!(best[3], (4, 1));
    }

    #[test]
    fn k_nearest_ties_break_by_id() {
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 4, 1), (0, 2, 1), (0, 1, 1), (0, 3, 1)],
        );
        assert_eq!(k_nearest(&g, 0, 3), vec![(0, 0), (1, 1), (2, 1)]);
    }

    #[test]
    fn dijkstra_within_matches_filtered_full_search() {
        let g = diamond();
        for src in 0..g.n() {
            let full = dijkstra(&g, src);
            for bound in 0..8u64 {
                let expect: Vec<(NodeId, Weight)> = full
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, d)| d < bound)
                    .collect();
                assert_eq!(
                    dijkstra_within(&g, src, bound),
                    expect,
                    "src {src} bound {bound}"
                );
            }
        }
    }

    #[test]
    fn dijkstra_within_inf_bound_is_the_reachable_set() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1)]);
        assert_eq!(dijkstra_within(&g, 0, INF), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn bellman_ford_hop_limit_binds() {
        let g = diamond();
        // 0 -> 3 shortest is 4 with 2 hops; with h = 1 only direct edges.
        assert_eq!(bellman_ford_hops(&g, 0, 1)[3], INF);
        assert_eq!(bellman_ford_hops(&g, 0, 2)[3], 4);
    }

    #[test]
    fn bellman_ford_matches_dijkstra_when_h_large() {
        let g = diamond();
        assert_eq!(bellman_ford_hops(&g, 0, 10), dijkstra(&g, 0));
    }

    #[test]
    fn arc_list_variants_match_graph_variants() {
        let g = diamond();
        let arcs: Vec<_> = g.all_arcs().collect();
        for s in 0..g.n() {
            assert_eq!(dijkstra_arcs(g.n(), &arcs, s), dijkstra(&g, s));
            assert_eq!(
                bellman_ford_hops_arcs(g.n(), &arcs, s, 2),
                bellman_ford_hops(&g, s, 2)
            );
        }
    }

    #[test]
    fn diameter_of_diamond() {
        assert_eq!(weighted_diameter(&diamond()), 5);
    }

    #[test]
    fn directed_dijkstra_respects_direction() {
        let g = Graph::from_edges(3, Direction::Directed, &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(dijkstra(&g, 0)[2], 2);
        assert_eq!(dijkstra(&g, 2)[0], INF);
    }
}
