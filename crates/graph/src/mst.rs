//! Minimum spanning forests (Borůvka and Kruskal).
//!
//! The zero-weight reduction (Theorem 2.1, Appendix A Step 1) computes an MST
//! to identify zero-weight clusters, citing Nowicki's O(1)-round Congested
//! Clique MST \[Now21\]. We implement Borůvka — whose phase structure maps
//! naturally onto the clique (each phase: every component announces its
//! minimum outgoing edge) — and Kruskal as an independent reference for
//! testing. The round charge for the clique version lives in `cc-apsp`'s
//! zero-weight module; here is the pure graph computation.

use crate::unionfind::UnionFind;
use crate::{Graph, NodeId, Weight};

/// An MST/MSF edge list with total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// The chosen edges `(u, v, w)`.
    pub edges: Vec<(NodeId, NodeId, Weight)>,
    /// Sum of chosen edge weights.
    pub total_weight: Weight,
    /// Number of Borůvka phases used (1 for Kruskal).
    pub phases: usize,
}

/// Borůvka's algorithm. Ties are broken by `(w, u, v)` so the chosen edge set
/// is deterministic and phase counts are reproducible.
pub fn boruvka(g: &Graph) -> SpanningForest {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    let mut phases = 0;
    loop {
        // min outgoing edge per component root, keyed by (w, u, v).
        let mut best: Vec<Option<(Weight, NodeId, NodeId)>> = vec![None; n];
        for (u, v, w) in g.all_arcs() {
            let (ru, rv) = (uf.find(u), uf.find(v));
            if ru == rv {
                continue;
            }
            let cand = (w, u.min(v), u.max(v));
            for r in [ru, rv] {
                if best[r].is_none_or(|b| cand < b) {
                    best[r] = Some(cand);
                }
            }
        }
        let mut merged_any = false;
        for &(w, u, v) in best.iter().flatten() {
            if uf.union(u, v) {
                chosen.push((u, v, w));
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
        phases += 1;
    }
    let total = chosen.iter().map(|e| e.2).sum();
    SpanningForest {
        edges: chosen,
        total_weight: total,
        phases,
    }
}

/// Kruskal's algorithm (reference implementation for testing Borůvka).
pub fn kruskal(g: &Graph) -> SpanningForest {
    let mut edges = g.edges();
    edges.sort_unstable_by_key(|&(u, v, w)| (w, u, v));
    let mut uf = UnionFind::new(g.n());
    let mut chosen = Vec::new();
    for (u, v, w) in edges {
        if uf.union(u, v) {
            chosen.push((u, v, w));
        }
    }
    let total = chosen.iter().map(|e| e.2).sum();
    SpanningForest {
        edges: chosen,
        total_weight: total,
        phases: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use rand::{Rng, SeedableRng};

    #[test]
    fn boruvka_matches_kruskal_weight_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 4 + (trial % 30);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.3) {
                        edges.push((u, v, rng.gen_range(1..100)));
                    }
                }
            }
            let g = Graph::from_edges(n, Direction::Undirected, &edges);
            assert_eq!(
                boruvka(&g).total_weight,
                kruskal(&g).total_weight,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 5), (2, 3, 7)]);
        let f = boruvka(&g);
        assert_eq!(f.edges.len(), 2);
        assert_eq!(f.total_weight, 12);
    }

    #[test]
    fn boruvka_phase_count_is_logarithmic_on_path() {
        // A path of 64 unit edges merges at least half the components per
        // phase: ≤ log2(64) = 6 phases.
        let edges: Vec<_> = (0..63).map(|i| (i, i + 1, 1)).collect();
        let g = Graph::from_edges(64, Direction::Undirected, &edges);
        let f = boruvka(&g);
        assert_eq!(f.edges.len(), 63);
        assert!(f.phases <= 6, "phases = {}", f.phases);
    }

    #[test]
    fn empty_graph_has_empty_forest() {
        let g = Graph::empty(5, Direction::Undirected);
        let f = boruvka(&g);
        assert!(f.edges.is_empty());
        assert_eq!(f.total_weight, 0);
    }
}
