//! Deterministic workload generators.
//!
//! The paper proves worst-case bounds; the reproduction evaluates them over a
//! spread of graph families. Every generator takes an explicit RNG so that
//! experiments are reproducible bit-for-bit.
//!
//! Families (used throughout EXPERIMENTS.md):
//!
//! * [`gnp`] / [`gnp_connected`] — Erdős–Rényi `G(n, p)`.
//! * [`random_geometric`] — unit-square geometric graphs; the "network-like"
//!   family where weights correlate with metric distance.
//! * [`preferential_attachment`] — heavy-tailed degrees (hubs stress the
//!   receive-load accounting of the routing lemmas).
//! * [`grid`] — large (hop and weighted) diameter, stressing hopsets.
//! * [`path_with_chords`] — near-pathological diameter with a few shortcuts;
//!   the family on which the Figure 1 hop-chain is rendered.
//! * [`complete_graph`], [`star`] — degenerate extremes.
//! * [`wide_weight_gnp`] — exponentially spread weights (`2^0 .. 2^max_exp`)
//!   exercising the weight-scaling lemma (Section 8.1).

use std::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::Rng;

use crate::graph::{Graph, GraphBuilder};
use crate::unionfind::UnionFind;
use crate::Weight;

/// Erdős–Rényi `G(n, p)` with i.i.d. uniform weights from `weights`.
pub fn gnp(n: usize, p: f64, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v, rng.gen_range(weights.clone()));
            }
        }
    }
    b.build()
}

/// [`gnp`], then patched to be connected by linking components with random
/// extra edges (weights from the same range).
pub fn gnp_connected(n: usize, p: f64, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let g = gnp(n, p, weights.clone(), rng);
    connect_components(&g, weights, rng)
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs within `radius`, weight = rounded scaled Euclidean distance
/// (at least 1). Patched to be connected.
pub fn random_geometric(n: usize, radius: f64, scale: Weight, rng: &mut StdRng) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                let w = ((d * scale as f64).round() as Weight).max(1);
                b.add_edge(u, v, w);
            }
        }
    }
    connect_components(&b.build(), 1..=scale.max(1), rng)
}

/// Barabási–Albert-style preferential attachment: each new node attaches to
/// `m` existing nodes chosen proportionally to degree, with uniform weights.
pub fn preferential_attachment(
    n: usize,
    m: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut StdRng,
) -> Graph {
    assert!(n >= 2, "preferential attachment needs n >= 2");
    let m = m.max(1);
    let mut b = GraphBuilder::undirected(n);
    // Degree-proportional sampling via a repeated-endpoint pool.
    let mut pool: Vec<usize> = vec![0, 1];
    b.add_edge(0, 1, rng.gen_range(weights.clone()));
    for v in 2..n {
        let mut chosen = Vec::new();
        let mut guard = 0;
        while chosen.len() < m.min(v) && guard < 50 * m {
            let t = pool[rng.gen_range(0..pool.len())];
            guard += 1;
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        if chosen.is_empty() {
            chosen.push(rng.gen_range(0..v));
        }
        for &t in &chosen {
            b.add_edge(v, t, rng.gen_range(weights.clone()));
            pool.push(t);
            pool.push(v);
        }
    }
    b.build()
}

/// `rows × cols` grid with uniform weights; large diameter.
pub fn grid(rows: usize, cols: usize, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::undirected(n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), rng.gen_range(weights.clone()));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), rng.gen_range(weights.clone()));
            }
        }
    }
    b.build()
}

/// A path `0-1-…-(n-1)` with `chords` random long-range shortcut edges.
/// Path edges have weight 1; chords get weights from `chord_weights`.
pub fn path_with_chords(
    n: usize,
    chords: usize,
    chord_weights: RangeInclusive<Weight>,
    rng: &mut StdRng,
) -> Graph {
    let mut b = GraphBuilder::undirected(n);
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v, v + 1, 1);
    }
    for _ in 0..chords {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_edge(u, v, rng.gen_range(chord_weights.clone()));
        }
    }
    b.build()
}

/// The complete graph `K_n` with uniform weights.
pub fn complete_graph(n: usize, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, rng.gen_range(weights.clone()));
        }
    }
    b.build()
}

/// A star centered at node 0.
pub fn star(n: usize, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::undirected(n);
    for v in 1..n {
        b.add_edge(0, v, rng.gen_range(weights.clone()));
    }
    b.build()
}

/// `G(n, p)` with weights `2^e` for `e` uniform in `0..=max_exp`: the
/// exponentially spread weight distribution that makes the weight-scaling
/// lemma (Section 8.1) non-trivial. Connected.
pub fn wide_weight_gnp(n: usize, p: f64, max_exp: u32, rng: &mut StdRng) -> Graph {
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                let e = rng.gen_range(0..=max_exp);
                b.add_edge(u, v, 1u64 << e);
            }
        }
    }
    connect_components(&b.build(), 1..=(1u64 << max_exp), rng)
}

/// A 2D torus (grid with wraparound): regular degree 4, hop diameter
/// `Θ(rows + cols)` with no boundary effects.
pub fn torus(rows: usize, cols: usize, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::undirected(n);
    if rows < 2 || cols < 2 {
        return grid(rows, cols, weights, rng);
    }
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(
                id(r, c),
                id(r, (c + 1) % cols),
                rng.gen_range(weights.clone()),
            );
            b.add_edge(
                id(r, c),
                id((r + 1) % rows, c),
                rng.gen_range(weights.clone()),
            );
        }
    }
    b.build()
}

/// The hypercube on `2^dim` nodes: the classic low-diameter, high-expansion
/// topology (hop diameter exactly `dim`).
pub fn hypercube(dim: u32, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::undirected(n);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u, rng.gen_range(weights.clone()));
            }
        }
    }
    b.build()
}

/// A stochastic block model: `communities` dense blobs with sparse
/// inter-community edges — the shape on which skeleton graphs shine (each
/// community collapses to a few skeleton nodes). Connected.
pub fn communities(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    weights: RangeInclusive<Weight>,
    rng: &mut StdRng,
) -> Graph {
    let communities = communities.max(1);
    let mut b = GraphBuilder::undirected(n);
    let block = |v: usize| v * communities / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block(u) == block(v) { p_in } else { p_out };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(u, v, rng.gen_range(weights.clone()));
            }
        }
    }
    connect_components(&b.build(), weights, rng)
}

/// A caterpillar: a path spine with `legs` pendant nodes hanging off random
/// spine nodes — many degree-1 nodes stress the hitting-set fix-up.
pub fn caterpillar(
    spine: usize,
    legs: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut StdRng,
) -> Graph {
    let n = spine + legs;
    let mut b = GraphBuilder::undirected(n);
    for v in 0..spine.saturating_sub(1) {
        b.add_edge(v, v + 1, rng.gen_range(weights.clone()));
    }
    for leg in 0..legs {
        let attach = rng.gen_range(0..spine.max(1));
        b.add_edge(spine + leg, attach, rng.gen_range(weights.clone()));
    }
    b.build()
}

/// Adds random edges between connected components until the graph is
/// connected. Returns `g` unchanged if already connected.
pub fn connect_components(g: &Graph, weights: RangeInclusive<Weight>, rng: &mut StdRng) -> Graph {
    let n = g.n();
    if n == 0 {
        return g.clone();
    }
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.all_arcs() {
        uf.union(u, v);
    }
    if uf.components() == 1 {
        return g.clone();
    }
    let mut b = GraphBuilder::undirected(n);
    for (u, v, w) in g.edges() {
        b.add_edge(u, v, w);
    }
    // Link a representative of each component to a random node of the
    // lowest-ID component.
    let mut reps: Vec<usize> = Vec::new();
    let mut seen = vec![false; n];
    for v in 0..n {
        let r = uf.find(v);
        if !seen[r] {
            seen[r] = true;
            reps.push(v);
        }
    }
    for pair in reps.windows(2) {
        b.add_edge(pair[0], pair[1], rng.gen_range(weights.clone()));
    }
    b.build()
}

/// Named workload family, used by the experiment harness to sweep families
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Erdős–Rényi with average degree ~8, connected.
    Gnp,
    /// Random geometric, connected.
    Geometric,
    /// Preferential attachment, m = 3.
    PowerLaw,
    /// Near-square grid.
    Grid,
    /// Path with n/8 chords.
    PathChords,
    /// Exponentially spread weights.
    WideWeights,
}

impl Family {
    /// All families, in the order experiments report them.
    pub const ALL: [Family; 6] = [
        Family::Gnp,
        Family::Geometric,
        Family::PowerLaw,
        Family::Grid,
        Family::PathChords,
        Family::WideWeights,
    ];

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Gnp => "gnp",
            Family::Geometric => "geo",
            Family::PowerLaw => "ba",
            Family::Grid => "grid",
            Family::PathChords => "pathz",
            Family::WideWeights => "wide",
        }
    }

    /// Instantiates the family at `n` nodes with max weight ~`w_max`.
    pub fn generate(self, n: usize, w_max: Weight, rng: &mut StdRng) -> Graph {
        let w_max = w_max.max(1);
        match self {
            Family::Gnp => gnp_connected(n, (8.0 / n as f64).min(1.0), 1..=w_max, rng),
            Family::Geometric => {
                let r = (16.0 / n as f64).sqrt().min(1.0);
                random_geometric(n, r, w_max, rng)
            }
            Family::PowerLaw => preferential_attachment(n, 3, 1..=w_max, rng),
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                grid(
                    side.max(1),
                    n.div_euclid(side.max(1)).max(1),
                    1..=w_max,
                    rng,
                )
            }
            Family::PathChords => path_with_chords(n, n / 8, 1..=w_max, rng),
            Family::WideWeights => {
                let max_exp = crate::log2_ceil(w_max as usize).max(1);
                wide_weight_gnp(n, (8.0 / n as f64).min(1.0), max_exp, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gnp_connected_is_connected() {
        let g = gnp_connected(50, 0.02, 1..=10, &mut rng());
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let g1 = gnp(30, 0.2, 1..=9, &mut rng());
        let g2 = gnp(30, 0.2, 1..=9, &mut rng());
        assert_eq!(g1, g2);
    }

    #[test]
    fn geometric_weights_positive_and_connected() {
        let g = random_geometric(60, 0.3, 100, &mut rng());
        assert!(g.has_positive_weights());
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
    }

    #[test]
    fn preferential_attachment_connected_with_hub_degrees() {
        let g = preferential_attachment(100, 3, 1..=5, &mut rng());
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
        let max_deg = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 6, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn grid_dimensions() {
        let g = grid(4, 5, 1..=1, &mut rng());
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5); // horizontal + vertical edges
    }

    #[test]
    fn path_with_chords_contains_path() {
        let g = path_with_chords(20, 4, 1..=10, &mut rng());
        for v in 0..19 {
            assert!(g.edge_weight(v, v + 1).is_some());
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(10, 1..=3, &mut rng());
        assert_eq!(g.m(), 45);
    }

    #[test]
    fn wide_weights_are_powers_of_two() {
        let g = wide_weight_gnp(40, 0.2, 10, &mut rng());
        for (_, _, w) in g.edges() {
            assert!(w.is_power_of_two(), "weight {w} not a power of two");
        }
    }

    #[test]
    fn all_families_generate_connected_nontrivial_graphs() {
        for fam in Family::ALL {
            let g = fam.generate(64, 64, &mut rng());
            assert!(g.n() >= 60, "{}: n = {}", fam.name(), g.n());
            assert!(g.m() >= g.n() - 1, "{}: too few edges", fam.name());
            if fam != Family::Grid {
                let (_, c) = connected_components(&g);
                assert_eq!(c, 1, "{} should be connected", fam.name());
            }
        }
    }

    #[test]
    fn star_has_center_degree_n_minus_1() {
        let g = star(9, 1..=2, &mut rng());
        assert_eq!(g.degree(0), 8);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(5, 6, 1..=3, &mut rng());
        assert_eq!(g.n(), 30);
        for v in 0..30 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn hypercube_degree_and_diameter() {
        let g = hypercube(5, 1..=1, &mut rng());
        assert_eq!(g.n(), 32);
        for v in 0..32 {
            assert_eq!(g.degree(v), 5);
        }
        assert_eq!(crate::hops::hop_diameter(&g), 5);
    }

    #[test]
    fn communities_are_denser_inside() {
        let g = communities(80, 4, 0.5, 0.01, 1..=5, &mut rng());
        let block = |v: usize| v * 4 / 80;
        let (mut inside, mut outside) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if block(u) == block(v) {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        assert!(inside > 4 * outside, "inside {inside} vs outside {outside}");
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
    }

    #[test]
    fn caterpillar_has_pendant_legs() {
        let g = caterpillar(20, 15, 1..=4, &mut rng());
        assert_eq!(g.n(), 35);
        let pendants = (20..35).filter(|&v| g.degree(v) == 1).count();
        assert_eq!(pendants, 15);
    }
}
