//! Distance matrices and stretch auditing.
//!
//! [`DistMatrix`] is the dense `n × n` array of distances (or distance
//! estimates δ) that APSP algorithms produce. [`StretchStats`] audits an
//! estimate against exact distances and is the measurement every experiment
//! reports: an algorithm is an α-approximation iff
//! `d(u,v) ≤ δ(u,v) ≤ α·d(u,v)` for all pairs (Section 2.1).

use crate::{NodeId, Weight, INF};
use cc_par::ExecPolicy;

/// Dense `n × n` distance (or estimate) matrix, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct DistMatrix {
    n: usize,
    data: Vec<Weight>,
}

impl std::fmt::Debug for DistMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DistMatrix(n={})", self.n)?;
        let show = self.n.min(8);
        for u in 0..show {
            let row: Vec<String> = (0..show)
                .map(|v| {
                    let d = self.get(u, v);
                    if d >= INF {
                        "∞".into()
                    } else {
                        d.to_string()
                    }
                })
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.n > show { ", …" } else { "" }
            )?;
        }
        Ok(())
    }
}

impl DistMatrix {
    /// A matrix with zero diagonal and `INF` everywhere else.
    pub fn infinite(n: usize) -> Self {
        let mut m = Self {
            n,
            data: vec![INF; n * n],
        };
        for v in 0..n {
            m.set(v, v, 0);
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_raw(n: usize, data: Vec<Weight>) -> Self {
        assert_eq!(data.len(), n * n, "raw distance data must be n*n");
        Self { n, data }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> Weight {
        self.data[u * self.n + v]
    }

    /// Sets entry `(u, v)`.
    #[inline]
    pub fn set(&mut self, u: NodeId, v: NodeId, d: Weight) {
        self.data[u * self.n + v] = d;
    }

    /// Lowers entry `(u, v)` to `d` if `d` is smaller.
    #[inline]
    pub fn relax(&mut self, u: NodeId, v: NodeId, d: Weight) {
        let e = &mut self.data[u * self.n + v];
        if d < *e {
            *e = d;
        }
    }

    /// Row `u` as a slice.
    pub fn row(&self, u: NodeId) -> &[Weight] {
        &self.data[u * self.n..(u + 1) * self.n]
    }

    /// Mutable row `u`.
    pub fn row_mut(&mut self, u: NodeId) -> &mut [Weight] {
        &mut self.data[u * self.n..(u + 1) * self.n]
    }

    /// Raw row-major data.
    pub fn raw(&self) -> &[Weight] {
        &self.data
    }

    /// Approximate resident memory of the matrix in bytes: the n² weight
    /// cells (struct overhead excluded). The oracle-backend memory accounting
    /// in `BENCH_serve.json` / `BENCH_oracle.json` reports this number for
    /// dense backends.
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<Weight>()) as u64
    }

    /// Replaces every entry with `min(self, other)` entrywise.
    pub fn entrywise_min(&mut self, other: &DistMatrix) {
        assert_eq!(self.n, other.n);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// Makes the matrix symmetric by taking `min(m[u][v], m[v][u])`.
    ///
    /// Several intermediate estimates (hopset-derived distances, filtered
    /// k-nearest outputs) are formally directed even on undirected inputs
    /// (Section 4.1 notes `d'(v,u) ≠ d'(u,v)` is possible); the skeleton
    /// lemma requires a symmetric δ, so callers symmetrize first.
    pub fn symmetrize_min(&mut self) {
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let m = self.get(u, v).min(self.get(v, u));
                self.set(u, v, m);
                self.set(v, u, m);
            }
        }
    }

    /// Whether `m[u][v] == m[v][u]` for all pairs.
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|u| (0..u).all(|v| self.get(u, v) == self.get(v, u)))
    }

    /// Audits this matrix as an estimate of `exact`; see [`StretchStats`].
    pub fn stretch_vs(&self, exact: &DistMatrix) -> StretchStats {
        StretchStats::audit(self, exact)
    }

    /// [`DistMatrix::stretch_vs`] under an explicit [`ExecPolicy`].
    pub fn stretch_vs_with(&self, exact: &DistMatrix, exec: ExecPolicy) -> StretchStats {
        StretchStats::audit_with(self, exact, exec)
    }
}

/// The result of auditing a distance estimate δ against exact distances d.
///
/// For an α-approximation (Section 2.1) we need, for **every** pair,
/// `d(u,v) ≤ δ(u,v) ≤ α·d(u,v)`. The audit reports:
///
/// * [`underestimates`](Self::underestimates): pairs with `δ < d` — any
///   nonzero value means the output is not a valid distance estimate at all;
/// * [`max_stretch`](Self::max_stretch) / [`mean_stretch`](Self::mean_stretch)
///   over pairs with `0 < d < ∞`;
/// * [`missing`](Self::missing): reachable pairs estimated as `INF`.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchStats {
    /// Number of ordered pairs with finite exact distance > 0.
    pub pairs: usize,
    /// Pairs where the estimate is below the true distance (must be 0).
    pub underestimates: usize,
    /// Reachable pairs the estimate reports as infinite.
    pub missing: usize,
    /// max δ(u,v)/d(u,v).
    pub max_stretch: f64,
    /// mean δ(u,v)/d(u,v).
    pub mean_stretch: f64,
    /// 99th percentile of δ(u,v)/d(u,v).
    pub p99_stretch: f64,
}

impl StretchStats {
    /// Computes stretch statistics of `estimate` against `exact`, under the
    /// `CC_THREADS` execution default; see [`StretchStats::audit_with`].
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn audit(estimate: &DistMatrix, exact: &DistMatrix) -> StretchStats {
        Self::audit_with(estimate, exact, ExecPolicy::from_env())
    }

    /// [`StretchStats::audit`] under an explicit [`ExecPolicy`]: rows are
    /// audited in parallel shards and the per-shard tallies merged in row
    /// order, so the result is identical for every policy (the ratio list is
    /// sorted before any float accumulation, which also fixes the summation
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn audit_with(estimate: &DistMatrix, exact: &DistMatrix, exec: ExecPolicy) -> StretchStats {
        assert_eq!(estimate.n(), exact.n(), "estimate/exact dimension mismatch");
        let n = exact.n();
        let shard_tallies: Vec<(Vec<f64>, usize, usize)> = exec.map_shards_collect(n, |rows| {
            let mut ratios: Vec<f64> = Vec::new();
            let mut under = 0usize;
            let mut missing = 0usize;
            for u in rows {
                for v in 0..n {
                    let d = exact.get(u, v);
                    if u == v || d == 0 || d >= INF {
                        continue;
                    }
                    let e = estimate.get(u, v);
                    if e >= INF {
                        missing += 1;
                        continue;
                    }
                    if e < d {
                        under += 1;
                    }
                    ratios.push(e as f64 / d as f64);
                }
            }
            vec![(ratios, under, missing)]
        });
        let mut ratios: Vec<f64> = Vec::new();
        let mut under = 0usize;
        let mut missing = 0usize;
        for (shard_ratios, shard_under, shard_missing) in shard_tallies {
            ratios.extend(shard_ratios);
            under += shard_under;
            missing += shard_missing;
        }
        Self::from_tally(ratios, under, missing)
    }

    /// Audits a **seeded random sample** of ordered pairs instead of all n²
    /// of them — the only affordable mode once estimates leave the dense
    /// regime (a full audit of an n = 50k sketch is 2.5 × 10⁹ pairs).
    ///
    /// Samples up to `max_pairs` distinct ordered pairs `(u, v)`, `u ≠ v`,
    /// with an RNG seeded by `seed`, then applies exactly the same per-pair
    /// tally as [`StretchStats::audit_with`] (pairs with `d = 0` or
    /// `d = ∞` are skipped, not resampled, so the reported
    /// [`pairs`](Self::pairs) can be smaller than `max_pairs`). The result
    /// is a deterministic function of `(n, max_pairs, seed)` and the two
    /// matrices.
    ///
    /// When `max_pairs` covers every ordered pair, the sample *is* the full
    /// pair set and the result is identical to [`StretchStats::audit`] —
    /// the convergence law the sampled-audit proptest pins down.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn audit_sampled(
        estimate: &DistMatrix,
        exact: &DistMatrix,
        max_pairs: usize,
        seed: u64,
    ) -> StretchStats {
        assert_eq!(estimate.n(), exact.n(), "estimate/exact dimension mismatch");
        let n = exact.n();
        let universe = n.saturating_mul(n.saturating_sub(1));
        let mut ratios: Vec<f64> = Vec::new();
        let mut under = 0usize;
        let mut missing = 0usize;
        let mut tally = |u: NodeId, v: NodeId| {
            let d = exact.get(u, v);
            if d == 0 || d >= INF {
                return;
            }
            let e = estimate.get(u, v);
            if e >= INF {
                missing += 1;
                return;
            }
            if e < d {
                under += 1;
            }
            ratios.push(e as f64 / d as f64);
        };
        if max_pairs >= universe {
            for u in 0..n {
                for v in 0..n {
                    if u != v {
                        tally(u, v);
                    }
                }
            }
        } else {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut seen = std::collections::HashSet::with_capacity(max_pairs);
            while seen.len() < max_pairs {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && seen.insert(u * n + v) {
                    tally(u, v);
                }
            }
        }
        Self::from_tally(ratios, under, missing)
    }

    /// Finalizes a tally of per-pair stretch ratios (δ/d over audited pairs)
    /// into summary statistics. The ratio list is sorted before any float
    /// accumulation, which fixes the summation order whatever order the
    /// ratios were collected in. Public so callers auditing estimates that
    /// never materialize as a [`DistMatrix`] (e.g. sublinear oracle sketches
    /// audited row-by-row against sampled exact sources) produce the same
    /// statistics the matrix audits do.
    pub fn from_tally(mut ratios: Vec<f64>, under: usize, missing: usize) -> StretchStats {
        ratios.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let pairs = ratios.len() + missing;
        let max = ratios.last().copied().unwrap_or(1.0);
        let mean = if ratios.is_empty() {
            1.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        let p99 = if ratios.is_empty() {
            1.0
        } else {
            ratios[((ratios.len() - 1) as f64 * 0.99) as usize]
        };
        StretchStats {
            pairs,
            underestimates: under,
            missing,
            max_stretch: max,
            mean_stretch: mean,
            p99_stretch: p99,
        }
    }

    /// Whether the estimate is a valid α-approximation: never underestimates,
    /// never misses a reachable pair, and max stretch ≤ `alpha` (with a tiny
    /// float tolerance).
    pub fn is_valid_approximation(&self, alpha: f64) -> bool {
        self.underestimates == 0 && self.missing == 0 && self.max_stretch <= alpha + 1e-9
    }
}

impl std::fmt::Display for StretchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pairs={} stretch(max={:.3}, mean={:.3}, p99={:.3}) under={} missing={}",
            self.pairs,
            self.max_stretch,
            self.mean_stretch,
            self.p99_stretch,
            self.underestimates,
            self.missing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_matrix_has_zero_diagonal() {
        let m = DistMatrix::infinite(3);
        assert_eq!(m.get(1, 1), 0);
        assert_eq!(m.get(0, 2), INF);
    }

    #[test]
    fn relax_only_lowers() {
        let mut m = DistMatrix::infinite(2);
        m.relax(0, 1, 5);
        m.relax(0, 1, 9);
        assert_eq!(m.get(0, 1), 5);
        m.relax(0, 1, 3);
        assert_eq!(m.get(0, 1), 3);
    }

    #[test]
    fn symmetrize_takes_min() {
        let mut m = DistMatrix::infinite(2);
        m.set(0, 1, 7);
        m.set(1, 0, 3);
        assert!(!m.is_symmetric());
        m.symmetrize_min();
        assert_eq!(m.get(0, 1), 3);
        assert!(m.is_symmetric());
    }

    #[test]
    fn stretch_exact_estimate_is_one() {
        let mut exact = DistMatrix::infinite(3);
        exact.set(0, 1, 2);
        exact.set(1, 0, 2);
        let s = exact.clone().stretch_vs(&exact);
        assert_eq!(s.pairs, 2);
        assert_eq!(s.max_stretch, 1.0);
        assert!(s.is_valid_approximation(1.0));
    }

    #[test]
    fn stretch_detects_underestimate_and_missing() {
        let mut exact = DistMatrix::infinite(3);
        exact.set(0, 1, 10);
        exact.set(1, 0, 10);
        exact.set(0, 2, 4);
        exact.set(2, 0, 4);
        let mut est = exact.clone();
        est.set(0, 1, 5); // underestimate
        est.set(0, 2, INF); // missing
        let s = est.stretch_vs(&exact);
        assert_eq!(s.underestimates, 1);
        assert_eq!(s.missing, 1);
        assert!(!s.is_valid_approximation(100.0));
    }

    #[test]
    fn stretch_max_computed() {
        let mut exact = DistMatrix::infinite(2);
        exact.set(0, 1, 4);
        exact.set(1, 0, 4);
        let mut est = exact.clone();
        est.set(0, 1, 12);
        let s = est.stretch_vs(&exact);
        assert!((s.max_stretch - 3.0).abs() < 1e-12);
        assert!(s.is_valid_approximation(3.0));
        assert!(!s.is_valid_approximation(2.9));
    }

    #[test]
    fn approx_mem_bytes_is_cell_payload() {
        assert_eq!(DistMatrix::infinite(10).approx_mem_bytes(), 800);
        assert_eq!(DistMatrix::infinite(0).approx_mem_bytes(), 0);
    }

    #[test]
    fn sampled_audit_with_full_coverage_equals_full_audit() {
        let mut exact = DistMatrix::infinite(4);
        for (u, v, d) in [(0, 1, 10), (0, 2, 4), (1, 2, 6), (2, 3, 1)] {
            exact.set(u, v, d);
            exact.set(v, u, d);
        }
        let mut est = exact.clone();
        est.set(0, 1, 25);
        est.set(1, 0, 25);
        est.set(2, 3, INF);
        let full = est.stretch_vs(&exact);
        let sampled = StretchStats::audit_sampled(&est, &exact, 4 * 3, 99);
        assert_eq!(sampled, full);
        // Oversampling beyond the universe is the same full audit.
        assert_eq!(StretchStats::audit_sampled(&est, &exact, 10_000, 7), full);
    }

    #[test]
    fn sampled_audit_is_deterministic_per_seed_and_bounded() {
        let mut exact = DistMatrix::infinite(12);
        for u in 0..12 {
            for v in 0..12 {
                if u != v {
                    exact.set(u, v, (u + v) as Weight);
                }
            }
        }
        let est = exact.clone();
        let a = StretchStats::audit_sampled(&est, &exact, 20, 5);
        let b = StretchStats::audit_sampled(&est, &exact, 20, 5);
        assert_eq!(a, b);
        assert!(a.pairs <= 20);
        let c = StretchStats::audit_sampled(&est, &exact, 20, 6);
        assert!(c.pairs <= 20);
    }

    #[test]
    fn entrywise_min_combines() {
        let mut a = DistMatrix::infinite(2);
        a.set(0, 1, 9);
        let mut b = DistMatrix::infinite(2);
        b.set(0, 1, 4);
        a.entrywise_min(&b);
        assert_eq!(a.get(0, 1), 4);
    }
}
