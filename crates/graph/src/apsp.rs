//! Exact all-pairs shortest paths (ground truth).

use crate::sssp::{dijkstra_into, DijkstraScratch};
use crate::{wadd, DistMatrix, Graph, INF};
use cc_par::ExecPolicy;

/// Exact APSP via Dijkstra from every source, under the `CC_THREADS`
/// execution default ([`ExecPolicy::from_env`]); see [`exact_apsp_with`].
///
/// This is the ground truth all experiments compare against. Runs in
/// `O(n · m log n)` time centrally (it is *not* a Congested Clique algorithm;
/// the simulated baselines live in `cc-baselines`).
pub fn exact_apsp(g: &Graph) -> DistMatrix {
    exact_apsp_with(g, ExecPolicy::from_env())
}

/// [`exact_apsp`] under an explicit [`ExecPolicy`]: the per-source Dijkstras
/// are independent, so rows are computed in parallel row blocks. Output is
/// bit-identical for every policy.
///
/// Each worker writes the Dijkstra distances straight into its output rows
/// and reuses one [`DijkstraScratch`] heap across all sources in its block,
/// so the per-source allocation cost is amortized away.
pub fn exact_apsp_with(g: &Graph, exec: ExecPolicy) -> DistMatrix {
    let n = g.n();
    let mut sp = cc_obs::span("exact-apsp");
    sp.attr("n", n as f64);
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![INF; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        let mut scratch = DijkstraScratch::new();
        for (off, row) in chunk.chunks_mut(n).enumerate() {
            let s = block * rows_per_block + off;
            dijkstra_into(g, s, row, &mut scratch);
        }
    });
    DistMatrix::from_raw(n, data)
}

/// Exact distance rows for a subset of sources: `result[i]` is the
/// Dijkstra row of `sources[i]` on `g`, computed in parallel shards. This
/// is the per-source repair kernel of the dynamic update engine
/// (`cc_dynamic`): each row is exactly the row [`exact_apsp_with`] would
/// produce, so patching rows into an existing exact matrix is
/// bit-identical to a full recomputation.
pub fn exact_rows_with(g: &Graph, sources: &[usize], exec: ExecPolicy) -> Vec<Vec<crate::Weight>> {
    let n = g.n();
    let mut sp = cc_obs::span("exact-rows");
    sp.attr("rows", sources.len() as f64);
    exec.map_shards_collect(sources.len(), |range| {
        let mut scratch = DijkstraScratch::new();
        range
            .map(|i| {
                let mut row = vec![INF; n];
                dijkstra_into(g, sources[i], &mut row, &mut scratch);
                row
            })
            .collect()
    })
}

/// Exact APSP via Floyd–Warshall. `O(n³)`; used to cross-check
/// [`exact_apsp`] on small graphs.
pub fn floyd_warshall(g: &Graph) -> DistMatrix {
    let n = g.n();
    let mut m = DistMatrix::infinite(n);
    for (u, v, w) in g.all_arcs() {
        m.relax(u, v, w);
    }
    for k in 0..n {
        for u in 0..n {
            let duk = m.get(u, k);
            if duk >= INF {
                continue;
            }
            for v in 0..n {
                let nd = wadd(duk, m.get(k, v));
                m.relax(u, v, nd);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    #[test]
    fn dijkstra_and_floyd_agree() {
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[
                (0, 1, 3),
                (1, 2, 1),
                (2, 3, 7),
                (3, 4, 2),
                (0, 4, 20),
                (1, 3, 5),
            ],
        );
        assert_eq!(exact_apsp(&g), floyd_warshall(&g));
    }

    #[test]
    fn directed_apsp_is_asymmetric() {
        let g = Graph::from_edges(3, Direction::Directed, &[(0, 1, 1), (1, 2, 1)]);
        let m = exact_apsp(&g);
        assert_eq!(m.get(0, 2), 2);
        assert_eq!(m.get(2, 0), INF);
    }

    #[test]
    fn exact_rows_match_full_apsp() {
        let g = Graph::from_edges(
            6,
            Direction::Undirected,
            &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 4, 4), (0, 5, 9)],
        );
        let full = exact_apsp(&g);
        for exec in [ExecPolicy::Seq, ExecPolicy::with_threads(3)] {
            let rows = exact_rows_with(&g, &[4, 0, 2], exec);
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[0], full.row(4));
            assert_eq!(rows[1], full.row(0));
            assert_eq!(rows[2], full.row(2));
        }
        assert!(exact_rows_with(&g, &[], ExecPolicy::Seq).is_empty());
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1), (2, 3, 1)]);
        let m = exact_apsp(&g);
        assert_eq!(m.get(0, 3), INF);
        assert_eq!(m.get(2, 3), 1);
    }
}
