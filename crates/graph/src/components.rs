//! Connected components, including weight-filtered components.
//!
//! The zero-weight reduction (Theorem 2.1 / Appendix A) needs the connected
//! components of the subgraph formed by zero-weight edges: nodes `u`, `v`
//! belong together iff `d(u, v) = 0`.

use crate::unionfind::UnionFind;
use crate::{Graph, NodeId, Weight};

/// Connected components of `g` (ignoring direction); returns `comp[v]` =
/// component index in `0..count`, labeled by order of first appearance.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    components_filtered(g, |_| true)
}

/// Connected components of the subgraph of edges whose weight passes `keep`
/// (ignoring direction). Singleton nodes form their own components.
pub fn components_filtered(g: &Graph, keep: impl Fn(Weight) -> bool) -> (Vec<usize>, usize) {
    let mut uf = UnionFind::new(g.n());
    for (u, v, w) in g.all_arcs() {
        if keep(w) {
            uf.union(u, v);
        }
    }
    relabel(&mut uf, g.n())
}

/// Components of the zero-weight subgraph (the clusters compressed by the
/// Theorem 2.1 reduction).
pub fn zero_weight_components(g: &Graph) -> (Vec<usize>, usize) {
    components_filtered(g, |w| w == 0)
}

fn relabel(uf: &mut UnionFind, n: usize) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; n];
    let mut comp = vec![0usize; n];
    let mut count = 0;
    for (v, c) in comp.iter_mut().enumerate() {
        let r = uf.find(v);
        if label[r] == usize::MAX {
            label[r] = count;
            count += 1;
        }
        *c = label[r];
    }
    (comp, count)
}

/// The lowest-ID node of each component: `leaders[c]` is the representative
/// ("leader" in Appendix A, Step 2) of component `c`.
pub fn component_leaders(comp: &[usize], count: usize) -> Vec<NodeId> {
    let mut leaders = vec![usize::MAX; count];
    for (v, &c) in comp.iter().enumerate() {
        if v < leaders[c] {
            leaders[c] = v;
        }
    }
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    #[test]
    fn components_of_two_cliques() {
        let g = Graph::from_edges(
            6,
            Direction::Undirected,
            &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)],
        );
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn zero_weight_components_ignore_positive_edges() {
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 0), (1, 2, 0), (2, 3, 5), (3, 4, 0)],
        );
        let (comp, count) = zero_weight_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[2], comp[3]);
    }

    #[test]
    fn leaders_are_lowest_ids() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(1, 3, 0), (0, 2, 0)]);
        let (comp, count) = zero_weight_components(&g);
        let leaders = component_leaders(&comp, count);
        assert_eq!(leaders.len(), 2);
        assert!(leaders.contains(&0));
        assert!(leaders.contains(&1));
    }

    #[test]
    fn labels_are_dense_and_in_range() {
        let g = Graph::from_edges(7, Direction::Undirected, &[(6, 5, 1)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 6);
        assert!(comp.iter().all(|&c| c < count));
    }
}
