//! Hop-structure utilities: hop diameters, shortest-path hop counts, and
//! path extraction.
//!
//! The paper's hop bounds (β in Lemma 3.2, `h` in Lemma 8.1, the `h^i`
//! radii in Section 5) are all statements about *hop counts along
//! minimum-length paths*; these helpers measure them on concrete graphs and
//! reconstruct witnesses.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{wadd, Graph, NodeId, Weight, INF};

/// Per-source result of [`shortest_paths_with_parents`].
#[derive(Debug, Clone)]
pub struct PathTree {
    /// Source node.
    pub source: NodeId,
    /// `(distance, hops)` per node, minimized lexicographically; unreachable
    /// nodes hold `(INF, usize::MAX)`.
    pub best: Vec<(Weight, usize)>,
    /// Predecessor on the stored optimal path (`usize::MAX` for the source
    /// and unreachable nodes).
    pub parent: Vec<NodeId>,
}

impl PathTree {
    /// The node sequence of the stored shortest path to `dst`, or `None`
    /// when unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if self.best[dst].0 >= INF {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.source {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Hops of the stored optimal path to `dst` (`usize::MAX` if
    /// unreachable).
    pub fn hops_to(&self, dst: NodeId) -> usize {
        self.best[dst].1
    }
}

/// Dijkstra minimizing `(length, hops)` with parent tracking.
pub fn shortest_paths_with_parents(g: &Graph, source: NodeId) -> PathTree {
    let n = g.n();
    let mut best = vec![(INF, usize::MAX); n];
    let mut parent = vec![usize::MAX; n];
    best[source] = (0, 0);
    let mut heap: BinaryHeap<Reverse<(Weight, usize, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((0, 0, source)));
    while let Some(Reverse((d, h, u))) = heap.pop() {
        if (d, h) > best[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = wadd(d, w);
            if nd >= INF {
                continue;
            }
            let nh = h + 1;
            if (nd, nh) < best[v] {
                best[v] = (nd, nh);
                parent[v] = u;
                heap.push(Reverse((nd, nh, v)));
            }
        }
    }
    PathTree {
        source,
        best,
        parent,
    }
}

/// The **hop diameter under shortest paths**: the maximum, over connected
/// pairs, of the minimum hop count among minimum-length paths. This is the
/// `h` for which Lemma 8.1's guarantee covers *every* pair.
pub fn shortest_path_hop_diameter(g: &Graph) -> usize {
    let mut worst = 0;
    for s in 0..g.n() {
        let tree = shortest_paths_with_parents(g, s);
        for v in 0..g.n() {
            let (d, h) = tree.best[v];
            if d < INF && h != usize::MAX {
                worst = worst.max(h);
            }
        }
    }
    worst
}

/// The unweighted (BFS) diameter: maximum hop distance over connected pairs.
pub fn hop_diameter(g: &Graph) -> usize {
    let n = g.n();
    let mut worst = 0;
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        dist[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    worst = worst.max(dist[v]);
                    queue.push_back(v);
                }
            }
        }
    }
    worst
}

/// Verifies that `path` is a real path in `g` and returns its length.
pub fn path_length(g: &Graph, path: &[NodeId]) -> Option<Weight> {
    let mut total = 0;
    for pair in path.windows(2) {
        total = wadd(total, g.edge_weight(pair[0], pair[1])?);
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn diamond() -> Graph {
        Graph::from_edges(
            4,
            Direction::Undirected,
            &[(0, 1, 2), (1, 3, 2), (0, 2, 5), (2, 3, 1), (0, 3, 4)],
        )
    }

    #[test]
    fn path_tree_minimizes_hops_among_shortest() {
        let tree = shortest_paths_with_parents(&diamond(), 0);
        // d(0,3) = 4 via either 0-1-3 (2 hops) or 0-3 (1 hop).
        assert_eq!(tree.best[3], (4, 1));
        assert_eq!(tree.path_to(3), Some(vec![0, 3]));
    }

    #[test]
    fn extracted_paths_have_claimed_length() {
        let g = diamond();
        for s in 0..g.n() {
            let tree = shortest_paths_with_parents(&g, s);
            for v in 0..g.n() {
                if let Some(p) = tree.path_to(v) {
                    assert_eq!(path_length(&g, &p), Some(tree.best[v].0));
                    assert_eq!(p.len() - 1, tree.hops_to(v));
                }
            }
        }
    }

    #[test]
    fn unreachable_gives_none() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        let tree = shortest_paths_with_parents(&g, 0);
        assert_eq!(tree.path_to(2), None);
    }

    #[test]
    fn hop_diameters_on_path_graph() {
        let edges: Vec<_> = (0..9).map(|i| (i, i + 1, 1)).collect();
        let g = Graph::from_edges(10, Direction::Undirected, &edges);
        assert_eq!(hop_diameter(&g), 9);
        assert_eq!(shortest_path_hop_diameter(&g), 9);
    }

    #[test]
    fn weighted_shortcut_lowers_sp_hop_diameter() {
        // Path of weight-1 edges plus one heavy chord: the chord does not
        // lie on any shortest path, so the SP hop diameter stays 9, while a
        // light chord would reduce it.
        let mut edges: Vec<_> = (0..9).map(|i| (i, i + 1, 1)).collect();
        edges.push((0, 9, 2)); // light chord: d(0,9) = 2 via 1 hop
        let g = Graph::from_edges(10, Direction::Undirected, &edges);
        assert!(shortest_path_hop_diameter(&g) < 9);
    }

    #[test]
    fn path_length_rejects_non_paths() {
        let g = diamond();
        assert_eq!(path_length(&g, &[0, 2, 1]), None); // no edge 2-1
    }
}
