//! Plain-text graph serialization.
//!
//! The format is a line-oriented edge list, friendly to shell tooling:
//!
//! ```text
//! # comment
//! n 5
//! 0 1 10
//! 1 2 3
//! ```
//!
//! The `n <count>` header is optional; without it, the node count is
//! `max id + 1`. Used by the `ccapsp` CLI and for exchanging workloads.

use std::io::BufRead;
use std::path::Path;

use crate::graph::{Direction, Graph};
use crate::Weight;

/// Errors arising when parsing an edge-list file.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and content.
    Malformed(usize, String),
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error: {e}"),
            ParseGraphError::Malformed(line, content) => {
                write!(f, "malformed line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed(..) => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// Parses an edge list from a reader.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] for lines that are neither
/// comments (`#`), an `n <count>` header, nor `u v w` triples.
pub fn read_edge_list(
    reader: impl BufRead,
    direction: Direction,
) -> Result<Graph, ParseGraphError> {
    let mut edges: Vec<(usize, usize, Weight)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("n"), Some(count), None, None) => {
                declared_n = count.parse().ok();
                if declared_n.is_none() {
                    return Err(ParseGraphError::Malformed(idx + 1, line));
                }
            }
            (Some(u), Some(v), Some(w), None) => match (u.parse(), v.parse(), w.parse()) {
                (Ok(u), Ok(v), Ok(w)) => edges.push((u, v, w)),
                _ => return Err(ParseGraphError::Malformed(idx + 1, line)),
            },
            _ => return Err(ParseGraphError::Malformed(idx + 1, line)),
        }
    }
    let max_id = edges
        .iter()
        .map(|&(u, v, _)| u.max(v) + 1)
        .max()
        .unwrap_or(0);
    let n = declared_n.unwrap_or(max_id).max(max_id);
    Ok(Graph::from_edges(n, direction, &edges))
}

/// Reads an edge-list file from disk.
///
/// # Errors
///
/// I/O and parse errors; see [`read_edge_list`].
pub fn read_graph_file(
    path: impl AsRef<Path>,
    direction: Direction,
) -> Result<Graph, ParseGraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file), direction)
}

/// Writes a graph as an edge list (with an `n` header so isolated trailing
/// nodes survive a round-trip).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list(g: &Graph, mut writer: impl std::io::Write) -> std::io::Result<()> {
    writeln!(writer, "# congested-clique-apsp edge list")?;
    writeln!(writer, "n {}", g.n())?;
    for (u, v, w) in g.edges() {
        writeln!(writer, "{u} {v} {w}")?;
    }
    Ok(())
}

/// Writes a graph to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_graph_file(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list() {
        let text = "# hello\nn 4\n0 1 10\n1 2 3\n";
        let g = read_edge_list(Cursor::new(text), Direction::Undirected).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(3));
    }

    #[test]
    fn infers_n_without_header() {
        let text = "0 5 1\n";
        let g = read_edge_list(Cursor::new(text), Direction::Undirected).unwrap();
        assert_eq!(g.n(), 6);
    }

    #[test]
    fn header_grows_to_fit_edges() {
        let text = "n 2\n0 9 1\n";
        let g = read_edge_list(Cursor::new(text), Direction::Undirected).unwrap();
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "0 1\n";
        let err = read_edge_list(Cursor::new(text), Direction::Undirected).unwrap_err();
        assert!(matches!(err, ParseGraphError::Malformed(1, _)), "{err}");
        let text = "0 1 x\n";
        assert!(read_edge_list(Cursor::new(text), Direction::Undirected).is_err());
    }

    #[test]
    fn round_trips() {
        let g = Graph::from_edges(5, Direction::Undirected, &[(0, 1, 7), (2, 4, 1), (1, 3, 9)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Direction::Undirected).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn directed_round_trip_preserves_orientation() {
        let g = Graph::from_edges(3, Direction::Directed, &[(2, 0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Direction::Directed).unwrap();
        assert_eq!(back.edge_weight(2, 0), Some(4));
        assert_eq!(back.edge_weight(0, 2), None);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list(Cursor::new(""), Direction::Undirected).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cc-apsp-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 3, 2)]);
        write_graph_file(&g, &path).unwrap();
        let back = read_graph_file(&path, Direction::Undirected).unwrap();
        assert_eq!(g, back);
    }
}
