//! Compact CSR weighted graphs.
//!
//! [`Graph`] is the single graph representation used across the workspace.
//! It stores a weighted graph in compressed-sparse-row form: for each node
//! `u`, the slice [`Graph::neighbors`]`(u)` lists `(v, w)` pairs for every
//! edge leaving `u`. Undirected graphs store each edge in both directions.
//!
//! Parallel edges are collapsed to the minimum weight at build time, matching
//! the paper's convention ("in the presence of parallel edges, only the one
//! with the minimum weight is retained", Section 6.1). Self-loops are dropped:
//! `d(v, v) = 0` always.

use crate::{NodeId, Weight};

/// Whether a [`Graph`] interprets its edges as one-way or two-way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Every added edge `(u, v)` also exists as `(v, u)` with the same weight.
    Undirected,
    /// Edges are one-way.
    Directed,
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use cc_graph::GraphBuilder;
/// let mut b = GraphBuilder::undirected(4);
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 3);
/// b.add_edge(1, 2, 7); // parallel edge, collapsed to weight 3
/// let g = b.build();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.neighbors(1).count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    direction: Direction,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Starts an undirected graph on `n` nodes.
    pub fn undirected(n: usize) -> Self {
        Self {
            n,
            direction: Direction::Undirected,
            edges: Vec::new(),
        }
    }

    /// Starts a directed graph on `n` nodes.
    pub fn directed(n: usize) -> Self {
        Self {
            n,
            direction: Direction::Directed,
            edges: Vec::new(),
        }
    }

    /// Adds an edge. Self-loops are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u}, {v}) out of range for n={}",
            self.n
        );
        if u != v {
            self.edges.push((u, v, w));
        }
        self
    }

    /// Number of edge insertions so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR [`Graph`], collapsing parallel edges to minimum
    /// weight.
    pub fn build(&self) -> Graph {
        let mut all: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(
            self.edges.len()
                * if self.direction == Direction::Undirected {
                    2
                } else {
                    1
                },
        );
        for &(u, v, w) in &self.edges {
            all.push((u, v, w));
            if self.direction == Direction::Undirected {
                all.push((v, u, w));
            }
        }
        all.sort_unstable();
        // Collapse parallel edges: sorted by (u, v, w), keep first (min w).
        all.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);

        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _, _) in &all {
            offsets[u + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = all.iter().map(|e| e.1).collect();
        let weights: Vec<Weight> = all.iter().map(|e| e.2).collect();
        Graph {
            n: self.n,
            direction: self.direction,
            offsets,
            targets,
            weights,
        }
    }
}

/// A weighted graph in CSR form.
///
/// See the [module docs](self) for conventions. Construct with
/// [`GraphBuilder`] or [`Graph::from_edges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    direction: Direction,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
}

impl Graph {
    /// Builds a graph directly from an edge list.
    ///
    /// ```
    /// use cc_graph::graph::{Graph, Direction};
    /// let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 2), (1, 2, 4)]);
    /// assert_eq!(g.m(), 2);
    /// ```
    pub fn from_edges(n: usize, direction: Direction, edges: &[(NodeId, NodeId, Weight)]) -> Self {
        let mut b = match direction {
            Direction::Undirected => GraphBuilder::undirected(n),
            Direction::Directed => GraphBuilder::directed(n),
        };
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// An empty graph (no edges) on `n` nodes.
    pub fn empty(n: usize, direction: Direction) -> Self {
        Self::from_edges(n, direction, &[])
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges. For undirected graphs this counts each edge once.
    pub fn m(&self) -> usize {
        match self.direction {
            Direction::Undirected => self.targets.len() / 2,
            Direction::Directed => self.targets.len(),
        }
    }

    /// Number of stored arcs (directed adjacency entries).
    pub fn arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph is directed.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The out-neighbors of `u` as `(target, weight)` pairs, sorted by target.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        match self.targets[lo..hi].binary_search(&v) {
            Ok(i) => Some(self.weights[lo + i]),
            Err(_) => None,
        }
    }

    /// Iterates all arcs `(u, v, w)`. Undirected edges appear in both
    /// directions; use [`Graph::edges`] for one direction only.
    pub fn all_arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        (0..self.n).flat_map(move |u| self.neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// Iterates each undirected edge once (`u < v`), or every arc when
    /// directed.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, Weight)> {
        match self.direction {
            Direction::Undirected => self.all_arcs().filter(|&(u, v, _)| u < v).collect(),
            Direction::Directed => self.all_arcs().collect(),
        }
    }

    /// Maximum edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Minimum edge weight, or 0 for an edgeless graph.
    pub fn min_weight(&self) -> Weight {
        self.weights.iter().copied().min().unwrap_or(0)
    }

    /// The `count` lightest outgoing edges of `u`, ties broken by target ID.
    ///
    /// This is the per-node filtering primitive used throughout Sections 4
    /// and 5 of the paper ("the √n shortest outgoing edges").
    pub fn lightest_out_edges(&self, u: NodeId, count: usize) -> Vec<(NodeId, Weight)> {
        let mut out: Vec<(NodeId, Weight)> = self.neighbors(u).collect();
        out.sort_unstable_by_key(|&(v, w)| (w, v));
        out.truncate(count);
        out
    }

    /// Returns a new graph with every edge of `self` plus every edge of
    /// `extra` (collapsing duplicates to minimum weight). Used to form
    /// `G ∪ H` when augmenting with a hopset.
    ///
    /// # Panics
    ///
    /// Panics if node counts differ.
    pub fn union(&self, extra: &Graph) -> Graph {
        assert_eq!(self.n, extra.n, "graph union requires equal node counts");
        assert_eq!(
            self.direction, extra.direction,
            "graph union requires equal directedness"
        );
        let mut b = match self.direction {
            Direction::Undirected => GraphBuilder::undirected(self.n),
            Direction::Directed => GraphBuilder::directed(self.n),
        };
        for (u, v, w) in self.all_arcs().chain(extra.all_arcs()) {
            // all_arcs yields both directions for undirected graphs; adding
            // them again is harmless because build() dedups.
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Applies `f` to every edge weight, producing a new graph with the same
    /// topology. Used by the weight-scaling lemma (Section 8.1).
    pub fn map_weights(&self, mut f: impl FnMut(Weight) -> Weight) -> Graph {
        let mut g = self.clone();
        for w in &mut g.weights {
            *w = f(*w);
        }
        g
    }

    /// Validates that all weights are strictly positive (the paper's standing
    /// assumption outside of Theorem 2.1).
    pub fn has_positive_weights(&self) -> bool {
        self.weights.iter().all(|&w| w > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_parallel_edges_to_min() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 9).add_edge(1, 0, 4).add_edge(0, 1, 6);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 0), Some(4));
    }

    #[test]
    fn builder_drops_self_loops() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 0, 1).add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn undirected_stores_both_directions() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 2), (1, 2, 3)]);
        assert_eq!(g.arcs(), 4);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn directed_stores_one_direction() {
        let g = Graph::from_edges(3, Direction::Directed, &[(0, 1, 2)]);
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.edge_weight(1, 0), None);
    }

    #[test]
    fn lightest_out_edges_orders_by_weight_then_id() {
        let g = Graph::from_edges(4, Direction::Directed, &[(0, 3, 5), (0, 1, 5), (0, 2, 1)]);
        assert_eq!(g.lightest_out_edges(0, 2), vec![(2, 1), (1, 5)]);
        assert_eq!(g.lightest_out_edges(0, 10).len(), 3);
    }

    #[test]
    fn union_collapses_to_min_weight() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 10)]);
        let h = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 4), (1, 2, 1)]);
        let u = g.union(&h);
        assert_eq!(u.edge_weight(0, 1), Some(4));
        assert_eq!(u.edge_weight(1, 2), Some(1));
        assert_eq!(u.m(), 2);
    }

    #[test]
    fn map_weights_preserves_topology() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 3), (1, 2, 5)]);
        let doubled = g.map_weights(|w| w * 2);
        assert_eq!(doubled.edge_weight(0, 1), Some(6));
        assert_eq!(doubled.edge_weight(1, 2), Some(10));
        assert_eq!(doubled.m(), g.m());
    }

    #[test]
    fn edges_yields_each_undirected_edge_once() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(2, 0, 1), (3, 1, 2)]);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 2, 1), (1, 3, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        GraphBuilder::undirected(2).add_edge(0, 5, 1);
    }

    #[test]
    fn positive_weight_validation() {
        let g = Graph::from_edges(2, Direction::Undirected, &[(0, 1, 0)]);
        assert!(!g.has_positive_weights());
        let g = Graph::from_edges(2, Direction::Undirected, &[(0, 1, 1)]);
        assert!(g.has_positive_weights());
    }
}
