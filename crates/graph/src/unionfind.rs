//! Disjoint-set forest with union by rank and path compression.

/// A union-find structure over `{0, ..., n-1}`.
///
/// ```
/// use cc_graph::unionfind::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(0, 2));
/// assert_eq!(uf.components(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn path_compression_keeps_results_consistent() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        let r = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), r);
        }
    }
}
