#![warn(missing_docs)]

//! Weighted graph substrate for the Congested Clique APSP reproduction.
//!
//! This crate provides everything the distributed algorithms in
//! [`cc-apsp`](../cc_apsp/index.html) need from a graph library, built from
//! scratch:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) weighted graph, either
//!   directed or undirected, with positive integer weights.
//! * [`generators`] — deterministic random graph families used as workloads
//!   (Erdős–Rényi, random geometric, preferential attachment, grids, paths
//!   with chords) and weight distributions.
//! * [`sssp`] — exact single-source shortest paths (Dijkstra, hop-limited
//!   Bellman–Ford, lexicographic (distance, hops) Dijkstra) used both inside
//!   the simulated nodes' local computations and as ground truth.
//! * [`apsp`] — exact all-pairs shortest paths (all-sources Dijkstra and
//!   Floyd–Warshall) producing a [`DistMatrix`].
//! * [`dist`] — the distance-matrix type and stretch auditing
//!   ([`StretchStats`]) used by every experiment.
//! * [`unionfind`], [`mst`], [`components`] — supporting structures for the
//!   zero-weight reduction (Theorem 2.1 of the paper) and generators.
//!
//! # Example
//!
//! ```
//! use cc_graph::{generators, apsp, Weight};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = generators::gnp_connected(64, 0.1, 1..=100, &mut rng);
//! let exact = apsp::exact_apsp(&g);
//! assert_eq!(exact.get(3, 3), 0);
//! assert!(exact.get(0, 63) < cc_graph::INF);
//! ```

pub mod apsp;
pub mod components;
pub mod dist;
pub mod generators;
pub mod graph;
pub mod hops;
pub mod io;
pub mod mst;
pub mod sssp;
pub mod unionfind;

pub use dist::{DistMatrix, StretchStats};
pub use graph::{Graph, GraphBuilder};

/// Edge weight / distance type used across the whole workspace.
///
/// Weights are positive integers bounded by a polynomial in `n`, as assumed in
/// Section 2.1 of the paper; distances fit comfortably in 64 bits.
pub type Weight = u64;

/// Node identifier. The paper assumes IDs are `{1, ..., n}` after renaming; we
/// use `{0, ..., n-1}`.
pub type NodeId = usize;

/// The "infinite" distance sentinel.
///
/// Chosen as `u64::MAX / 4` so that adding two non-infinite distances, or an
/// `INF` and a finite weight, never wraps. Use [`wadd`] for semiring addition.
pub const INF: Weight = u64::MAX / 4;

/// Saturating min-plus semiring addition: `INF` absorbs.
///
/// ```
/// use cc_graph::{wadd, INF};
/// assert_eq!(wadd(2, 3), 5);
/// assert_eq!(wadd(INF, 3), INF);
/// assert_eq!(wadd(INF, INF), INF);
/// ```
#[inline]
pub fn wadd(a: Weight, b: Weight) -> Weight {
    if a >= INF || b >= INF {
        INF
    } else {
        a + b
    }
}

/// Integer base-2 logarithm, rounded up, of `n.max(2)`; the `log n` that
/// appears in all the paper's bounds.
///
/// ```
/// use cc_graph::log2_ceil;
/// assert_eq!(log2_ceil(1), 1);
/// assert_eq!(log2_ceil(2), 1);
/// assert_eq!(log2_ceil(1024), 10);
/// assert_eq!(log2_ceil(1025), 11);
/// ```
#[inline]
pub fn log2_ceil(n: usize) -> u32 {
    let n = n.max(2);
    usize::BITS - (n - 1).leading_zeros()
}
