//! Property tests for the numeric helpers every algorithm builds on:
//! saturating semiring addition ([`cc_graph::wadd`]), the integer log
//! ([`cc_graph::log2_ceil`]), and the stretch audit
//! ([`cc_graph::DistMatrix::stretch_vs`]).

use cc_graph::{log2_ceil, wadd, DistMatrix, StretchStats, Weight, INF};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `wadd` never wraps, even when both operands sit just below `INF`,
    /// and `INF` absorbs regardless of the other operand.
    #[test]
    fn wadd_never_wraps_near_inf(a in 0u64..=u64::MAX, near in 0u64..1_000_000) {
        // Near-INF operands from both sides of the sentinel.
        let lo = INF - near.min(INF);
        let hi = INF.saturating_add(near);
        for &x in &[a, lo, hi] {
            for &y in &[lo, hi, INF] {
                let s = wadd(x, y);
                // Saturation: the result is a real sum or exactly INF —
                // never a wrapped-around small value.
                prop_assert!(s == INF || (s >= x && s >= y), "wadd({x}, {y}) = {s}");
            }
        }
        // Two finite operands below INF sum exactly (INF = u64::MAX / 4
        // guarantees headroom).
        let f1 = a % INF;
        let f2 = lo.min(INF - 1);
        let s = wadd(f1, f2);
        prop_assert!(s == INF || s == f1 + f2);
        prop_assert!(wadd(f1, f2) >= f1.min(INF));
    }

    /// `log2_ceil` agrees with the `f64::log2` ceiling (clamped to `n ≥ 2`,
    /// minimum 1, as documented) across 1..=2^20.
    #[test]
    fn log2_ceil_matches_f64(n in 1usize..=(1 << 20)) {
        let expect = ((n.max(2) as f64).log2().ceil() as u32).max(1);
        prop_assert_eq!(log2_ceil(n), expect, "n = {}", n);
        // Defining property: 2^(l-1) < n.max(2) ≤ 2^l.
        let l = log2_ceil(n);
        prop_assert!(n.max(2) <= 1usize << l);
        prop_assert!(n.max(2) > 1usize << (l - 1));
    }

    /// Auditing any distance matrix against itself reports zero
    /// underestimates, zero missing pairs, and stretch exactly 1 whenever
    /// any finite off-diagonal pair exists.
    #[test]
    fn stretch_vs_self_has_zero_underestimates(
        n in 1usize..12,
        weights in proptest::collection::vec(0u64..500, 144),
        inf_mask in proptest::collection::vec(any::<bool>(), 144),
    ) {
        let data: Vec<Weight> = (0..n * n)
            .map(|i| {
                let (u, v) = (i / n, i % n);
                if u == v {
                    0
                } else if inf_mask[i % inf_mask.len()] {
                    INF
                } else {
                    weights[i % weights.len()]
                }
            })
            .collect();
        let m = DistMatrix::from_raw(n, data);
        let stats = m.stretch_vs(&m);
        prop_assert_eq!(stats.underestimates, 0);
        prop_assert_eq!(stats.missing, 0);
        if stats.pairs > 0 {
            prop_assert!((stats.max_stretch - 1.0).abs() < 1e-12);
            prop_assert!((stats.mean_stretch - 1.0).abs() < 1e-12);
        }
        prop_assert!(stats.is_valid_approximation(1.0));
    }

    /// The sampled audit converges to the full audit: once `max_pairs`
    /// covers the whole ordered-pair universe, `audit_sampled` reports
    /// exactly the same statistics as the exhaustive `audit`, for any
    /// estimate/exact pair and any seed.
    #[test]
    fn sampled_audit_converges_to_full_audit(
        n in 1usize..10,
        exact_cells in proptest::collection::vec((0u8..4, 1u64..200), 100),
        est_cells in proptest::collection::vec((0u8..4, 1u64..600), 100),
        seed in any::<u64>(),
        slack in 0usize..50,
    ) {
        let matrix = |cells: &[(u8, u64)]| {
            let data: Vec<Weight> = (0..n * n)
                .map(|i| {
                    let (u, v) = (i / n, i % n);
                    let (sel, w) = cells[i % cells.len()];
                    if u == v { 0 } else if sel == 0 { INF } else { w }
                })
                .collect();
            DistMatrix::from_raw(n, data)
        };
        let (exact, est) = (matrix(&exact_cells), matrix(&est_cells));
        let full = StretchStats::audit(&est, &exact);
        let covering = n * (n.max(1) - 1) + slack;
        prop_assert_eq!(StretchStats::audit_sampled(&est, &exact, covering, seed), full);
        // An under-covering sample still never audits more pairs than asked
        // for, and stays deterministic per seed.
        if covering > 0 {
            let half = StretchStats::audit_sampled(&est, &exact, covering / 2, seed);
            prop_assert!(half.pairs <= covering / 2);
            prop_assert_eq!(
                half,
                StretchStats::audit_sampled(&est, &exact, covering / 2, seed)
            );
        }
    }
}

/// Exhaustive boundary check around the `INF` sentinel (the exact values
/// where wrapping would occur if `wadd` used plain `+`).
#[test]
fn wadd_boundary_cases() {
    assert_eq!(wadd(0, 0), 0);
    assert_eq!(wadd(INF - 1, 0), INF - 1);
    assert_eq!(wadd(INF - 1, 1), INF);
    assert_eq!(wadd(INF, 0), INF);
    assert_eq!(wadd(u64::MAX, u64::MAX), INF);
    assert_eq!(wadd(u64::MAX, 1), INF);
    // Two finite operands sum exactly; a sum that crosses INF lands in the
    // "infinite" band (>= INF) without wrapping — INF = u64::MAX / 4 leaves
    // two bits of headroom.
    assert_eq!(wadd(INF - 1, INF - 1), 2 * (INF - 1));
    assert!(wadd(INF - 1, INF - 1) >= INF);
}
