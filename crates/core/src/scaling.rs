//! The weight scaling lemma (Section 8.1, Lemma 8.1).
//!
//! Given an h-approximation δ of APSP, distance approximation on `G` reduces
//! — in **zero** communication rounds — to distance approximation on
//! `O(log n)` graphs `G_0, G_1, …`, each of small weighted diameter. For
//! scale `i` (`x = 2^i`):
//!
//! * `H_i`: every weight rounded up to a multiple of `x`;
//! * `K_i`: weights capped at `cap = x·B·h²` (with `B = ⌈2/ε⌉`), and the
//!   diameter forced down to `O(cap)`;
//! * `G_i = K_i / x`: integer weights at most `B·h²`.
//!
//! Distances that are ≈ `2^i` in `G` survive scale `i` with only `(1+ε)`
//! relative rounding error for pairs joined by a shortest path of at most
//! `h` hops; the initial δ selects which scale to read per pair.
//!
//! **Substitution (documented in DESIGN.md):** the paper's `K_i` adds a
//! cap-weight edge between *every* pair (`Θ(n²)` edges per scale). We
//! instead connect every node to a hub (node 0) with weight `cap`. The
//! resulting metric satisfies `min(d_Hi, cap) ≤ d ≤ d_Hi` for every pair —
//! the same two inequalities the proof uses — while the weighted diameter
//! becomes at most `2·cap` instead of `cap` (hence the factor-2 in
//! [`ScaledGraphs::diameter_bound`]) and the scaled graphs stay sparse.

use cc_graph::graph::{Direction, Graph, GraphBuilder};
use cc_graph::{DistMatrix, Weight, INF};

/// The family of scaled graphs produced by [`weight_scaling`].
#[derive(Debug, Clone)]
pub struct ScaledGraphs {
    /// `G_i` for `i = 0..len` (scale `x = 2^i`).
    pub graphs: Vec<Graph>,
    /// `B = ⌈2/ε⌉`.
    pub b_const: u64,
    /// The hop parameter `h`.
    pub h: u64,
    /// The `ε` used.
    pub eps: f64,
}

impl ScaledGraphs {
    /// Upper bound on every `G_i`'s weighted diameter: `2·B·h²` (the paper's
    /// `B·h²` doubled by the hub substitution).
    pub fn diameter_bound(&self) -> Weight {
        2 * self.b_const * self.h * self.h
    }

    /// Number of scales.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the family is empty (never, for a valid construction).
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The scale index the combination rule reads for a pair with initial
    /// estimate `delta_uv`: the unique `i ≥ 1` with
    /// `2^(i-1)·B·h² ≤ δ < 2^i·B·h²`, or 0 when `δ < B·h²/2` (also 0 for
    /// `δ` below the `i = 1` band, matching the lemma's case split).
    pub fn scale_for(&self, delta_uv: Weight) -> usize {
        let bh2 = self.b_const * self.h * self.h;
        if delta_uv < bh2 / 2 || bh2 == 0 {
            return 0;
        }
        // Smallest i with delta < 2^i · B·h²; the paper's band picks that i.
        let mut i = 0usize;
        let mut bound = bh2;
        while delta_uv >= bound && i + 1 < self.graphs.len() {
            i += 1;
            bound = bound.saturating_mul(2);
        }
        i
    }
}

/// Builds the scaled family (zero communication rounds: every node already
/// knows its incident edges and δ row).
///
/// `delta_max` is the largest finite δ value (drives how many scales are
/// needed); `h` is the hop bound for which the (1+ε) guarantee must hold.
///
/// # Panics
///
/// Panics if `g` is directed, `h == 0`, or `eps <= 0`.
pub fn weight_scaling(g: &Graph, delta_max: Weight, h: u64, eps: f64) -> ScaledGraphs {
    assert_eq!(
        g.direction(),
        Direction::Undirected,
        "scaling expects undirected graphs"
    );
    assert!(h >= 1, "hop bound must be positive");
    assert!(eps > 0.0, "ε must be positive");
    let b_const = (2.0 / eps).ceil() as u64;
    let bh2 = b_const * h * h;
    // Scales until 2^(i-1)·B·h² exceeds delta_max.
    // One scale per doubling band, with strict headroom: every finite δ must
    // satisfy δ < 2^i·B·h² for its selected i (the lower-bound argument
    // needs the cap to sit strictly above the true distance).
    let mut scales = 1usize;
    let mut bound = bh2;
    while bound <= delta_max.min(INF - 1) {
        scales += 1;
        bound = bound.saturating_mul(2);
    }
    let n = g.n();
    let mut graphs = Vec::with_capacity(scales);
    for i in 0..scales {
        let x: Weight = 1 << i;
        let cap = x.saturating_mul(bh2);
        let mut b = GraphBuilder::undirected(n);
        for (u, v, w) in g.edges() {
            // H_i: round up to multiple of x; K_i: cap; G_i: divide by x.
            let rounded = w.div_ceil(x).saturating_mul(x);
            let capped = rounded.min(cap);
            b.add_edge(u, v, capped / x);
        }
        // Hub edges bound the diameter by 2·B·h² after division.
        if n > 1 {
            for v in 1..n {
                b.add_edge(0, v, bh2);
            }
        }
        graphs.push(b.build());
    }
    ScaledGraphs {
        graphs,
        b_const,
        h,
        eps,
    }
}

/// Combines per-scale estimates into the η of Lemma 8.1:
/// `η(u,v) = 2^i · δ_{G_i}(u,v)` with `i` chosen per pair from the initial
/// estimate `delta` (an h-approximation). Zero communication rounds.
///
/// Guarantees (Lemma 8.1): `η ≥ d_G` everywhere; and
/// `η ≤ (1+ε)·l·d_G` for every pair joined by a shortest path of at most
/// `h` hops, where `l` is the guarantee of the `delta_gis`.
pub fn combine(scaled: &ScaledGraphs, delta_gis: &[DistMatrix], delta: &DistMatrix) -> DistMatrix {
    assert_eq!(delta_gis.len(), scaled.len(), "need one estimate per scale");
    let n = delta.n();
    let mut eta = DistMatrix::infinite(n);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let d = delta.get(u, v);
            if d >= INF {
                continue;
            }
            let i = scaled.scale_for(d);
            let scaled_est = delta_gis[i].get(u, v);
            if scaled_est < INF {
                let x: Weight = 1 << i;
                eta.set(u, v, x.saturating_mul(scaled_est).min(INF));
            }
        }
    }
    eta
}

/// The guarantee the combination provides for `≤h`-hop pairs, given
/// per-scale l-approximations: `(1+ε)·l`.
pub fn combined_bound(l: f64, eps: f64) -> f64 {
    (1.0 + eps) * l
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::sssp::bellman_ford_hops;
    use cc_graph::{apsp, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_scaled_estimates(scaled: &ScaledGraphs) -> Vec<DistMatrix> {
        scaled.graphs.iter().map(apsp::exact_apsp).collect()
    }

    #[test]
    fn scaled_graphs_have_bounded_diameter() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::wide_weight_gnp(50, 0.1, 16, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let dmax = crate::reduction::estimate_diameter(&delta);
        let scaled = weight_scaling(&g, dmax, 4, 0.5);
        for (i, gi) in scaled.graphs.iter().enumerate() {
            let diam = cc_graph::sssp::weighted_diameter(gi);
            assert!(
                diam <= scaled.diameter_bound(),
                "scale {i}: diameter {diam} > bound {}",
                scaled.diameter_bound()
            );
        }
    }

    #[test]
    fn number_of_scales_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::wide_weight_gnp(40, 0.15, 20, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let dmax = crate::reduction::estimate_diameter(&delta);
        let scaled = weight_scaling(&g, dmax, 3, 0.5);
        // δ_max ≤ n · 2^20; scales ≤ log2(δ_max) + O(1).
        let limit = (dmax as f64).log2() as usize + 2;
        assert!(scaled.len() <= limit, "{} scales > {limit}", scaled.len());
    }

    /// Lemma 8.1's two guarantees, instantiated with exact per-scale
    /// estimates (l = 1) and an exact initial δ scaled by h (an
    /// h-approximation).
    #[test]
    fn eta_bounds_hold_for_h_hop_pairs() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::wide_weight_gnp(36, 0.2, 12, &mut rng);
            let exact = apsp::exact_apsp(&g);
            let h = 4u64;
            let eps = 0.5;
            // An h-approximation: exact distances inflated by up to h.
            let mut delta = exact.clone();
            for u in 0..g.n() {
                for v in 0..g.n() {
                    let d = exact.get(u, v);
                    if u != v && d < INF {
                        let f = 1 + ((u + v) as u64) % h;
                        delta.set(u, v, d.saturating_mul(f));
                    }
                }
            }
            delta.symmetrize_min();
            let dmax = crate::reduction::estimate_diameter(&delta);
            let scaled = weight_scaling(&g, dmax, h, eps);
            let gis = exact_scaled_estimates(&scaled);
            let eta = combine(&scaled, &gis, &delta);
            let bound = combined_bound(1.0, eps);
            for u in 0..g.n() {
                let hhop = bellman_ford_hops(&g, u, h as usize);
                for (v, &hv) in hhop.iter().enumerate() {
                    if u == v {
                        continue;
                    }
                    let d = exact.get(u, v);
                    if d >= INF {
                        continue;
                    }
                    let e = eta.get(u, v);
                    assert!(e >= d, "seed={seed} ({u},{v}): η {e} < d {d}");
                    // Pairs whose shortest path has ≤ h hops get the (1+ε)l
                    // guarantee.
                    if hv == d {
                        assert!(
                            (e as f64) <= bound * d as f64 + 1e-9,
                            "seed={seed} ({u},{v}): η {e} > {bound}·{d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scale_zero_is_original_capped_graph() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 5), (1, 2, 7)]);
        let scaled = weight_scaling(&g, 12, 2, 1.0);
        // x = 1: weights unchanged (below cap B·h² = 2·4 = 8).
        assert_eq!(scaled.graphs[0].edge_weight(0, 1), Some(5));
        assert_eq!(scaled.graphs[0].edge_weight(1, 2), Some(7));
    }

    #[test]
    fn scale_selection_bands() {
        let g = Graph::from_edges(2, Direction::Undirected, &[(0, 1, 1)]);
        let scaled = weight_scaling(&g, 1 << 12, 2, 1.0); // B=2, h=2, Bh²=8
        assert_eq!(scaled.scale_for(3), 0); // < Bh²/2 = 4
        assert_eq!(scaled.scale_for(7), 0); // within [4, 8): i = 0 band
        assert_eq!(scaled.scale_for(9), 1); // within [8, 16)
        assert_eq!(scaled.scale_for(40), 3); // within [32, 64)
    }

    #[test]
    fn zero_rounds_of_communication() {
        // weight_scaling and combine never touch a Clique — the lemma
        // states "in zero rounds"; this test documents the API contract.
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnp_connected(20, 0.3, 1..=100, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let scaled = weight_scaling(&g, 500, 3, 0.5);
        let gis = exact_scaled_estimates(&scaled);
        let _ = combine(&scaled, &gis, &delta);
    }
}
