//! APSP results: the estimate matrix plus its provenance.

use cc_graph::DistMatrix;

/// The output of an approximate-APSP run: the estimate δ, the guaranteed
/// stretch bound that run's parameters imply, and the measured round costs.
#[derive(Debug, Clone)]
pub struct ApspResult {
    /// The distance estimates; `estimate.get(u, v)` is δ(u, v).
    pub estimate: DistMatrix,
    /// The approximation factor guaranteed by the theorem instantiated with
    /// this run's parameters (e.g. `7⁴·(1+ε)²` for Theorem 1.1).
    pub stretch_bound: f64,
    /// Total rounds charged by the simulator.
    pub rounds: u64,
    /// Per-phase round breakdown (top-level phases, first-seen order).
    pub phase_rounds: Vec<(String, u64)>,
}

impl ApspResult {
    /// Packages a result from a finished clique run.
    pub fn from_run(estimate: DistMatrix, stretch_bound: f64, clique: &clique_sim::Clique) -> Self {
        Self {
            estimate,
            stretch_bound,
            rounds: clique.rounds(),
            phase_rounds: clique.ledger().breakdown(),
        }
    }
}

impl std::fmt::Display for ApspResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "APSP estimate over {} nodes: bound {:.1}×, {} rounds",
            self.estimate.n(),
            self.stretch_bound,
            self.rounds
        )?;
        for (phase, rounds) in &self.phase_rounds {
            let name = if phase.is_empty() { "(top)" } else { phase };
            writeln!(f, "  {name:<32} {rounds}")?;
        }
        Ok(())
    }
}
