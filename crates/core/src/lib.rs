#![warn(missing_docs)]

//! **Improved All-Pairs Approximate Shortest Paths in Congested Clique** —
//! a faithful Rust reproduction of Bui, Chandra, Chang, Dory, Leitersdorf
//! (PODC 2024, arXiv:2405.02695).
//!
//! The paper gives a randomized `O(log log log n)`-round algorithm computing
//! a `(7⁴+ε)`-approximation of APSP on weighted undirected graphs in the
//! Congested Clique, plus a round/approximation tradeoff: `O(t)` rounds for
//! an `O(log^(2^-t) n)` approximation. Every building block is implemented
//! here as a phase procedure over a [`clique_sim::Clique`], which delivers
//! real data between per-node states and charges rounds from the measured
//! communication loads.
//!
//! # Module ↔ paper map
//!
//! | module | paper | contents |
//! |---|---|---|
//! | [`spanner`] | §7.1 | Baswana–Sen spanners standing in for CZ22; Corollaries 7.1 & 7.2 (the `O(log n)`-approx bootstrap) |
//! | [`hopset`] | §4 | `√n`-nearest β-hopsets from an a-approximation (Lemma 3.2) |
//! | [`knearest`] | §5 | the bins / h-combinations filtered-product algorithm (Lemmas 5.1, 5.2, 3.3) |
//! | [`skeleton`] | §6 | hitting sets, skeleton graphs, and the η-extension (Lemmas 6.1–6.4, 3.4) |
//! | [`reduction`] | §7.2 | approximation factor reduction `a → 15√a` (Lemma 3.1) |
//! | [`smalldiam`] | §7.3 | Theorem 7.1: 21-approx (standard) / 7-approx (`CC[log³n]`) for small weighted diameter |
//! | [`scaling`] | §8.1 | the weight scaling lemma (Lemma 8.1) |
//! | [`pipeline`] | §8.2–8.4 | Theorems 8.1 (`CC\[log⁴n\]`), 1.1 (main), 1.2 (tradeoff) |
//! | [`zeroweight`] | §2.2 + App. A | Theorem 2.1: handling zero edge weights |
//! | [`params`] | — | the paper's parameter formulas with documented finite-n clamps |
//!
//! # Quick start
//!
//! ```
//! use cc_apsp::pipeline::{approximate_apsp, PipelineConfig};
//! use cc_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::gnp_connected(96, 0.08, 1..=50, &mut rng);
//! let result = approximate_apsp(&g, &PipelineConfig::default());
//!
//! let exact = cc_graph::apsp::exact_apsp(&g);
//! let stats = result.estimate.stretch_vs(&exact);
//! assert_eq!(stats.underestimates, 0);
//! assert!(stats.max_stretch <= result.stretch_bound);
//! ```

pub mod ablation;
pub mod estimate;
pub mod hopset;
pub mod knearest;
pub mod landmark;
pub mod oracle;
pub mod params;
pub mod pipeline;
pub mod reduction;
pub mod scaling;
pub mod skeleton;
pub mod smalldiam;
pub mod spanner;
pub mod zeroweight;

pub use estimate::ApspResult;
pub use landmark::LandmarkSketch;
pub use oracle::{OracleBackend, OracleKind};
