//! Landmark distance sketches: a sublinear-space oracle backend.
//!
//! The dense `n × n` [`DistMatrix`](cc_graph::DistMatrix) caps servable
//! instances at a few thousand vertices (8n² bytes). A [`LandmarkSketch`]
//! instead stores, per vertex, distances to ⌈√n⌉ sampled *landmarks* plus a
//! small exact neighborhood (its *bunch*), for Θ(n√n) expected words total —
//! the classic Thorup–Zwick k = 2 decomposition, the same landmark/cluster
//! shape the Congested Clique literature uses for sublinear-bandwidth
//! distance computation.
//!
//! The estimate it answers is a provable **3-approximation** that never
//! underestimates and never misses a reachable pair:
//!
//! * if `d(u,v) < d(u, A)` (A = the landmark set), then `v` lies in `u`'s
//!   bunch and the answer is exact;
//! * otherwise `d(u, ℓ) + d(ℓ, v) ≤ 2·d(u, A) + d(u,v) ≤ 3·d(u,v)` for
//!   `u`'s nearest landmark `ℓ`, by the triangle inequality.
//!
//! Every component is guaranteed a landmark (the minimum-ID vertex of any
//! landmark-free component is promoted), which is what makes the second
//! bullet's landmark path exist for every reachable pair.
//!
//! Construction is a deterministic pure function of `(graph, seed)` — the
//! execution policy moves wall-clock time only — so a sketch can be rebuilt
//! bit-identically from the graph alone. The dynamic engine leans on this:
//! a landmark delta ships no rows, just the update batch, and the receiver
//! regenerates the sketch.

use cc_graph::components::connected_components;
use cc_graph::graph::Graph;
use cc_graph::sssp::dijkstra_within;
use cc_graph::{apsp, wadd, NodeId, Weight, INF};
use cc_par::ExecPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Thorup–Zwick-style landmark sketch: ⌈√n⌉ landmark distance rows plus
/// per-vertex exact bunches, answering 3-approximate distance queries in
/// O(√n) time from Θ(n√n) expected space.
///
/// ```
/// use cc_graph::graph::{Direction, Graph};
/// use cc_apsp::landmark::LandmarkSketch;
/// use cc_par::ExecPolicy;
///
/// // A path 0—1—2—3—4 with unit-ish weights; true d(0,4) = 8.
/// let g = Graph::from_edges(
///     5,
///     Direction::Undirected,
///     &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2)],
/// );
/// let sketch = LandmarkSketch::build(&g, 7, ExecPolicy::Seq);
/// assert_eq!(sketch.query(0, 0), 0);
/// assert!(sketch.query(0, 4) >= 8); // never underestimates …
/// assert!(sketch.query(0, 4) <= 24); // … and stays within stretch 3
/// assert!(sketch.approx_mem_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkSketch {
    n: usize,
    seed: u64,
    /// Sorted, distinct landmark node IDs.
    landmarks: Vec<NodeId>,
    /// `L × n` row-major exact distances: `rows[ℓi * n + v] = d(landmarks[ℓi], v)`.
    rows: Vec<Weight>,
    /// `d(u, A)` per vertex: distance to the nearest landmark (derived from
    /// `rows`; not serialized).
    nearest: Vec<Weight>,
    /// Per-vertex symmetrized bunches, each sorted by node ID with exact
    /// distances. `v` appears in `bunches[u]` iff
    /// `d(u,v) < max(d(u,A), d(v,A))` (and `v ≠ u`).
    bunches: Vec<Vec<(NodeId, Weight)>>,
}

impl LandmarkSketch {
    /// Builds the sketch for `graph` with the given RNG seed.
    ///
    /// Deterministic per `(graph, seed)`: `exec` affects wall-clock time
    /// only — every field, and therefore the serialized form and the state
    /// fingerprint, is bit-identical across execution policies.
    pub fn build(graph: &Graph, seed: u64, exec: ExecPolicy) -> Self {
        let n = graph.n();
        if n == 0 {
            return Self {
                n: 0,
                seed,
                landmarks: Vec::new(),
                rows: Vec::new(),
                nearest: Vec::new(),
                bunches: Vec::new(),
            };
        }

        // ⌈√n⌉ landmarks sampled without replacement (partial Fisher–Yates),
        // then one promoted per landmark-free component so every vertex has
        // a finite landmark distance.
        let target = ((n as f64).sqrt().ceil() as usize).clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<NodeId> = (0..n).collect();
        for i in 0..target {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        let mut landmarks: Vec<NodeId> = ids[..target].to_vec();
        let (comp, comp_count) = connected_components(graph);
        let mut comp_has_landmark = vec![false; comp_count];
        for &l in &landmarks {
            comp_has_landmark[comp[l]] = true;
        }
        for v in 0..n {
            // First scan hit per component is its minimum-ID vertex.
            if !comp_has_landmark[comp[v]] {
                comp_has_landmark[comp[v]] = true;
                landmarks.push(v);
            }
        }
        landmarks.sort_unstable();
        landmarks.dedup();

        // L exact SSSP rows; undirected symmetry gives d(u, ℓ) = rows[ℓi][u].
        let row_vecs = apsp::exact_rows_with(graph, &landmarks, exec);
        let mut rows = Vec::with_capacity(landmarks.len() * n);
        for row in &row_vecs {
            rows.extend_from_slice(row);
        }
        let nearest: Vec<Weight> = (0..n)
            .map(|u| {
                row_vecs
                    .iter()
                    .map(|row| row[u])
                    .min()
                    .expect("at least one landmark")
            })
            .collect();

        // Raw bunches B(u) = {v ≠ u : d(u,v) < d(u,A)} via radius-bounded
        // Dijkstra, sharded over sources (deterministic merge in row order).
        let raw: Vec<Vec<(NodeId, Weight)>> = exec.map_shards_collect(n, |sources| {
            sources
                .map(|u| {
                    dijkstra_within(graph, u, nearest[u])
                        .into_iter()
                        .filter(|&(v, _)| v != u)
                        .collect()
                })
                .collect()
        });

        // Symmetrize: ensure (v, d) ∈ bunch(u) ⇔ (u, d) ∈ bunch(v), so a
        // query needs only one endpoint's bunch. Distances are exact, so
        // merged duplicates always agree.
        let mut bunches = raw.clone();
        for (u, bunch) in raw.iter().enumerate() {
            for &(v, d) in bunch {
                bunches[v].push((u, d));
            }
        }
        for bunch in &mut bunches {
            bunch.sort_unstable();
            bunch.dedup();
        }

        Self {
            n,
            seed,
            landmarks,
            rows,
            nearest,
            bunches,
        }
    }

    /// Reassembles a sketch from its serialized parts, validating structure
    /// (the snapshot decoder's entry point). `rows` is `L × n` row-major;
    /// `bunches` must be per-vertex, sorted strictly by node ID, with no
    /// self entries. `nearest` is recomputed from the rows.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural violation.
    pub fn from_parts(
        n: usize,
        seed: u64,
        landmarks: Vec<NodeId>,
        rows: Vec<Weight>,
        bunches: Vec<Vec<(NodeId, Weight)>>,
    ) -> Result<Self, String> {
        if n == 0 {
            if !landmarks.is_empty() || !rows.is_empty() || !bunches.is_empty() {
                return Err("empty sketch with non-empty parts".into());
            }
            return Ok(Self {
                n,
                seed,
                landmarks,
                rows,
                nearest: Vec::new(),
                bunches,
            });
        }
        if landmarks.is_empty() {
            return Err("sketch has no landmarks".into());
        }
        if !landmarks.windows(2).all(|w| w[0] < w[1]) {
            return Err("landmarks not sorted strictly ascending".into());
        }
        if *landmarks.last().unwrap() >= n {
            return Err(format!(
                "landmark {} out of range for n={n}",
                landmarks.last().unwrap()
            ));
        }
        if rows.len() != landmarks.len() * n {
            return Err(format!(
                "expected {} row cells, got {}",
                landmarks.len() * n,
                rows.len()
            ));
        }
        if bunches.len() != n {
            return Err(format!("expected {n} bunches, got {}", bunches.len()));
        }
        for (u, bunch) in bunches.iter().enumerate() {
            if !bunch.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("bunch of {u} not sorted strictly by node"));
            }
            for &(v, _) in bunch {
                if v >= n {
                    return Err(format!("bunch of {u} references node {v} (n={n})"));
                }
                if v == u {
                    return Err(format!("bunch of {u} contains a self entry"));
                }
            }
        }
        let l = landmarks.len();
        let nearest: Vec<Weight> = (0..n)
            .map(|u| (0..l).map(|i| rows[i * n + u]).min().unwrap())
            .collect();
        Ok(Self {
            n,
            seed,
            landmarks,
            rows,
            nearest,
            bunches,
        })
    }

    /// Number of nodes the sketch covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The RNG seed the sketch was built with (rebuilding from the same
    /// graph and seed reproduces the sketch bit-identically).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sorted landmark node IDs.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Exact distance row of the `i`-th landmark (length n).
    pub fn landmark_row(&self, i: usize) -> &[Weight] {
        &self.rows[i * self.n..(i + 1) * self.n]
    }

    /// The symmetrized bunch of `u`: `(node, exact distance)` sorted by node.
    pub fn bunch(&self, u: NodeId) -> &[(NodeId, Weight)] {
        &self.bunches[u]
    }

    /// `d(u, A)`: the distance from `u` to its nearest landmark.
    pub fn nearest_landmark_dist(&self, u: NodeId) -> Weight {
        self.nearest[u]
    }

    /// The stretch bound the sketch guarantees (Thorup–Zwick k = 2).
    pub fn stretch_bound(&self) -> f64 {
        3.0
    }

    /// The distance estimate δ(u, v): the minimum over the shared bunch
    /// entry (exact when one exists) and every landmark two-leg path.
    /// Symmetric, never below the true distance, and at most 3× it.
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        if u == v {
            return 0;
        }
        let mut best = match self.bunches[u].binary_search_by_key(&v, |e| e.0) {
            Ok(i) => self.bunches[u][i].1,
            Err(_) => INF,
        };
        for i in 0..self.landmarks.len() {
            let via = wadd(self.rows[i * self.n + u], self.rows[i * self.n + v]);
            if via < best {
                best = via;
            }
        }
        best
    }

    /// Materializes the full estimate row δ(u, ·) in O(L·n + |B(u)|) time.
    /// Entry `v` equals [`LandmarkSketch::query`]`(u, v)` exactly — the
    /// serving layer's k-nearest path depends on that agreement.
    pub fn dist_row(&self, u: NodeId) -> Vec<Weight> {
        let mut row = vec![INF; self.n];
        row[u] = 0;
        for i in 0..self.landmarks.len() {
            let du = self.rows[i * self.n + u];
            if du >= INF {
                continue;
            }
            let lrow = &self.rows[i * self.n..(i + 1) * self.n];
            for (v, slot) in row.iter_mut().enumerate() {
                if v == u {
                    continue;
                }
                let via = wadd(du, lrow[v]);
                if via < *slot {
                    *slot = via;
                }
            }
        }
        for &(v, d) in &self.bunches[u] {
            if d < row[v] {
                row[v] = d;
            }
        }
        row
    }

    /// Approximate resident memory of the sketch payload in bytes: landmark
    /// IDs, distance rows, the derived nearest-landmark column, and every
    /// bunch entry.
    pub fn approx_mem_bytes(&self) -> u64 {
        let word = std::mem::size_of::<Weight>() as u64;
        let entries: u64 = self.bunches.iter().map(|b| b.len() as u64).sum();
        (self.landmarks.len() as u64) * word
            + (self.rows.len() as u64) * word
            + (self.nearest.len() as u64) * word
            + entries * 2 * word
    }

    /// Feeds every content word of the sketch (in canonical order) to `f` —
    /// the dynamic layer folds these into its state fingerprint. Covers
    /// exactly the serialized fields (`nearest` is derived, so it is
    /// excluded): seed, landmark count + IDs, rows, bunch lengths + entries.
    pub fn fold_words<F: FnMut(u64)>(&self, mut f: F) {
        f(self.seed);
        f(self.landmarks.len() as u64);
        for &l in &self.landmarks {
            f(l as u64);
        }
        for &d in &self.rows {
            f(d);
        }
        for bunch in &self.bunches {
            f(bunch.len() as u64);
            for &(v, d) in bunch {
                f(v as u64);
                f(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_graph::graph::Direction;

    fn gnp(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp(n, 3.0 / n as f64, 1..=20, &mut rng)
    }

    #[test]
    fn never_underestimates_and_respects_stretch_bound() {
        let g = gnp(60, 3);
        let exact = apsp::exact_apsp(&g);
        let sketch = LandmarkSketch::build(&g, 11, ExecPolicy::Seq);
        for u in 0..g.n() {
            for v in 0..g.n() {
                let d = exact.get(u, v);
                let e = sketch.query(u, v);
                assert!(e >= d, "underestimate at ({u},{v}): {e} < {d}");
                if d < INF {
                    assert!(e < INF, "missing reachable pair ({u},{v})");
                    assert!(e as f64 <= 3.0 * d as f64 + 1e-9, "stretch at ({u},{v})");
                } else {
                    assert!(e >= INF, "phantom path at ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn disconnected_graphs_get_a_landmark_per_component() {
        // Three components, including an isolated vertex.
        let g = Graph::from_edges(
            7,
            Direction::Undirected,
            &[(0, 1, 2), (1, 2, 2), (3, 4, 5), (4, 5, 5)],
        );
        let sketch = LandmarkSketch::build(&g, 0, ExecPolicy::Seq);
        for u in 0..7 {
            assert!(
                sketch.nearest_landmark_dist(u) < INF,
                "vertex {u} has no landmark in its component"
            );
        }
        assert_eq!(sketch.query(0, 2), 4);
        assert!(sketch.query(0, 3) >= INF);
        assert_eq!(sketch.query(6, 6), 0);
        assert!(sketch.query(6, 0) >= INF);
    }

    #[test]
    fn query_is_symmetric_and_matches_dist_row() {
        let g = gnp(40, 9);
        let sketch = LandmarkSketch::build(&g, 5, ExecPolicy::Seq);
        for u in 0..g.n() {
            let row = sketch.dist_row(u);
            for (v, &row_v) in row.iter().enumerate() {
                assert_eq!(sketch.query(u, v), row_v, "row mismatch at ({u},{v})");
                assert_eq!(
                    sketch.query(u, v),
                    sketch.query(v, u),
                    "asymmetry at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn build_is_invariant_across_exec_policies() {
        let g = gnp(50, 21);
        let seq = LandmarkSketch::build(&g, 13, ExecPolicy::Seq);
        let par = LandmarkSketch::build(&g, 13, ExecPolicy::with_threads(4));
        assert_eq!(seq, par);
        let mut a = Vec::new();
        let mut b = Vec::new();
        seq.fold_words(|w| a.push(w));
        par.fold_words(|w| b.push(w));
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let g = gnp(30, 2);
        let sketch = LandmarkSketch::build(&g, 4, ExecPolicy::Seq);
        let back = LandmarkSketch::from_parts(
            sketch.n(),
            sketch.seed(),
            sketch.landmarks.clone(),
            sketch.rows.clone(),
            sketch.bunches.clone(),
        )
        .expect("valid parts");
        assert_eq!(back, sketch);

        // Structural violations are rejected with a description.
        assert!(LandmarkSketch::from_parts(3, 0, vec![], vec![], vec![vec![]; 3]).is_err());
        assert!(LandmarkSketch::from_parts(3, 0, vec![2, 1], vec![0; 6], vec![vec![]; 3]).is_err());
        assert!(LandmarkSketch::from_parts(3, 0, vec![5], vec![0; 3], vec![vec![]; 3]).is_err());
        assert!(LandmarkSketch::from_parts(3, 0, vec![0], vec![0; 2], vec![vec![]; 3]).is_err());
        assert!(
            LandmarkSketch::from_parts(3, 0, vec![0], vec![0; 3], vec![vec![(1, 1)]; 3]).is_err(),
            "self entry in bunch of 1 must be rejected"
        );
        assert!(LandmarkSketch::from_parts(
            3,
            0,
            vec![0],
            vec![0; 3],
            vec![vec![(2, 1), (1, 1)], vec![], vec![]]
        )
        .is_err());
    }

    #[test]
    fn landmark_count_is_about_sqrt_n() {
        let g = gnp(100, 8);
        let sketch = LandmarkSketch::build(&g, 1, ExecPolicy::Seq);
        assert!(sketch.landmarks().len() >= 10);
        // Promotion can add at most one landmark per component.
        let (_, comps) = connected_components(&g);
        assert!(sketch.landmarks().len() <= 10 + comps);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let empty = Graph::from_edges(0, Direction::Undirected, &[]);
        let s0 = LandmarkSketch::build(&empty, 1, ExecPolicy::Seq);
        assert_eq!(s0.n(), 0);
        assert_eq!(s0.approx_mem_bytes(), 0);

        let one = Graph::from_edges(1, Direction::Undirected, &[]);
        let s1 = LandmarkSketch::build(&one, 1, ExecPolicy::Seq);
        assert_eq!(s1.query(0, 0), 0);
        assert_eq!(s1.landmarks(), &[0]);
    }
}
