//! APSP approximation in small weighted diameter graphs
//! (Section 7.3, Theorem 7.1), plus Corollary 7.1.
//!
//! Pipeline: bootstrap an `O(log n)`-approximation from a spanner
//! (Corollary 7.2), iterate the factor reduction of Lemma 3.1 while it is
//! profitable (`15√a < a`, i.e. `a > 225` — at feasible n the bootstrap is
//! already below this threshold, so the loop runs zero times unless forced;
//! see `params`), then run the final `√n`-nearest stage:
//! hopset → exact `√n`-nearest (h = 2) → skeleton → APSP on the skeleton —
//! by 3-spanner broadcast in the standard model (21-approximation), or by
//! broadcasting the whole skeleton graph in `Congested-Clique[log³n]`
//! (7-approximation).

use cc_graph::graph::Graph;
use cc_graph::{apsp, DistMatrix};
use cc_matrix::engine::KernelMode;
use cc_par::ExecPolicy;
use clique_sim::Clique;
use rand::rngs::StdRng;

use crate::params::{hopset_beta_bound, iterations_for_hops, REDUCTION_PROFITABLE_ABOVE};
use crate::reduction::{estimate_diameter, reduce_once_kernel};
use crate::skeleton::{build_skeleton_kernel, extend_estimate, extension_bound};
use crate::spanner::{
    baswana_sen, bootstrap_k, spanner_apsp_estimate_with, SPANNER_CONSTRUCTION_ROUNDS,
};
use crate::{hopset, knearest};

/// Configuration for [`small_diameter_apsp`].
#[derive(Debug, Clone, Default)]
pub struct SmallDiamConfig {
    /// Reduction policy: `None` = iterate while profitable then run the
    /// final stage (Theorem 7.1); `Some(t)` = apply exactly `t` reductions
    /// and return (the Lemma 8.2 round-limited variant used by
    /// Theorem 1.2).
    pub forced_reductions: Option<usize>,
    /// Whether the final skeleton APSP may broadcast the entire skeleton
    /// graph (the `Congested-Clique[log³n]` bullet of Theorem 7.1, giving a
    /// 7- instead of 21-approximation). The broadcast is charged honestly
    /// against the clique's actual bandwidth either way.
    pub wide_bandwidth: bool,
    /// Local execution policy for the kernels inside this instance
    /// (spanner APSP, skeleton products). Wall-clock only; outputs are
    /// bit-identical across policies. Defaults to the `CC_THREADS`
    /// environment default.
    pub exec: ExecPolicy,
    /// Min-plus kernel dispatch for the engine-backed products (skeleton
    /// matmul). Wall-clock only; outputs are bit-identical across modes.
    /// Defaults to the `CC_KERNEL` environment default.
    pub kernel: KernelMode,
}

/// Corollary 7.1: an APSP estimate for a *small* graph `gs` (a skeleton
/// graph whose nodes map into the clique), made known to all nodes.
///
/// Builds a `(2b−1)`-spanner and broadcasts it — unless the graph itself is
/// already no larger than its spanner would be, in which case the graph is
/// broadcast directly (the degenerate `b = 1` case, exact distances).
///
/// Returns `(estimate over gs's node indices, stretch factor l)`.
pub fn small_graph_apsp(
    clique: &mut Clique,
    gs: &Graph,
    b: usize,
    rng: &mut StdRng,
) -> (DistMatrix, f64) {
    small_graph_apsp_with(clique, gs, b, rng, ExecPolicy::from_env())
}

/// [`small_graph_apsp`] under an explicit [`ExecPolicy`] for the local APSP
/// of the broadcast graph/spanner.
pub fn small_graph_apsp_with(
    clique: &mut Clique,
    gs: &Graph,
    b: usize,
    rng: &mut StdRng,
    exec: ExecPolicy,
) -> (DistMatrix, f64) {
    clique.phase("skeleton-apsp", |clique| {
        let ns = gs.n().max(1);
        let spanner_size_estimate = (b as f64) * (ns as f64).powf(1.0 + 1.0 / b as f64);
        if b <= 1 || (gs.m() as f64) <= spanner_size_estimate {
            // Broadcast the graph itself; every node computes exact APSP.
            clique.broadcast_volume("broadcast-skeleton-graph", 3 * gs.m());
            (apsp::exact_apsp_with(gs, exec), 1.0)
        } else {
            let spanner = baswana_sen(gs, b, rng);
            clique.charge("cz22-construct(cited O(1))", SPANNER_CONSTRUCTION_ROUNDS);
            clique.broadcast_volume("broadcast-skeleton-spanner", 3 * spanner.m());
            (apsp::exact_apsp_with(&spanner, exec), (2 * b - 1) as f64)
        }
    })
}

/// The shared final stage (the Section 3.2 recipe, steps 2–6): from an
/// a-approximation δ, build a `√n`-nearest hopset, compute exact
/// `√n`-nearest sets with `h = 2` and `i = ⌈log₂ β⌉` iterations, reduce to
/// a skeleton, solve it (3-spanner broadcast, or whole-graph broadcast when
/// `wide`), and extend. Returns `(estimate, bound 7·l)`.
#[allow(clippy::too_many_arguments)]
fn sqrt_n_stage(
    clique: &mut Clique,
    g: &Graph,
    delta: &DistMatrix,
    a: f64,
    wide_bandwidth: bool,
    rng: &mut StdRng,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> (DistMatrix, f64) {
    let n = g.n();
    let sqrt_n = ((n as f64).sqrt().floor() as usize).max(2);
    let hs = hopset::build_hopset(clique, g, delta, sqrt_n);
    let beta = hopset_beta_bound(a, estimate_diameter(delta));
    let iterations = iterations_for_hops(2, beta);
    let rows = knearest::k_nearest_exact(clique, &hs.combined, sqrt_n, 2, iterations);
    let sk = build_skeleton_kernel(clique, g, &rows, rng, exec, kernel);
    let (delta_gs, l) = if wide_bandwidth {
        // CC[log³n]: broadcast the entire skeleton graph.
        clique.broadcast_volume("broadcast-skeleton-graph", 3 * sk.graph.m());
        (apsp::exact_apsp_with(&sk.graph, exec), 1.0)
    } else {
        small_graph_apsp_with(clique, &sk.graph, 2, rng, exec)
    };
    let eta = extend_estimate(clique, &sk, &rows, &delta_gs);
    (eta, extension_bound(l, 1.0))
}

/// The Section 3.2 algorithm: a 21-approximation of APSP on **general**
/// weighted graphs in `O(log log n)` rounds (7-approximation with
/// `wide_bandwidth`, per the Section 3.2 closing remark).
///
/// This is the paper's intermediate milestone before the
/// `O(log log log n)` result: bootstrap an `O(log n)`-approximation, then
/// run the `√n`-nearest stage directly — its `i = ⌈log₂ β⌉ ∈ O(log log n)`
/// k-nearest iterations dominate the round count. No weighted-diameter
/// assumption is needed.
pub fn apsp_o_loglog(
    clique: &mut Clique,
    g: &Graph,
    wide_bandwidth: bool,
    rng: &mut StdRng,
) -> (DistMatrix, f64) {
    apsp_o_loglog_with(
        clique,
        g,
        wide_bandwidth,
        rng,
        ExecPolicy::from_env(),
        KernelMode::from_env(),
    )
}

/// [`apsp_o_loglog`] with the wall-clock knobs explicit, matching the
/// sibling pipeline entry points: outputs are bit-identical for every
/// `(exec, kernel)`.
pub fn apsp_o_loglog_with(
    clique: &mut Clique,
    g: &Graph,
    wide_bandwidth: bool,
    rng: &mut StdRng,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> (DistMatrix, f64) {
    clique.phase("section-3.2", |clique| {
        let boot = spanner_apsp_estimate_with(clique, g, bootstrap_k(g.n()), rng, exec);
        sqrt_n_stage(
            clique,
            g,
            &boot.estimate,
            boot.stretch_bound,
            wide_bandwidth,
            rng,
            exec,
            kernel,
        )
    })
}

/// Theorem 7.1: APSP approximation for graphs of small weighted diameter.
/// Returns `(estimate, guaranteed stretch bound)`.
///
/// In the standard model the bound is `7·l` with `l = 3` (21); with
/// `wide_bandwidth` the skeleton graph is broadcast whole (`l = 1`, bound 7).
pub fn small_diameter_apsp(
    clique: &mut Clique,
    g: &Graph,
    cfg: &SmallDiamConfig,
    rng: &mut StdRng,
) -> (DistMatrix, f64) {
    let n = g.n();
    clique.phase("theorem-7.1", |clique| {
        // Bootstrap: O(log n)-approximation (Corollary 7.2).
        let boot = spanner_apsp_estimate_with(clique, g, bootstrap_k(n), rng, cfg.exec);
        let mut delta = boot.estimate;
        let mut a = boot.stretch_bound;

        // Reduction loop. After each step we keep the entrywise min of the
        // old and new estimates — a zero-round local operation; both are
        // valid overestimates, so the min inherits the *better* of the two
        // guarantees. (Asymptotically each step improves a → 15√a; at
        // finite n, where a starts below the profitability threshold, this
        // keeps forced runs monotone.)
        let step = |clique: &mut Clique, delta: &mut DistMatrix, a: &mut f64, rng: &mut StdRng| {
            let out = reduce_once_kernel(clique, g, delta, *a, rng, cfg.exec, cfg.kernel);
            let mut est = out.estimate;
            est.entrywise_min(delta);
            *delta = est;
            *a = a.min(out.bound).min(crate::reduction::reduction_bound(*a));
        };
        match cfg.forced_reductions {
            Some(t) => {
                for _ in 0..t {
                    step(clique, &mut delta, &mut a, rng);
                }
                return (delta, a);
            }
            None => {
                while a > REDUCTION_PROFITABLE_ABOVE {
                    step(clique, &mut delta, &mut a, rng);
                }
            }
        }

        // Final stage: exact √n-nearest, skeleton, and skeleton APSP.
        sqrt_n_stage(
            clique,
            g,
            &delta,
            a,
            cfg.wide_bandwidth,
            rng,
            cfg.exec,
            cfg.kernel,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use clique_sim::Bandwidth;
    use rand::SeedableRng;

    #[test]
    fn standard_model_is_within_21() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(70, 0.1, 1..=20, &mut rng);
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            let (est, bound) =
                small_diameter_apsp(&mut clique, &g, &SmallDiamConfig::default(), &mut rng);
            assert!(bound <= 21.0 + 1e-9, "bound = {bound}");
            let exact = apsp::exact_apsp(&g);
            let stats = est.stretch_vs(&exact);
            assert!(stats.is_valid_approximation(bound), "seed={seed}: {stats}");
        }
    }

    #[test]
    fn wide_bandwidth_is_within_7() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp_connected(60, 0.12, 1..=15, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::polylog(3, g.n()));
        let cfg = SmallDiamConfig {
            wide_bandwidth: true,
            ..Default::default()
        };
        let (est, bound) = small_diameter_apsp(&mut clique, &g, &cfg, &mut rng);
        assert!(bound <= 7.0 + 1e-9);
        let exact = apsp::exact_apsp(&g);
        let stats = est.stretch_vs(&exact);
        assert!(stats.is_valid_approximation(bound), "{stats}");
    }

    #[test]
    fn forced_reductions_return_after_t_steps() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(50, 0.15, 1..=10, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let cfg = SmallDiamConfig {
            forced_reductions: Some(2),
            ..Default::default()
        };
        let (est, bound) = small_diameter_apsp(&mut clique, &g, &cfg, &mut rng);
        let exact = apsp::exact_apsp(&g);
        let stats = est.stretch_vs(&exact);
        assert!(stats.is_valid_approximation(bound), "{stats}");
    }

    #[test]
    fn section_3_2_algorithm_is_valid_on_general_graphs() {
        // No small-diameter assumption: wide weight spreads are fine.
        for seed in [1u64, 4] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::wide_weight_gnp(64, 0.15, 18, &mut rng);
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            let (est, bound) = apsp_o_loglog(&mut clique, &g, false, &mut rng);
            assert!(bound <= 21.0 + 1e-9, "bound = {bound}");
            let exact = apsp::exact_apsp(&g);
            let stats = est.stretch_vs(&exact);
            assert!(stats.is_valid_approximation(bound), "seed={seed}: {stats}");
        }
    }

    #[test]
    fn section_3_2_wide_bandwidth_is_7_approx() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_connected(72, 0.1, 1..=1000, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::polylog(3, g.n()));
        let (est, bound) = apsp_o_loglog(&mut clique, &g, true, &mut rng);
        assert!(bound <= 7.0 + 1e-9);
        let exact = apsp::exact_apsp(&g);
        assert!(est.stretch_vs(&exact).is_valid_approximation(bound));
    }

    #[test]
    fn small_graph_apsp_exact_when_tiny() {
        let mut rng = StdRng::seed_from_u64(2);
        let gs = generators::gnp_connected(20, 0.3, 1..=9, &mut rng);
        let mut clique = Clique::new(64, Bandwidth::standard(64));
        let (est, l) = small_graph_apsp(&mut clique, &gs, 2, &mut rng);
        // 20-node graph: broadcasting it directly beats the spanner.
        assert_eq!(l, 1.0);
        assert_eq!(est, apsp::exact_apsp(&gs));
    }

    #[test]
    fn rounds_stay_modest_as_n_grows() {
        // The triple-log shape: round counts should be nearly flat in n.
        let mut totals = Vec::new();
        for n in [64usize, 128, 256] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let g = generators::gnp_connected(n, (8.0 / n as f64).min(0.3), 1..=20, &mut rng);
            let mut clique = Clique::new(n, Bandwidth::standard(n));
            small_diameter_apsp(&mut clique, &g, &SmallDiamConfig::default(), &mut rng);
            totals.push(clique.rounds());
        }
        // Allow drift but not linear growth: quadrupling n should not even
        // double the rounds.
        assert!(
            totals[2] < totals[0] * 2 + 20,
            "rounds grew too fast: {totals:?}"
        );
    }
}
