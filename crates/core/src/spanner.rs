//! Spanners (Section 7.1) and the `O(log n)`-approximation bootstrap.
//!
//! The paper uses the constant-round spanner constructions of Chechik–Zhang
//! \[CZ22\] (Lemma 7.1): a `(2k−1)`-spanner with `O(k·n^(1+1/k))` edges, or a
//! `(1+ε)(2k−1)`-spanner with `O(n^(1+1/k))` edges, both in `O(1)` rounds.
//!
//! **Substitution (documented in DESIGN.md):** we implement the classic
//! Baswana–Sen randomized construction, which produces a `(2k−1)`-spanner
//! with `O(k·n^(1+1/k))` expected edges — the same stretch, with an extra `k`
//! factor in size that only matters on graphs denser than our workloads. The
//! *construction* is charged `O(1)` rounds per the CZ22 theorem
//! ([`SPANNER_CONSTRUCTION_ROUNDS`]); the *broadcast* of the spanner (the
//! step whose cost actually depends on the size) is charged honestly from
//! the measured edge count.

use cc_graph::graph::{Direction, Graph, GraphBuilder};
use cc_graph::{apsp, DistMatrix, NodeId, Weight, INF};
use cc_par::ExecPolicy;
use clique_sim::Clique;
use rand::rngs::StdRng;
use rand::Rng;

/// Rounds charged for constructing a spanner in the clique, per [CZ22,
/// Theorems 1.2/1.3] ("there is a constant-round algorithm that w.h.p.
/// computes the following spanners"). The data movement of the construction
/// itself stays inside this charge; the broadcast is charged separately.
pub const SPANNER_CONSTRUCTION_ROUNDS: u64 = 3;

/// Baswana–Sen `(2k−1)`-spanner of a weighted undirected graph.
///
/// `k` rounds of cluster sampling at rate `n^(-1/k)`; expected size
/// `O(k·n^(1+1/k))`. The output is a subgraph of `g` (every spanner edge is a
/// graph edge), so spanner distances never underestimate.
///
/// # Panics
///
/// Panics if `g` is directed or `k == 0`.
pub fn baswana_sen(g: &Graph, k: usize, rng: &mut StdRng) -> Graph {
    assert_eq!(
        g.direction(),
        Direction::Undirected,
        "spanners need undirected graphs"
    );
    assert!(k >= 1, "stretch parameter k must be >= 1");
    let n = g.n();
    let mut spanner = GraphBuilder::undirected(n);
    // cluster[v] = Some(center) if v belongs to a cluster, None if removed.
    let mut cluster: Vec<Option<NodeId>> = (0..n).map(Some).collect();
    let sample_prob = (n as f64).powf(-1.0 / k as f64).min(1.0);

    for _phase in 0..k.saturating_sub(1) {
        // Sample clusters (by center).
        let mut center_sampled = vec![false; n];
        let mut any_center = false;
        for slot in center_sampled.iter_mut() {
            if rng.gen_bool(sample_prob) {
                *slot = true;
                any_center = true;
            }
        }
        // Guard against the (exponentially unlikely) empty sample, which
        // would wipe out all clusters at once and hurt the size bound.
        if !any_center {
            center_sampled[rng.gen_range(0..n)] = true;
        }
        let mut next_cluster: Vec<Option<NodeId>> = vec![None; n];
        for v in 0..n {
            let Some(cv) = cluster[v] else { continue };
            if center_sampled[cv] {
                // v's cluster survives.
                next_cluster[v] = Some(cv);
                continue;
            }
            // Lightest edge from v to each adjacent cluster.
            let mut best_per_cluster: std::collections::HashMap<NodeId, (Weight, NodeId)> =
                std::collections::HashMap::new();
            let mut best_sampled: Option<(Weight, NodeId, NodeId)> = None; // (w, nbr, center)
            for (u, w) in g.neighbors(v) {
                let Some(cu) = cluster[u] else { continue };
                let entry = best_per_cluster.entry(cu).or_insert((w, u));
                if (w, u) < *entry {
                    *entry = (w, u);
                }
                if center_sampled[cu] {
                    let cand = (w, u, cu);
                    if best_sampled.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                        best_sampled = Some(cand);
                    }
                }
            }
            match best_sampled {
                Some((wj, uj, cj)) => {
                    // Join the nearest sampled cluster; keep lighter edges to
                    // other clusters seen so far.
                    spanner.add_edge(v, uj, wj);
                    next_cluster[v] = Some(cj);
                    for (&c, &(w, u)) in &best_per_cluster {
                        if c != cj && (w, u) < (wj, uj) {
                            spanner.add_edge(v, u, w);
                        }
                    }
                }
                None => {
                    // No adjacent sampled cluster: connect to every adjacent
                    // cluster and leave the clustering.
                    for (&_c, &(w, u)) in &best_per_cluster {
                        spanner.add_edge(v, u, w);
                    }
                    next_cluster[v] = None;
                }
            }
        }
        cluster = next_cluster;
    }

    // Phase 2: every node connects to each remaining adjacent cluster.
    for v in 0..n {
        let mut best_per_cluster: std::collections::HashMap<NodeId, (Weight, NodeId)> =
            std::collections::HashMap::new();
        for (u, w) in g.neighbors(v) {
            let Some(cu) = cluster[u] else { continue };
            let entry = best_per_cluster.entry(cu).or_insert((w, u));
            if (w, u) < *entry {
                *entry = (w, u);
            }
        }
        for (&_c, &(w, u)) in &best_per_cluster {
            spanner.add_edge(v, u, w);
        }
    }
    spanner.build()
}

/// Outcome of [`spanner_apsp_estimate`]: the spanner-based distance estimate
/// together with the spanner itself and its guarantee.
#[derive(Debug, Clone)]
pub struct SpannerEstimate {
    /// δ(u,v) = distance in the spanner; an α-approximation with
    /// α = [`Self::stretch_bound`].
    pub estimate: DistMatrix,
    /// The spanner (a subgraph of the input).
    pub spanner: Graph,
    /// `2k − 1`.
    pub stretch_bound: f64,
}

/// Corollary 7.2-style bootstrap: build a `(2k−1)`-spanner, broadcast it to
/// every node, and have each node locally compute the spanner's APSP. The
/// result is known to all nodes.
///
/// Round charges: [`SPANNER_CONSTRUCTION_ROUNDS`] (cited) + a broadcast of
/// all spanner edges (3 words each) charged from the measured size.
pub fn spanner_apsp_estimate(
    clique: &mut Clique,
    g: &Graph,
    k: usize,
    rng: &mut StdRng,
) -> SpannerEstimate {
    spanner_apsp_estimate_with(clique, g, k, rng, ExecPolicy::from_env())
}

/// [`spanner_apsp_estimate`] under an explicit [`ExecPolicy`] (the local
/// spanner-APSP computation runs parallel per-source Dijkstras).
pub fn spanner_apsp_estimate_with(
    clique: &mut Clique,
    g: &Graph,
    k: usize,
    rng: &mut StdRng,
    exec: ExecPolicy,
) -> SpannerEstimate {
    clique.phase("spanner-bootstrap", |clique| {
        let spanner = baswana_sen(g, k, rng);
        clique.charge("cz22-construct(cited O(1))", SPANNER_CONSTRUCTION_ROUNDS);
        // Broadcast: the lower-ID endpoint of each spanner edge contributes
        // it; each node must receive the full edge list.
        let mut per_node = vec![0usize; g.n()];
        for (u, v, _) in spanner.edges() {
            per_node[u.min(v)] += 3;
        }
        clique.broadcast_all("broadcast-spanner", &per_node);
        // Local computation at every node: APSP of the broadcast spanner.
        let estimate = apsp::exact_apsp_with(&spanner, exec);
        SpannerEstimate {
            estimate,
            spanner,
            stretch_bound: (2 * k - 1) as f64,
        }
    })
}

/// The bootstrap parameter of Corollary 7.2: `b = max(2, ⌊α·log₂n / 3⌋)`
/// with `α = 1`, so the bootstrap stretch `2b−1` is `O(log n)`.
pub fn bootstrap_k(n: usize) -> usize {
    ((cc_graph::log2_ceil(n) as usize) / 3).max(2)
}

/// Measures the true stretch of `spanner` against `g` (max over connected
/// pairs of `d_spanner / d_g`). Test/experiment helper; `O(n·m log n)`.
pub fn measure_spanner_stretch(g: &Graph, spanner: &Graph) -> f64 {
    let dg = apsp::exact_apsp(g);
    let ds = apsp::exact_apsp(spanner);
    let mut worst = 1.0f64;
    for u in 0..g.n() {
        for v in 0..g.n() {
            let d = dg.get(u, v);
            if u == v || d == 0 || d >= INF {
                continue;
            }
            let s = ds.get(u, v);
            if s >= INF {
                return f64::INFINITY;
            }
            worst = worst.max(s as f64 / d as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use clique_sim::Bandwidth;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn spanner_is_subgraph() {
        let mut r = rng(1);
        let g = generators::gnp_connected(60, 0.2, 1..=20, &mut r);
        let s = baswana_sen(&g, 3, &mut r);
        for (u, v, w) in s.edges() {
            assert_eq!(
                g.edge_weight(u, v),
                Some(w),
                "spanner edge ({u},{v}) not in G at weight {w}"
            );
        }
    }

    #[test]
    fn spanner_stretch_within_2k_minus_1() {
        for seed in 0..5 {
            let mut r = rng(seed);
            for k in [2usize, 3, 4] {
                let g = generators::gnp_connected(48, 0.25, 1..=30, &mut r);
                let s = baswana_sen(&g, k, &mut r);
                let stretch = measure_spanner_stretch(&g, &s);
                assert!(
                    stretch <= (2 * k - 1) as f64 + 1e-9,
                    "seed={seed} k={k}: stretch {stretch}"
                );
            }
        }
    }

    #[test]
    fn spanner_size_bounded() {
        // Expected size O(k n^{1+1/k}); allow constant 4 (plus n for the
        // random patch edges).
        let mut r = rng(7);
        let n = 128;
        let g = generators::complete_graph(n, 1..=100, &mut r);
        for k in [2usize, 3] {
            let s = baswana_sen(&g, k, &mut r);
            let bound = 4.0 * (k as f64) * (n as f64).powf(1.0 + 1.0 / k as f64) + n as f64;
            assert!(
                (s.m() as f64) < bound,
                "k={k}: {} edges > bound {bound:.0}",
                s.m()
            );
        }
    }

    #[test]
    fn k1_spanner_is_whole_graph() {
        // Stretch 1 requires keeping every (useful) edge; Baswana–Sen with
        // k = 1 skips phase 1 and connects every node to every adjacent
        // cluster = every neighbor.
        let mut r = rng(3);
        let g = generators::gnp_connected(20, 0.3, 1..=5, &mut r);
        let s = baswana_sen(&g, 1, &mut r);
        assert_eq!(s.m(), g.m());
    }

    #[test]
    fn bootstrap_estimate_is_valid_log_n_approx() {
        let mut r = rng(11);
        let g = generators::gnp_connected(80, 0.1, 1..=40, &mut r);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let b = bootstrap_k(g.n());
        let est = spanner_apsp_estimate(&mut clique, &g, b, &mut r);
        let exact = apsp::exact_apsp(&g);
        let stats = est.estimate.stretch_vs(&exact);
        assert!(stats.is_valid_approximation(est.stretch_bound), "{stats}");
        assert!(clique.rounds() >= SPANNER_CONSTRUCTION_ROUNDS);
        // The broadcast is charged exactly from the measured spanner size:
        // construction + 2·⌈3m_spanner / n⌉.
        let expected =
            SPANNER_CONSTRUCTION_ROUNDS + 2 * (3 * est.spanner.m()).div_ceil(g.n()) as u64;
        assert_eq!(clique.rounds(), expected);
    }

    #[test]
    fn bootstrap_k_scales_with_log_n() {
        assert_eq!(bootstrap_k(1 << 9), 3);
        assert_eq!(bootstrap_k(1 << 15), 5);
        assert_eq!(bootstrap_k(4), 2);
    }

    #[test]
    fn spanner_keeps_graph_connected() {
        let mut r = rng(5);
        let g = generators::gnp_connected(64, 0.15, 1..=9, &mut r);
        let s = baswana_sen(&g, 4, &mut r);
        let (_, comps) = cc_graph::components::connected_components(&s);
        assert_eq!(comps, 1);
    }
}
