//! `√n`-nearest β-hopsets (Section 4, Lemma 3.2).
//!
//! Given an a-approximation δ of APSP, the `O(1)`-round algorithm below adds
//! shortcut edges `H` such that in `G ∪ H` every node reaches each of its
//! `√n`-nearest nodes by a path of at most `β ∈ O(a·log d)` hops whose length
//! is the **exact** distance — turning an approximate input into an exact
//! (low-hop) structure. Distances are preserved (`d_{G∪H} = d_G`) because
//! every hopset edge's weight is the length of a real path.
//!
//! The algorithm (Section 4.1):
//! 1. each node `v` picks its approximate k-nearest set `Ñ_k(v)` — the `k`
//!    nodes with smallest `(δ(v,u), u)`;
//! 2. `v` asks every `u ∈ Ñ_k(v)` for `u`'s `k` lightest outgoing edges;
//! 3. `v` runs a shortest-path computation on the received edges plus its
//!    own outgoing edges;
//! 4. `v` adds a hopset edge `(v, u)` weighted by the locally computed
//!    distance, for each `u ∈ Ñ_k(v)` it reached.

use cc_graph::graph::{Direction, Graph, GraphBuilder};
use cc_graph::{sssp, DistMatrix, NodeId, Weight, INF};
use clique_sim::Clique;

/// Output of [`build_hopset`].
#[derive(Debug, Clone)]
pub struct Hopset {
    /// The hopset edges `H` (directed: `(v, u)` means `v` shortcuts to `u`).
    pub hopset: Graph,
    /// `G ∪ H`, with the same directedness as the input graph. For an
    /// undirected input, each hopset edge is inserted undirected — its
    /// weight is the length of a real path in `G`, which is symmetric.
    pub combined: Graph,
    /// `Ñ_k(v)` per node: the approximate k-nearest sets used (sorted by
    /// `(δ, id)`).
    pub tilde_sets: Vec<Vec<NodeId>>,
    /// The `k` parameter (paper: `√n`).
    pub k: usize,
}

/// Builds a `k`-nearest hopset from the a-approximation `delta`
/// (Lemma 3.2; `k = ⌊√n⌋` reproduces the paper's statement).
///
/// Round charges: one round of requests, then the bulk transfer of Step 2.
/// Each node receives `k² ≤ n` edge descriptions (2 words each); senders may
/// duplicate content across requesters, which is exactly the situation
/// Lemma 2.2 handles, so the charge uses the receive loads.
///
/// # Panics
///
/// Panics if `delta` has wrong dimensions or `k == 0`.
pub fn build_hopset(clique: &mut Clique, g: &Graph, delta: &DistMatrix, k: usize) -> Hopset {
    assert_eq!(delta.n(), g.n(), "δ dimension mismatch");
    assert!(k >= 1, "k must be positive");
    let n = g.n();
    clique.phase("hopset", |clique| {
        // Step 1 (local): Ñ_k(v) by (δ(v,u), u).
        let tilde_sets: Vec<Vec<NodeId>> = (0..n)
            .map(|v| {
                let mut order: Vec<(Weight, NodeId)> = delta
                    .row(v)
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(u, d)| (d, u))
                    .collect();
                order.sort_unstable();
                order.into_iter().take(k).map(|(_, u)| u).collect()
            })
            .collect();

        // Step 2: v requests the k lightest outgoing edges of each u ∈ Ñ_k(v).
        // Requests: one word per (v, u) pair.
        let mut req_send = vec![0usize; n];
        let mut req_recv = vec![0usize; n];
        for (v, set) in tilde_sets.iter().enumerate() {
            req_send[v] += set.len();
            for &u in set {
                req_recv[u] += 1;
            }
        }
        clique.charge_route_by_loads("hopset-requests", &req_send, &req_recv);

        // Responses: u sends its k lightest out-edges (2 words each) to every
        // requester. Content is identical for all requesters (Lemma 2.2
        // redundancy), so the charge is driven by receive loads; the send
        // loads record one copy per node.
        let light: Vec<Vec<(NodeId, Weight)>> =
            (0..n).map(|u| g.lightest_out_edges(u, k)).collect();
        let mut resp_send = vec![0usize; n];
        let mut resp_recv = vec![0usize; n];
        for (v, set) in tilde_sets.iter().enumerate() {
            for &u in set {
                resp_recv[v] += 2 * light[u].len();
            }
        }
        for (u, edges) in light.iter().enumerate() {
            resp_send[u] = 2 * edges.len();
        }
        clique.charge_route_by_loads("hopset-edge-transfer", &resp_send, &resp_recv);

        // Step 3 (local): shortest paths on received edges + own out-edges.
        // Step 4: add hopset edges (v, u, d'(v, u)); one extra round informs
        // the other endpoint (one message per hopset edge).
        let mut hopset_b = GraphBuilder::directed(n);
        let mut inform_send = vec![0usize; n];
        let mut inform_recv = vec![0usize; n];
        for v in 0..n {
            let mut arcs: Vec<(NodeId, NodeId, Weight)> = Vec::new();
            for &u in &tilde_sets[v] {
                for &(t, w) in &light[u] {
                    arcs.push((u, t, w));
                }
            }
            for (t, w) in g.neighbors(v) {
                arcs.push((v, t, w));
            }
            let dist = sssp::dijkstra_arcs(n, &arcs, v);
            for &u in &tilde_sets[v] {
                if u != v && dist[u] < INF {
                    hopset_b.add_edge(v, u, dist[u]);
                    inform_send[v] += 3;
                    inform_recv[u] += 3;
                }
            }
        }
        clique.charge_route_by_loads("hopset-inform-endpoints", &inform_send, &inform_recv);

        let hopset = hopset_b.build();
        let combined = match g.direction() {
            Direction::Directed => g.union(&hopset),
            Direction::Undirected => {
                // Re-insert hopset arcs as undirected edges.
                let mut b = GraphBuilder::undirected(n);
                for (u, v, w) in g.edges() {
                    b.add_edge(u, v, w);
                }
                for (u, v, w) in hopset.all_arcs() {
                    b.add_edge(u, v, w);
                }
                b.build()
            }
        };
        Hopset {
            hopset,
            combined,
            tilde_sets,
            k,
        }
    })
}

/// Measures the realized hop bound β of a hopset: the maximum, over every
/// node `v` and every `u` in `v`'s **exact** `k`-nearest set, of the minimum
/// number of hops of an exact-length `v → u` path in `G ∪ H`.
///
/// Also verifies distance preservation; returns `(beta, preserved)`.
/// Experiment E4 compares β against the Lemma 3.2 bound `O(a·log d)`.
pub fn measure_hop_bound(g: &Graph, hopset: &Hopset, k: usize) -> (usize, bool) {
    let n = g.n();
    let mut beta = 0usize;
    let mut preserved = true;
    for v in 0..n {
        let exact = sssp::dijkstra(g, v);
        let nearest = sssp::k_nearest_from_dists(&exact, k);
        let combined_best = sssp::dijkstra_with_hops(&hopset.combined, v);
        for (u, d) in nearest {
            let (cd, hops) = combined_best[u];
            if cd != d {
                preserved = false;
            }
            if u != v {
                beta = beta.max(hops);
            }
        }
    }
    (beta, preserved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::hopset_beta_bound;
    use cc_graph::{apsp, generators, sssp::weighted_diameter};
    use clique_sim::Bandwidth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clique_for(g: &Graph) -> Clique {
        Clique::new(g.n(), Bandwidth::standard(g.n()))
    }

    /// A degraded a-approximation: exact distances multiplied by factors
    /// cycling in [1, a].
    fn degraded_estimate(g: &Graph, a: u64) -> DistMatrix {
        let exact = apsp::exact_apsp(g);
        let n = g.n();
        let mut m = DistMatrix::infinite(n);
        for u in 0..n {
            for v in 0..n {
                let d = exact.get(u, v);
                if u != v && d < INF {
                    let factor = 1 + (u * 31 + v * 17) as u64 % a;
                    m.set(u, v, d * factor);
                }
            }
        }
        // Keep it symmetric, as a spanner-derived δ would be.
        m.symmetrize_min();
        m
    }

    #[test]
    fn hopset_preserves_distances() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp_connected(48, 0.12, 1..=30, &mut rng);
        let delta = degraded_estimate(&g, 4);
        let mut clique = clique_for(&g);
        let h = build_hopset(&mut clique, &g, &delta, 7);
        assert_eq!(apsp::exact_apsp(&g), apsp::exact_apsp(&h.combined));
    }

    #[test]
    fn hop_bound_within_lemma_3_2() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(40, 0.15, 1..=20, &mut rng);
            let a = 3u64;
            let delta = degraded_estimate(&g, a);
            let k = (g.n() as f64).sqrt() as usize;
            let mut clique = clique_for(&g);
            let h = build_hopset(&mut clique, &g, &delta, k);
            let (beta, preserved) = measure_hop_bound(&g, &h, k);
            assert!(
                preserved,
                "seed={seed}: distances to k-nearest not preserved"
            );
            let bound = hopset_beta_bound(a as f64, weighted_diameter(&g));
            assert!(beta <= bound, "seed={seed}: beta={beta} > bound={bound}");
        }
    }

    #[test]
    fn exact_input_gives_two_hop_paths() {
        // With a = 1, Ñ_k(v) is the true k-nearest set and each target is
        // reached optimally within at most 2 hops (one shortcut + one edge).
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(36, 0.2, 1..=15, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let k = 6;
        let mut clique = clique_for(&g);
        let h = build_hopset(&mut clique, &g, &delta, k);
        let (beta, preserved) = measure_hop_bound(&g, &h, k);
        assert!(preserved);
        assert!(beta <= 2, "beta = {beta}");
    }

    #[test]
    fn path_graph_gets_logarithmically_short_paths() {
        // On a path, the hopset must shortcut long stretches.
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::path_with_chords(64, 0, 1..=1, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let k = 8;
        let mut clique = clique_for(&g);
        let h = build_hopset(&mut clique, &g, &delta, k);
        let (beta, preserved) = measure_hop_bound(&g, &h, k);
        assert!(preserved);
        assert!(beta <= 2, "exact input: beta = {beta}");
    }

    #[test]
    fn charges_constant_rounds_for_sqrt_n_k() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnp_connected(100, 0.08, 1..=25, &mut rng);
        let delta = degraded_estimate(&g, 3);
        let k = 10; // √100
        let mut clique = clique_for(&g);
        build_hopset(&mut clique, &g, &delta, k);
        // Receive load ≈ k² = n ⇒ O(1) rounds (constant small).
        assert!(clique.rounds() <= 10, "rounds = {}", clique.rounds());
    }

    #[test]
    fn tilde_sets_have_k_members_including_self() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnp_connected(30, 0.2, 1..=9, &mut rng);
        let delta = apsp::exact_apsp(&g);
        let mut clique = clique_for(&g);
        let h = build_hopset(&mut clique, &g, &delta, 5);
        for (v, set) in h.tilde_sets.iter().enumerate() {
            assert_eq!(set.len(), 5);
            assert!(set.contains(&v), "Ñ_k({v}) must contain v (δ(v,v)=0)");
        }
    }

    #[test]
    fn directed_input_supported() {
        // Lemma 3.2 holds for directed graphs; check distance preservation.
        let g = Graph::from_edges(
            5,
            Direction::Directed,
            &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2), (4, 0, 2)],
        );
        let delta = apsp::exact_apsp(&g);
        let mut clique = clique_for(&g);
        let h = build_hopset(&mut clique, &g, &delta, 3);
        assert_eq!(apsp::exact_apsp(&g), apsp::exact_apsp(&h.combined));
        assert_eq!(h.combined.direction(), Direction::Directed);
    }
}
