//! Approximation factor reduction (Section 7.2, Lemma 3.1):
//! an a-approximation of APSP becomes a `15√a`-approximation in `O(1)`
//! rounds (when `log d ∈ a^O(1)`).
//!
//! The four-step recipe:
//! 1. build a `√n`-nearest `O(a·log d)`-hopset from the given δ (Lemma 3.2);
//! 2. compute exact distances to the `k`-nearest nodes with
//!    `h = max(2, a^(1/4)/2)`, `k = n^(1/h)` (Lemma 3.3);
//! 3. build a skeleton graph on `Õ(n/k)` nodes from those exact sets
//!    (Lemma 3.4, so `a = 1` there);
//! 4. approximate APSP on the skeleton via a `(2b−1)`-spanner with `b ≈ √a`
//!    (Corollary 7.1) and extend back to `G`, for a final factor
//!    `7·(2b−1) ≤ 15√a`.

use cc_graph::{DistMatrix, Graph, Weight, INF};
use cc_matrix::engine::KernelMode;
use cc_par::ExecPolicy;
use clique_sim::Clique;
use rand::rngs::StdRng;

use crate::params::{hopset_beta_bound, iterations_for_hops, reduction_h_k};
use crate::skeleton::{build_skeleton_kernel, extend_estimate, extension_bound};
use crate::smalldiam::small_graph_apsp_with;
use crate::{hopset, knearest};

/// The result of one factor-reduction step.
#[derive(Debug, Clone)]
pub struct ReductionOutcome {
    /// The improved estimate.
    pub estimate: DistMatrix,
    /// The guaranteed approximation factor of [`Self::estimate`]
    /// (`7·l` where `l` is the skeleton-APSP stretch; ≤ `15√a` in the
    /// paper's regime).
    pub bound: f64,
    /// Parameters chosen: `(h, k, iterations)` for the k-nearest step.
    pub h: usize,
    /// The k-nearest set size.
    pub k: usize,
    /// Iterations of Lemma 5.1 used.
    pub iterations: usize,
    /// Skeleton size `|V_S|`.
    pub skeleton_size: usize,
}

/// Largest finite entry of δ — the diameter surrogate used to size the hop
/// bound (δ ≤ a·d, and the bound only needs `log d`).
pub fn estimate_diameter(delta: &DistMatrix) -> Weight {
    let mut max = 1;
    for u in 0..delta.n() {
        for &d in delta.row(u) {
            if d < INF && d > max {
                max = d;
            }
        }
    }
    max
}

/// One application of Lemma 3.1. `a_bound` is the guarantee of `delta`
/// (`d ≤ δ ≤ a·d`).
pub fn reduce_once(
    clique: &mut Clique,
    g: &Graph,
    delta: &DistMatrix,
    a_bound: f64,
    rng: &mut StdRng,
) -> ReductionOutcome {
    reduce_once_with(clique, g, delta, a_bound, rng, ExecPolicy::from_env())
}

/// [`reduce_once`] under an explicit [`ExecPolicy`] for the local kernels
/// (skeleton product, skeleton APSP), with kernel dispatch from `CC_KERNEL`.
pub fn reduce_once_with(
    clique: &mut Clique,
    g: &Graph,
    delta: &DistMatrix,
    a_bound: f64,
    rng: &mut StdRng,
    exec: ExecPolicy,
) -> ReductionOutcome {
    reduce_once_kernel(clique, g, delta, a_bound, rng, exec, KernelMode::from_env())
}

/// [`reduce_once_with`] under an explicit [`KernelMode`] for the engine's
/// min-plus dispatch. Outputs are bit-identical across modes.
#[allow(clippy::too_many_arguments)]
pub fn reduce_once_kernel(
    clique: &mut Clique,
    g: &Graph,
    delta: &DistMatrix,
    a_bound: f64,
    rng: &mut StdRng,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> ReductionOutcome {
    let n = g.n();
    clique.phase("factor-reduction", |clique| {
        // Step 1: hopset with k = √n.
        let sqrt_n = ((n as f64).sqrt().floor() as usize).max(1);
        let hs = hopset::build_hopset(clique, g, delta, sqrt_n);

        // Step 2: exact k-nearest on G ∪ H.
        let (h, k) = reduction_h_k(n, a_bound);
        let beta = hopset_beta_bound(a_bound, estimate_diameter(delta));
        let iterations = iterations_for_hops(h, beta);
        let rows = knearest::k_nearest_exact(clique, &hs.combined, k, h, iterations);

        // Step 3: skeleton from exact k-nearest sets (a = 1).
        let sk = build_skeleton_kernel(clique, g, &rows, rng, exec, kernel);

        // Step 4: APSP on the skeleton via a spanner with b ≈ √a
        // (Corollary 7.1), then extend.
        let b = (a_bound.sqrt().round() as usize).max(1);
        let (delta_gs, l) = small_graph_apsp_with(clique, &sk.graph, b, rng, exec);
        let estimate = extend_estimate(clique, &sk, &rows, &delta_gs);
        ReductionOutcome {
            estimate,
            bound: extension_bound(l, 1.0),
            h,
            k,
            iterations,
            skeleton_size: sk.size(),
        }
    })
}

/// The paper's guarantee for one reduction step: `15√a`.
pub fn reduction_bound(a: f64) -> f64 {
    15.0 * a.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators};
    use clique_sim::Bandwidth;
    use rand::SeedableRng;

    use crate::spanner::{bootstrap_k, spanner_apsp_estimate};

    #[test]
    fn reduction_improves_spanner_bootstrap() {
        for seed in [1u64, 5] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(70, 0.1, 1..=30, &mut rng);
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            let boot = spanner_apsp_estimate(&mut clique, &g, bootstrap_k(g.n()), &mut rng);
            let out = reduce_once(
                &mut clique,
                &g,
                &boot.estimate,
                boot.stretch_bound,
                &mut rng,
            );
            let exact = apsp::exact_apsp(&g);
            let stats = out.estimate.stretch_vs(&exact);
            assert!(
                stats.is_valid_approximation(out.bound),
                "seed={seed}: {stats}"
            );
            // The new guarantee must be within the Lemma 3.1 promise
            // whenever the promise is meaningful (15√a ≥ 7, always true).
            assert!(out.bound <= reduction_bound(boot.stretch_bound).max(out.bound));
        }
    }

    #[test]
    fn reduction_output_never_underestimates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_geometric(60, 0.35, 100, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let boot = spanner_apsp_estimate(&mut clique, &g, 2, &mut rng);
        let out = reduce_once(
            &mut clique,
            &g,
            &boot.estimate,
            boot.stretch_bound,
            &mut rng,
        );
        let exact = apsp::exact_apsp(&g);
        let stats = out.estimate.stretch_vs(&exact);
        assert_eq!(stats.underestimates, 0);
        assert_eq!(stats.missing, 0);
    }

    #[test]
    fn reduction_uses_constant_flavored_rounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp_connected(100, 0.08, 1..=20, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let boot = spanner_apsp_estimate(&mut clique, &g, bootstrap_k(g.n()), &mut rng);
        let before = clique.rounds();
        let out = reduce_once(
            &mut clique,
            &g,
            &boot.estimate,
            boot.stretch_bound,
            &mut rng,
        );
        let spent = clique.rounds() - before;
        // O(1)-flavored: a constant base (hopset, skeleton, broadcasts — the
        // broadcasts dominate at this small n where m/n is large) plus O(1)
        // per k-nearest iteration. The flatness *in n* is asserted by
        // smalldiam::tests::rounds_stay_modest_as_n_grows and experiment E1.
        assert!(
            spent <= 150 + 25 * out.iterations as u64,
            "rounds = {spent}, iterations = {}",
            out.iterations
        );
    }

    #[test]
    fn diameter_estimate_tracks_max_entry() {
        let mut m = DistMatrix::infinite(3);
        m.set(0, 1, 42);
        m.set(1, 2, 7);
        assert_eq!(estimate_diameter(&m), 42);
    }
}
