//! Ablations: alternative implementations of design choices, used to
//! cross-validate the main code paths and to quantify the tradeoffs
//! DESIGN.md calls out (experiment set A in EXPERIMENTS.md).
//!
//! * [`greedy_hitting_set`] — a deterministic greedy set-cover hitting set,
//!   vs. the paper's sampled one (Lemma 6.2). Greedy gives smaller sets but
//!   needs `Θ(|S|)` sequential clique rounds; the comparison quantifies the
//!   price of `O(1)`-round sampling.
//! * [`weight_scaling_clique_cap`] — the paper's literal `K_i` construction
//!   (a cap-weight edge between *every* pair, `Θ(n²)` edges per scale), vs.
//!   our hub-star substitution. Tests prove the two metrics sandwich each
//!   other exactly as the substitution argument claims.
//! * [`naive_skeleton_edges`] — direct enumeration of the Section 6.1
//!   triple rule, vs. the `X ⋆ Y` sparse-matmul construction. The two must
//!   agree **exactly**; this pins the x/y decomposition's correctness.

use std::collections::HashMap;

use cc_graph::graph::{Direction, Graph, GraphBuilder};
use cc_graph::{wadd, NodeId, Weight, INF};
use cc_matrix::filtered::FilteredMatrix;

use crate::scaling::ScaledGraphs;
use crate::skeleton::Skeleton;

/// Deterministic greedy hitting set: repeatedly picks the node contained in
/// the most not-yet-hit `Ñ_k` sets (ties by ID). Produces sets at most
/// `H(n) ≈ ln n` times larger than optimal — usually *smaller* than the
/// sampled set — but is inherently sequential (`Θ(|S|)` selection rounds in
/// the clique), which is why the paper samples instead.
pub fn greedy_hitting_set(tilde: &FilteredMatrix) -> Vec<NodeId> {
    let n = tilde.n();
    // membership[v] = the sets (rows) that contain v.
    let mut membership: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        for &(v, _) in tilde.row(u) {
            membership[v].push(u);
        }
    }
    let mut hit = vec![false; n]; // per row
    let mut chosen = Vec::new();
    let mut remaining = n;
    let mut gain: Vec<usize> = membership.iter().map(Vec::len).collect();
    while remaining > 0 {
        let best = (0..n)
            .max_by_key(|&v| (gain[v], std::cmp::Reverse(v)))
            .expect("n > 0");
        if gain[best] == 0 {
            // Rows left unhit have empty tilde sets; hit them with
            // themselves (mirrors the sampled fix-up).
            for (u, h) in hit.iter_mut().enumerate() {
                if !*h {
                    chosen.push(u);
                    *h = true;
                }
            }
            break;
        }
        chosen.push(best);
        for &row in &membership[best] {
            if !hit[row] {
                hit[row] = true;
                remaining -= 1;
                // Every member of this row loses one unit of gain.
                for &(v, _) in tilde.row(row) {
                    gain[v] = gain[v].saturating_sub(1);
                }
            }
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

/// The paper's literal `K_i`: every pair gets a cap-weight edge
/// (`Θ(n²)` edges per scale). Kept for cross-validation and the A2
/// ablation; the pipeline uses the sparse hub-star variant
/// ([`crate::scaling::weight_scaling`]).
pub fn weight_scaling_clique_cap(g: &Graph, delta_max: Weight, h: u64, eps: f64) -> ScaledGraphs {
    assert_eq!(
        g.direction(),
        Direction::Undirected,
        "scaling expects undirected graphs"
    );
    assert!(h >= 1 && eps > 0.0);
    let b_const = (2.0 / eps).ceil() as u64;
    let bh2 = b_const * h * h;
    let mut scales = 1usize;
    let mut bound = bh2;
    while bound <= delta_max.min(INF - 1) {
        scales += 1;
        bound = bound.saturating_mul(2);
    }
    let n = g.n();
    let mut graphs = Vec::with_capacity(scales);
    for i in 0..scales {
        let x: Weight = 1 << i;
        let cap = x.saturating_mul(bh2);
        let mut b = GraphBuilder::undirected(n);
        for (u, v, w) in g.edges() {
            let rounded = w.div_ceil(x).saturating_mul(x);
            b.add_edge(u, v, rounded.min(cap) / x);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v, bh2);
            }
        }
        graphs.push(b.build());
    }
    ScaledGraphs {
        graphs,
        b_const,
        h,
        eps,
    }
}

/// Direct (non-matmul) skeleton edge construction: enumerates every triple
/// `(u, t, v)` with `t ∈ Ñ_k(u)` and (`{t,v} ∈ E` or `t = v`), and takes
/// the minimum `δ(c(u),u) + δ(u,t) + w_tv + δ(v,c(v))` per center pair.
/// Must match `Skeleton::graph` exactly.
pub fn naive_skeleton_edges(g: &Graph, tilde: &FilteredMatrix, skeleton: &Skeleton) -> Graph {
    let n = g.n();
    let mut best: HashMap<(usize, usize), Weight> = HashMap::new();
    let mut relax = |a: usize, b: usize, w: Weight| {
        if a == b || w >= INF {
            return;
        }
        let key = (a.min(b), a.max(b));
        let e = best.entry(key).or_insert(INF);
        if w < *e {
            *e = w;
        }
    };
    for u in 0..n {
        let cu = skeleton.index_of[skeleton.assignment[u]].expect("center indexed");
        let du = skeleton.delta_to_center[u];
        for &(t, d_ut) in tilde.row(u) {
            let prefix = wadd(du, d_ut);
            // t = v case.
            let cv = skeleton.index_of[skeleton.assignment[t]].expect("center indexed");
            relax(cu, cv, wadd(prefix, skeleton.delta_to_center[t]));
            // {t, v} ∈ E case.
            for (v, w_tv) in g.neighbors(t) {
                let cv = skeleton.index_of[skeleton.assignment[v]].expect("center indexed");
                relax(
                    cu,
                    cv,
                    wadd(wadd(prefix, w_tv), skeleton.delta_to_center[v]),
                );
            }
        }
    }
    let mut b = GraphBuilder::undirected(skeleton.size());
    for ((a, bb), w) in best {
        b.add_edge(a, bb, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::weight_scaling;
    use crate::skeleton::{build_skeleton, hitting_set};
    use cc_graph::{apsp, generators, sssp};
    use clique_sim::{Bandwidth, Clique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_tilde(g: &Graph, k: usize) -> FilteredMatrix {
        let rows: Vec<Vec<(NodeId, Weight)>> =
            (0..g.n()).map(|u| sssp::k_nearest(g, u, k)).collect();
        FilteredMatrix::from_rows(g.n(), k, rows)
    }

    #[test]
    fn greedy_hitting_set_hits_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp_connected(120, 0.06, 1..=20, &mut rng);
        let tilde = exact_tilde(&g, 10);
        let s = greedy_hitting_set(&tilde);
        let in_s: std::collections::HashSet<_> = s.iter().copied().collect();
        for u in 0..g.n() {
            assert!(
                tilde.row(u).iter().any(|&(v, _)| in_s.contains(&v)),
                "row {u} unhit"
            );
        }
    }

    #[test]
    fn greedy_is_no_larger_than_sampled_on_average() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp_connected(200, 0.05, 1..=10, &mut rng);
        let tilde = exact_tilde(&g, 12);
        let greedy = greedy_hitting_set(&tilde).len();
        let sampled = hitting_set(&tilde, &mut rng).len();
        assert!(
            greedy <= sampled + 2,
            "greedy {greedy} unexpectedly larger than sampled {sampled}"
        );
    }

    #[test]
    fn clique_cap_and_hub_star_metrics_sandwich() {
        // For every scale i and pair (u,v):
        //   d_clique = min(d_rounded, cap')   with cap' ≤ 2·B·h²,
        //   d_clique ≤ d_star ≤ min(d_rounded, 2·B·h²).
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::wide_weight_gnp(30, 0.2, 10, &mut rng);
        let dmax = 1 << 14;
        let (h, eps) = (3u64, 0.5);
        let star = weight_scaling(&g, dmax, h, eps);
        let cap = weight_scaling_clique_cap(&g, dmax, h, eps);
        assert_eq!(star.len(), cap.len());
        let bh2 = star.b_const * h * h;
        for i in 0..star.len() {
            let d_star = apsp::exact_apsp(&star.graphs[i]);
            let d_cap = apsp::exact_apsp(&cap.graphs[i]);
            for u in 0..g.n() {
                for v in 0..g.n() {
                    if u == v {
                        continue;
                    }
                    assert!(
                        d_cap.get(u, v) <= d_star.get(u, v),
                        "scale {i} ({u},{v}): clique-cap above star"
                    );
                    assert!(
                        d_star.get(u, v) <= 2 * bh2,
                        "scale {i} ({u},{v}): star diameter bound violated"
                    );
                }
            }
        }
    }

    #[test]
    fn clique_cap_edge_count_is_quadratic_star_is_linear() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp_connected(40, 0.1, 1..=100, &mut rng);
        let star = weight_scaling(&g, 1000, 2, 0.5);
        let cap = weight_scaling_clique_cap(&g, 1000, 2, 0.5);
        let n = g.n();
        assert_eq!(cap.graphs[0].m(), n * (n - 1) / 2); // complete
        assert!(star.graphs[0].m() <= g.m() + n);
    }

    #[test]
    fn naive_skeleton_edges_match_matmul_construction() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(60, 0.1, 1..=25, &mut rng);
            let tilde = exact_tilde(&g, 7);
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
            let naive = naive_skeleton_edges(&g, &tilde, &sk);
            assert_eq!(
                naive, sk.graph,
                "seed={seed}: matmul and naive skeleton constructions disagree"
            );
        }
    }

    #[test]
    fn greedy_hitting_set_handles_selfonly_rows() {
        // Every row contains only the node itself: hitting set = everyone.
        let rows: Vec<Vec<(NodeId, Weight)>> = (0..6).map(|u| vec![(u, 0)]).collect();
        let tilde = FilteredMatrix::from_rows(6, 1, rows);
        let s = greedy_hitting_set(&tilde);
        assert_eq!(s.len(), 6);
    }
}
