//! The full APSP pipelines (Sections 8.2–8.4): Theorem 8.1
//! (`Congested-Clique\[log⁴n\]`, `7³+ε`), Theorem 1.1 (standard model,
//! `7⁴+ε`), and Theorem 1.2 (the `O(t)`-round / `O(log^(2^-t) n)`
//! tradeoff).
//!
//! Theorem 8.1 composes every building block:
//!
//! 1. bootstrap an `O(log n)`-approximation δ₀ (Corollary 7.2);
//! 2. build a `√n`-nearest β-hopset from δ₀ and work on `C = G ∪ H`
//!    (Lemma 3.2);
//! 3. weight-scale `C` with `h = β` into `O(log n)` small-diameter graphs
//!    (Lemma 8.1);
//! 4. run Theorem 7.1 on every scale **in parallel** (the `log⁴n` bandwidth
//!    pays for `log n` parallel `log³n`-bandwidth instances — in the
//!    simulator, [`clique_sim::Clique::parallel`] charges any bandwidth
//!    overcommit honestly);
//! 5. combine the per-scale estimates into η (Lemma 8.1), a good
//!    approximation for every pair within β hops of `C` — in particular for
//!    each node's `√n`-nearest sets;
//! 6. build a skeleton graph from η's approximate k-nearest sets (the *full*
//!    Lemma 6.1, `a > 1`), broadcast it, solve it exactly, and extend.
//!
//! Theorem 1.1 prepends a bandwidth-reduction step: compute exact k₀-nearest
//! sets directly (Lemma 5.2 on `G` — every k-nearest node is within `k`
//! hops), reduce to a skeleton of `n/polylog(n)` nodes, and *simulate* the
//! Theorem 8.1 algorithm for that skeleton inside the standard-bandwidth
//! clique (Lemma 2.1 makes the simulation free; the simulator charges it
//! from measured loads).

use cc_graph::graph::Graph;
use cc_graph::{apsp, DistMatrix};
use cc_par::ExecPolicy;
use clique_sim::{Bandwidth, Clique};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::estimate::ApspResult;
use crate::params::{self, hopset_beta_bound};
use crate::reduction::estimate_diameter;
use crate::scaling::{combine, combined_bound, weight_scaling};
use crate::skeleton::{build_skeleton_kernel, extend_estimate, extension_bound};
use crate::smalldiam::{small_diameter_apsp, SmallDiamConfig};
use crate::spanner::{bootstrap_k, spanner_apsp_estimate_with};
use crate::{hopset, knearest};
use cc_matrix::engine::KernelMode;
use cc_matrix::filtered::{select_k_smallest, FilteredMatrix};

/// Configuration for the APSP pipelines.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The ε of the final `7⁴+ε` / `7³+ε` guarantees (drives the weight
    /// scaling's rounding slack).
    pub eps: f64,
    /// RNG seed (hitting sets, spanner sampling); runs are deterministic per
    /// seed.
    pub seed: u64,
    /// Reduction policy inside the per-scale Theorem 7.1 instances:
    /// `None` = Theorem 1.1 behaviour; `Some(t)` = the Theorem 1.2
    /// round-limited variant (Lemmas 8.2/8.3).
    pub max_reductions: Option<usize>,
    /// Override for Theorem 1.1's bandwidth-reduction parameter `k₀`
    /// (default: [`params::theorem_1_1_k0`]).
    pub k0: Option<usize>,
    /// Local execution policy for the hot kernels (per-scale Theorem 7.1
    /// instances, per-source Dijkstras, row-blocked products). Affects
    /// wall-clock time only: every output — estimate, bounds, rounds,
    /// ledger — is bit-identical across policies. Defaults to the
    /// `CC_THREADS` environment default ([`ExecPolicy::from_env`]).
    pub exec: ExecPolicy,
    /// Min-plus kernel dispatch for every engine-backed product on the hot
    /// path (skeleton matmuls, per-scale instances). Like [`Self::exec`]
    /// this is wall-clock only — estimates, bounds, rounds, and ledger are
    /// bit-identical across modes. Defaults to the `CC_KERNEL` environment
    /// default ([`KernelMode::from_env`]).
    pub kernel: KernelMode,
    /// Which oracle backend the run's servable artifact should use (the
    /// `--oracle` / `CC_ORACLE` axis). The pipeline's *internal* estimates
    /// are always dense; this selects what snapshot-producing callers
    /// package for serving: the dense matrix itself, or a sublinear
    /// [`crate::landmark::LandmarkSketch`] built straight from the graph.
    /// Defaults to the `CC_ORACLE` environment default
    /// ([`crate::oracle::OracleKind::from_env`]).
    pub oracle: crate::oracle::OracleKind,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            eps: 0.1,
            seed: 0xC11C,
            max_reductions: None,
            k0: None,
            exec: ExecPolicy::from_env(),
            kernel: KernelMode::from_env(),
            oracle: crate::oracle::OracleKind::from_env(),
        }
    }
}

/// Theorem 8.1: APSP approximation with large bandwidth. Run it on a clique
/// whose bandwidth is `Congested-Clique\[log⁴n\]` for the paper's setting; on
/// narrower cliques the parallel step simply charges the overcommit.
///
/// Returns `(estimate, stretch bound)`; the bound is `7³(1+ε)²`-flavored,
/// computed from the components' actual guarantees.
pub fn apsp_large_bandwidth(
    clique: &mut Clique,
    g: &Graph,
    cfg: &PipelineConfig,
    rng: &mut StdRng,
) -> (DistMatrix, f64) {
    let n = g.n();
    clique.phase("theorem-8.1", |clique| {
        if n <= 8 {
            // Degenerate clique: broadcast everything (still O(1) rounds at
            // this size) and solve exactly.
            clique.broadcast_volume("broadcast-tiny-graph", 3 * g.m());
            return (apsp::exact_apsp_with(g, cfg.exec), 1.0);
        }
        // Step 1: bootstrap.
        let boot = spanner_apsp_estimate_with(clique, g, bootstrap_k(n), rng, cfg.exec);
        let delta0 = boot.estimate;
        let a0 = boot.stretch_bound;

        // Step 2: hopset; continue on C = G ∪ H.
        let sqrt_n = ((n as f64).sqrt().floor() as usize).max(2);
        let hs = hopset::build_hopset(clique, g, &delta0, sqrt_n);
        let combined = hs.combined;
        let diam0 = estimate_diameter(&delta0);
        let beta = hopset_beta_bound(a0, diam0) as u64;

        // Step 3: weight scaling with h = β (δ₀ is an a₀ ≤ β approximation).
        let scaled = weight_scaling(&combined, diam0, beta, cfg.eps);

        // Step 4: Theorem 7.1 on each scale, in parallel. Each instance gets
        // an equal share of the clique's actual bandwidth (when the clique is
        // the paper's Congested-Clique[log⁴n] and there are Θ(log n) scales,
        // the share is exactly the log³n-bit budget of Theorem 7.1's second
        // bullet); any overcommit beyond the physical links is charged by
        // the parallel primitive.
        let sd_cfg = SmallDiamConfig {
            forced_reductions: cfg.max_reductions,
            wide_bandwidth: true,
            exec: cfg.exec,
            kernel: cfg.kernel,
        };
        let scale_count = scaled.len();
        let available = clique.bandwidth().words_per_message();
        let per_instance = Bandwidth::words((available / scale_count.max(1)).max(1));
        let mut seeds: Vec<u64> = Vec::new();
        for i in 0..scale_count {
            seeds.push(
                cfg.seed
                    .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1)),
            );
        }
        // The instances are also *locally* independent, so `cfg.exec` runs
        // them on worker threads; the sub-ledger merge in scale order keeps
        // the overcommit charging identical to a sequential run.
        let results = clique.parallel_exec(
            "scaled-instances",
            scale_count,
            per_instance,
            cfg.exec,
            |sub, i| {
                let mut inst_rng = StdRng::seed_from_u64(seeds[i]);
                small_diameter_apsp(sub, &scaled.graphs[i], &sd_cfg, &mut inst_rng)
            },
        );
        let l_scale = results.iter().map(|(_, b)| *b).fold(1.0f64, f64::max);
        let delta_gis: Vec<DistMatrix> = results.into_iter().map(|(m, _)| m).collect();

        // Step 5: combine into η; valid (1+ε)·l for ≤β-hop pairs of C —
        // which covers each node's √n-nearest sets by the hopset guarantee.
        let eta = combine(&scaled, &delta_gis, &delta0);
        let a_eta = combined_bound(l_scale, cfg.eps);

        // Step 6: skeleton from η's approximate √n-nearest sets (full
        // Lemma 6.1 with a = a_eta), exact APSP on the broadcast skeleton.
        let tilde_rows: Vec<Vec<(usize, u64)>> = cfg.exec.map_collect(n, |u| {
            select_k_smallest(eta.row(u).iter().copied().enumerate(), sqrt_n)
        });
        let tilde = FilteredMatrix::from_rows(n, sqrt_n, tilde_rows);
        let sk = build_skeleton_kernel(clique, &combined, &tilde, rng, cfg.exec, cfg.kernel);
        clique.broadcast_volume("broadcast-final-skeleton", 3 * sk.graph.m());
        let delta_gs = apsp::exact_apsp_with(&sk.graph, cfg.exec);
        let eta_final = extend_estimate(clique, &sk, &tilde, &delta_gs);
        (eta_final, extension_bound(1.0, a_eta))
    })
}

/// Theorem 1.1: `(7⁴+ε)`-approximate APSP in the standard Congested Clique.
/// Returns `(estimate, stretch bound)`.
pub fn theorem_1_1(
    clique: &mut Clique,
    g: &Graph,
    cfg: &PipelineConfig,
    rng: &mut StdRng,
) -> (DistMatrix, f64) {
    let n = g.n();
    clique.phase("theorem-1.1", |clique| {
        if n <= 8 {
            clique.broadcast_volume("broadcast-tiny-graph", 3 * g.m());
            return (apsp::exact_apsp_with(g, cfg.exec), 1.0);
        }
        // Step 1: exact k₀-nearest sets directly on G (Lemma 5.2; every
        // k-nearest node is within k hops, so h^i ≥ k₀ suffices).
        let k0 = cfg
            .k0
            .unwrap_or_else(|| params::theorem_1_1_k0(n))
            .clamp(2, n);
        let (h, i) = params::direct_knearest_h_i(n, k0);
        let rows = knearest::k_nearest_exact(clique, g, k0, h, i);

        // Step 2: bandwidth-reduction skeleton (Lemma 3.4, a = 1).
        let sk = build_skeleton_kernel(clique, g, &rows, rng, cfg.exec, cfg.kernel);
        let ns = sk.size();

        // Step 3: simulate the Theorem 8.1 algorithm for the skeleton graph
        // inside this clique (Lemma 2.1). The child clique gets the widest
        // bandwidth the host can simulate at no extra cost:
        // f = ⌊n / ns⌋ words (≈ the paper's log⁴n budget when
        // ns = n/polylog n). Every child round then costs the host
        // `rounds_for_load(ns·f)` rounds.
        let (delta_gs, l) = if ns <= 8 {
            clique.broadcast_volume("broadcast-tiny-skeleton", 3 * sk.graph.m());
            (apsp::exact_apsp_with(&sk.graph, cfg.exec), 1.0)
        } else {
            let f_child = (n / ns).max(1);
            let mut child = Clique::new(ns, Bandwidth::words(f_child));
            let out = apsp_large_bandwidth(&mut child, &sk.graph, cfg, rng);
            let per_round = clique.rounds_for_load(ns * f_child).max(1);
            clique.charge(
                "simulate-skeleton-clique (Lemma 2.1)",
                child.rounds().saturating_mul(per_round),
            );
            out
        };

        // Step 4: extend back to G: 7·l with l = 7³(1+ε)²-flavored.
        let eta = extend_estimate(clique, &sk, &rows, &delta_gs);
        (eta, extension_bound(l, 1.0))
    })
}

/// Theorem 1.1 as a one-call API: runs on a fresh standard-bandwidth clique
/// and returns the packaged [`ApspResult`].
pub fn approximate_apsp(g: &Graph, cfg: &PipelineConfig) -> ApspResult {
    let mut sp = cc_obs::span("pipeline");
    sp.attr("n", g.n() as f64);
    let mut clique = Clique::new(g.n().max(1), Bandwidth::standard(g.n().max(1)));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (estimate, bound) = theorem_1_1(&mut clique, g, cfg, &mut rng);
    sp.attr("rounds", clique.rounds() as f64);
    ApspResult::from_run(estimate, bound, &clique)
}

/// Theorem 1.2: the round/approximation tradeoff — the Theorem 1.1 pipeline
/// with the per-scale instances limited to `t` factor reductions
/// (Lemmas 8.2/8.3). Larger `t` buys a better approximation for `O(t)`
/// rounds.
///
/// The paper's bound at parameter `t` is `O(log^(2^-t) n)`
/// ([`params::tradeoff_bound`]); the returned
/// [`ApspResult::stretch_bound`] is the run's actual composed guarantee.
pub fn apsp_tradeoff(g: &Graph, t: usize, cfg: &PipelineConfig) -> ApspResult {
    let cfg = PipelineConfig {
        max_reductions: Some(t),
        ..cfg.clone()
    };
    approximate_apsp(g, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use clique_sim::Bandwidth;

    #[test]
    fn theorem_8_1_bound_holds() {
        for seed in [2u64, 11] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(60, 0.12, 1..=40, &mut rng);
            let mut clique = Clique::new(g.n(), Bandwidth::polylog(4, g.n()));
            let cfg = PipelineConfig::default();
            let (est, bound) = apsp_large_bandwidth(&mut clique, &g, &cfg, &mut rng);
            assert!(
                bound <= 343.0 * (1.0 + cfg.eps).powi(3) + 1e-6,
                "bound = {bound}"
            );
            let exact = apsp::exact_apsp(&g);
            let stats = est.stretch_vs(&exact);
            assert!(stats.is_valid_approximation(bound), "seed={seed}: {stats}");
        }
    }

    #[test]
    fn theorem_1_1_bound_holds() {
        for seed in [3u64, 7] {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(80, 0.09, 1..=30, &mut rng);
            let cfg = PipelineConfig {
                seed,
                ..Default::default()
            };
            let result = approximate_apsp(&g, &cfg);
            assert!(
                result.stretch_bound <= 2401.0 * (1.0 + cfg.eps).powi(3) + 1e-6,
                "bound = {}",
                result.stretch_bound
            );
            let exact = apsp::exact_apsp(&g);
            let stats = result.estimate.stretch_vs(&exact);
            assert!(
                stats.is_valid_approximation(result.stretch_bound),
                "seed={seed}: {stats}"
            );
        }
    }

    #[test]
    fn theorem_1_1_works_on_wide_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::wide_weight_gnp(64, 0.12, 14, &mut rng);
        let result = approximate_apsp(
            &g,
            &PipelineConfig {
                seed: 5,
                ..Default::default()
            },
        );
        let exact = apsp::exact_apsp(&g);
        let stats = result.estimate.stretch_vs(&exact);
        assert!(
            stats.is_valid_approximation(result.stretch_bound),
            "{stats}"
        );
    }

    #[test]
    fn tradeoff_larger_t_never_worse_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(50, 0.15, 1..=20, &mut rng);
        let cfg = PipelineConfig {
            seed: 9,
            ..Default::default()
        };
        let exact = apsp::exact_apsp(&g);
        for t in [1usize, 2] {
            let result = apsp_tradeoff(&g, t, &cfg);
            let stats = result.estimate.stretch_vs(&exact);
            assert!(
                stats.is_valid_approximation(result.stretch_bound),
                "t={t}: {stats}"
            );
        }
    }

    #[test]
    fn tiny_graph_fast_path_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::complete_graph(5, 1..=9, &mut rng);
        let result = approximate_apsp(&g, &PipelineConfig::default());
        assert_eq!(result.estimate, apsp::exact_apsp(&g));
        assert_eq!(result.stretch_bound, 1.0);
    }

    #[test]
    fn disconnected_graphs_keep_inf_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = cc_graph::GraphBuilder::undirected(40);
        // Two disjoint G(20, .) blobs.
        let g1 = generators::gnp_connected(20, 0.2, 1..=9, &mut rng);
        let g2 = generators::gnp_connected(20, 0.2, 1..=9, &mut rng);
        for (u, v, w) in g1.edges() {
            b.add_edge(u, v, w);
        }
        for (u, v, w) in g2.edges() {
            b.add_edge(u + 20, v + 20, w);
        }
        let g = b.build();
        let result = approximate_apsp(&g, &PipelineConfig::default());
        let exact = apsp::exact_apsp(&g);
        let stats = result.estimate.stretch_vs(&exact);
        assert!(
            stats.is_valid_approximation(result.stretch_bound),
            "{stats}"
        );
        // Cross-blob pairs must stay infinite (no phantom paths).
        assert!(result.estimate.get(0, 25) >= cc_graph::INF);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp_connected(40, 0.15, 1..=15, &mut rng);
        let cfg = PipelineConfig {
            seed: 77,
            ..Default::default()
        };
        let r1 = approximate_apsp(&g, &cfg);
        let r2 = approximate_apsp(&g, &cfg);
        assert_eq!(r1.estimate, r2.estimate);
        assert_eq!(r1.rounds, r2.rounds);
    }
}
