//! The paper's parameter formulas, with documented finite-n clamps.
//!
//! The paper's parameter choices are asymptotic; at feasible `n` (≤ a few
//! thousand, `log₂ n ≈ 10`) several of them degenerate (`h = a^(1/4)/2 < 1`,
//! `k = log⁴ n > n`, the reduction loop's profitability threshold
//! `15√a < a ⇔ a > 225` never triggers). Every formula used by the pipeline
//! lives here with its clamp, so EXPERIMENTS.md can point at a single place
//! when explaining the finite-n regime.

use cc_graph::{log2_ceil, Weight};

/// `⌈a·ln d⌉`-based hop bound of Lemma 4.2: a path to any `√n`-nearest node
/// needs at most `i* ≤ ⌈a ln d⌉ + 1` two-hop segments plus one closing edge,
/// so `β ≤ 2(⌈a ln d⌉ + 1) + 1`.
pub fn hopset_beta_bound(a: f64, diameter: Weight) -> usize {
    let d = diameter.max(2) as f64;
    let segments = (a.max(1.0) * d.ln()).ceil() as usize + 1;
    2 * segments + 1
}

/// Smallest `i ≥ 1` with `h^i ≥ beta`.
pub fn iterations_for_hops(h: usize, beta: usize) -> usize {
    let h = h.max(2);
    let mut i = 1;
    let mut reach = h;
    while reach < beta {
        reach = reach.saturating_mul(h);
        i += 1;
    }
    i
}

/// Lemma 3.1's inner parameters: `h = max(2, round(a^(1/4)/2))` and
/// `k = clamp(n^(1/h), 2, ⌊√n⌋)`.
///
/// Paper: `h = a^(1/4)/2`, `k = n^(1/h)`. Clamps: `h ≥ 2` (the bins
/// algorithm needs at least two hops per level to make progress), and
/// `k ≤ √n` because the hopset only serves the `√n`-nearest sets.
pub fn reduction_h_k(n: usize, a: f64) -> (usize, usize) {
    let h = ((a.max(1.0).powf(0.25) / 2.0).round() as usize).max(2);
    let sqrt_n = (n as f64).sqrt().floor() as usize;
    let k = ((n as f64).powf(1.0 / h as f64).floor() as usize).clamp(2, sqrt_n.max(2));
    (h, k)
}

/// The reduction loop stops improving once `15√a ≥ a`, i.e. at `a ≤ 225`.
pub const REDUCTION_PROFITABLE_ABOVE: f64 = 225.0;

/// Theorem 1.1's bandwidth-reduction skeleton parameter: the paper sets
/// `k₀ = log⁴ n`; we clamp to `⌊√n⌋` (above which the k-nearest step's
/// `k ∈ O(n^(1/h))` precondition is unsatisfiable at finite n).
pub fn theorem_1_1_k0(n: usize) -> usize {
    let log_n = log2_ceil(n) as usize;
    let sqrt_n = ((n as f64).sqrt().floor() as usize).max(2);
    log_n.pow(4).clamp(2, sqrt_n)
}

/// `(h, i)` for computing exact `k`-nearest sets directly on `G` (Theorem
/// 1.1, first step): needs `k ≤ n^(1/h)` and `h^i ≥ k` (every `k`-nearest
/// node is within `k` hops).
pub fn direct_knearest_h_i(n: usize, k: usize) -> (usize, usize) {
    let k = k.max(2);
    // Largest h with n^(1/h) ≥ k, i.e. h ≤ ln n / ln k.
    let h = (((n as f64).ln() / (k as f64).ln()).floor() as usize).max(2);
    let i = iterations_for_hops(h, k);
    (h, i)
}

/// Theorem 1.2's approximation bound at finite n: `log₂(n)^(2^-t)`, the
/// bound after `t` applications of Lemma 3.1 starting from an `O(log n)`
/// bootstrap. Reported next to measured stretch in experiment E2.
pub fn tradeoff_bound(n: usize, t: usize) -> f64 {
    let log_n = log2_ceil(n) as f64;
    log_n.powf(0.5f64.powi(t as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_bound_grows_with_a_and_d() {
        assert!(hopset_beta_bound(2.0, 100) < hopset_beta_bound(4.0, 100));
        assert!(hopset_beta_bound(2.0, 100) < hopset_beta_bound(2.0, 10_000));
        assert!(hopset_beta_bound(1.0, 2) >= 3);
    }

    #[test]
    fn iterations_cover_beta() {
        for h in [2usize, 3, 5] {
            for beta in [1usize, 2, 7, 30, 1000] {
                let i = iterations_for_hops(h, beta);
                assert!(h.pow(i as u32) >= beta, "h={h} beta={beta} i={i}");
                if i > 1 {
                    assert!(h.pow((i - 1) as u32) < beta, "i not minimal");
                }
            }
        }
    }

    #[test]
    fn reduction_params_clamped() {
        let (h, k) = reduction_h_k(1024, 10.0);
        assert_eq!(h, 2); // 10^(1/4)/2 ≈ 0.9 → clamped to 2
        assert!(k <= 32);
        assert!(k >= 2);
        let (h_big, _) = reduction_h_k(1024, 10_000.0);
        assert_eq!(h_big, 5); // 10000^(1/4)/2 = 5
    }

    #[test]
    fn theorem_1_1_k0_clamps_to_sqrt_n() {
        // log⁴(1024) = 10⁴ ≫ √1024 = 32.
        assert_eq!(theorem_1_1_k0(1024), 32);
        assert!(theorem_1_1_k0(64) <= 8);
    }

    #[test]
    fn direct_knearest_satisfies_preconditions() {
        for n in [64usize, 256, 1024] {
            let k = theorem_1_1_k0(n);
            let (h, i) = direct_knearest_h_i(n, k);
            assert!(
                (n as f64).powf(1.0 / h as f64) + 1e-9 >= k as f64,
                "n={n} k={k} h={h}"
            );
            assert!(h.pow(i as u32) >= k);
        }
    }

    #[test]
    fn tradeoff_bound_decreases_in_t() {
        let n = 512;
        for t in 0..5 {
            assert!(tradeoff_bound(n, t) > tradeoff_bound(n, t + 1));
        }
        assert!(tradeoff_bound(n, 10) < 1.3); // approaches 1
    }
}
