//! Handling zero edge weights (Section 2.2 and Appendix A, Theorem 2.1).
//!
//! Any algorithm `A` for positive integer weights extends to nonnegative
//! weights with `+O(1)` rounds:
//!
//! 1. find the connected components of the zero-weight subgraph ("clusters"
//!    of nodes at distance 0), via an MST — the paper cites Nowicki's
//!    `O(1)`-round Congested Clique MST \[Now21\]; we compute Borůvka and
//!    charge the citation;
//! 2. pick the minimum-ID node of each cluster as its **leader**;
//! 3. build the **compressed graph** over leaders, with the minimum-weight
//!    edge between each pair of clusters (strictly positive by
//!    construction);
//! 4. run `A` on the compressed graph;
//! 5. every node reads its distances off its leader's row.

use cc_graph::graph::{Direction, Graph, GraphBuilder};
use cc_graph::{mst, unionfind::UnionFind, DistMatrix, NodeId, Weight, INF};
use clique_sim::{Clique, Msg};

/// Rounds charged for the MST step, per the cited \[Now21\] O(1)-round MST.
pub const MST_ROUNDS: u64 = 2;

/// The cluster structure of the zero-weight subgraph.
#[derive(Debug, Clone)]
pub struct ZeroClusters {
    /// Leader (minimum-ID member) of each node's cluster.
    pub leader_of: Vec<NodeId>,
    /// The leaders, sorted; index = compressed-graph node.
    pub leaders: Vec<NodeId>,
    /// Maps a leader to its compressed-graph index.
    pub index_of_leader: Vec<Option<usize>>,
    /// The compressed graph over the leaders (positive weights).
    pub compressed: Graph,
}

/// Theorem 2.1: wraps a positive-weights APSP algorithm `inner` so it
/// accepts nonnegative weights. `inner` receives a clique sized to the
/// compressed graph and must return `(estimate, stretch bound)`.
///
/// If `g` already has positive weights, `inner` runs directly on `g`.
pub fn apsp_with_zero_weights(
    clique: &mut Clique,
    g: &Graph,
    inner: impl FnOnce(&mut Clique, &Graph) -> (DistMatrix, f64),
) -> (DistMatrix, f64) {
    assert_eq!(
        g.direction(),
        Direction::Undirected,
        "Theorem 2.1 is for undirected graphs"
    );
    if g.has_positive_weights() {
        return inner(clique, g);
    }
    let n = g.n();
    let clusters = clique.phase("zero-weight-reduction", |clique| {
        // Step 1: MST; every node learns it (Appendix A relies on the
        // [Now21] algorithm ending with every node knowing the whole MST).
        let forest = mst::boruvka(g);
        clique.charge("mst (cited [Now21] O(1))", MST_ROUNDS);
        clique.broadcast_volume("broadcast-mst", 3 * forest.edges.len());
        // Zero clusters from the MST's zero-weight edges (local): an MST
        // contains a spanning forest of the zero-weight subgraph, because
        // zero edges are always safe to add first.
        let mut uf = UnionFind::new(n);
        for &(u, v, w) in &forest.edges {
            if w == 0 {
                uf.union(u, v);
            }
        }
        // Step 2: leaders = min-ID member per cluster (local).
        let mut leader_of = vec![usize::MAX; n];
        for v in 0..n {
            let r = uf.find(v);
            if v < leader_of[r] {
                leader_of[r] = v;
            }
        }
        let leader_of: Vec<NodeId> = (0..n).map(|v| leader_of[uf.find(v)]).collect();
        let mut leaders: Vec<NodeId> = leader_of.clone();
        leaders.sort_unstable();
        leaders.dedup();
        let mut index_of_leader: Vec<Option<usize>> = vec![None; n];
        for (i, &s) in leaders.iter().enumerate() {
            index_of_leader[s] = Some(i);
        }

        // Step 3: compressed edges. Each node v sends, to each leader t, the
        // minimum weight of an edge from v into t's cluster (one message per
        // leader, as in Appendix A).
        let mut msgs: Vec<Msg<(u64, u64)>> = Vec::new();
        for v in 0..n {
            let mut best: std::collections::HashMap<NodeId, Weight> =
                std::collections::HashMap::new();
            for (u, w) in g.neighbors(v) {
                if w == 0 {
                    continue; // intra-cluster
                }
                let t = leader_of[u];
                let e = best.entry(t).or_insert(INF);
                if w < *e {
                    *e = w;
                }
            }
            for (t, w) in best {
                if t != leader_of[v] {
                    msgs.push(Msg::new(v, t, (leader_of[v] as u64, w)));
                }
            }
        }
        let inboxes = clique.route("compressed-edges", msgs);
        let mut b = GraphBuilder::undirected(leaders.len());
        for (t, inbox) in inboxes.iter().enumerate() {
            let Some(it) = index_of_leader[t] else {
                continue;
            };
            for m in inbox {
                let (s, w) = m.payload;
                if let Some(is) = index_of_leader[s as usize] {
                    b.add_edge(it, is, w);
                }
            }
        }
        ZeroClusters {
            leader_of,
            index_of_leader,
            compressed: b.build(),
            leaders,
        }
    });

    // Step 4: run the inner algorithm on the compressed graph. Simulating a
    // ≤n-node clique inside this one is free round-for-round.
    let mut child = Clique::new(clusters.compressed.n().max(1), clique.bandwidth());
    let (delta, bound) = inner(&mut child, &clusters.compressed);
    clique.charge("inner-algorithm-on-compressed", child.rounds());

    // Step 5: leaders distribute their rows; every node reads its cluster's
    // row. Each node receives |leaders| words.
    clique.phase("zero-weight-expand", |clique| {
        let recv = vec![clusters.leaders.len(); n];
        let mut send = vec![0usize; n];
        for &s in &clusters.leaders {
            // Each leader serves its members.
            let members = clusters.leader_of.iter().filter(|&&l| l == s).count();
            send[s] = members * clusters.leaders.len();
        }
        clique.charge_route_by_loads("distribute-leader-rows", &send, &recv);
        let mut eta = DistMatrix::infinite(n);
        for u in 0..n {
            let iu = clusters.index_of_leader[clusters.leader_of[u]].expect("leader indexed");
            for v in 0..n {
                if u == v {
                    continue;
                }
                let iv = clusters.index_of_leader[clusters.leader_of[v]].expect("leader indexed");
                let d = if iu == iv { 0 } else { delta.get(iu, iv) };
                eta.set(u, v, d);
            }
        }
        (eta, bound)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators};
    use clique_sim::Bandwidth;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A graph with zero-weight clusters: clusters of `size` nodes linked by
    /// zero edges internally, positive edges across.
    fn clustered_graph(clusters: usize, size: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = clusters * size;
        let mut b = GraphBuilder::undirected(n);
        for c in 0..clusters {
            let base = c * size;
            for i in 1..size {
                b.add_edge(base, base + i, 0);
            }
        }
        // Random positive inter-cluster edges + a connecting cycle.
        for c in 0..clusters {
            let next = (c + 1) % clusters;
            b.add_edge(
                c * size + rng.gen_range(0..size),
                next * size,
                rng.gen_range(1..20),
            );
        }
        for _ in 0..clusters * 2 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u / size != v / size {
                b.add_edge(u, v, rng.gen_range(1..20));
            }
        }
        b.build()
    }

    fn exact_inner(_c: &mut Clique, g: &Graph) -> (DistMatrix, f64) {
        (apsp::exact_apsp(g), 1.0)
    }

    #[test]
    fn zero_weight_reduction_is_exact_with_exact_inner() {
        for seed in 0..4 {
            let g = clustered_graph(5, 4, seed);
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            let (est, _) = apsp_with_zero_weights(&mut clique, &g, exact_inner);
            assert_eq!(est, apsp::exact_apsp(&g), "seed={seed}");
        }
    }

    #[test]
    fn compressed_graph_has_positive_weights() {
        let g = clustered_graph(4, 3, 9);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        apsp_with_zero_weights(&mut clique, &g, |_c, compressed| {
            assert!(compressed.has_positive_weights());
            assert_eq!(compressed.n(), 4);
            (apsp::exact_apsp(compressed), 1.0)
        });
    }

    #[test]
    fn positive_graphs_bypass_the_reduction() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_connected(20, 0.3, 1..=9, &mut rng);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        let mut called_with_n = 0;
        apsp_with_zero_weights(&mut clique, &g, |_c, inner_g| {
            called_with_n = inner_g.n();
            (apsp::exact_apsp(inner_g), 1.0)
        });
        assert_eq!(called_with_n, g.n());
    }

    #[test]
    fn approximate_inner_keeps_its_bound() {
        let g = clustered_graph(6, 3, 4);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        // Inner: 3× inflated distances (a 3-approximation).
        let (est, bound) = apsp_with_zero_weights(&mut clique, &g, |_c, compressed| {
            let exact = apsp::exact_apsp(compressed);
            let mut m = exact.clone();
            for u in 0..compressed.n() {
                for v in 0..compressed.n() {
                    let d = exact.get(u, v);
                    if u != v && d < INF {
                        m.set(u, v, d * 3);
                    }
                }
            }
            (m, 3.0)
        });
        let exact = apsp::exact_apsp(&g);
        let stats = est.stretch_vs(&exact);
        assert!(stats.is_valid_approximation(bound), "{stats}");
    }

    #[test]
    fn reduction_overhead_is_constant_rounds() {
        let g = clustered_graph(8, 4, 5);
        let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
        apsp_with_zero_weights(&mut clique, &g, |_c, compressed| {
            (apsp::exact_apsp(compressed), 1.0) // zero inner rounds
        });
        assert!(clique.rounds() <= 16, "rounds = {}", clique.rounds());
    }

    #[test]
    fn all_zero_graph_collapses_to_single_cluster() {
        let mut b = GraphBuilder::undirected(6);
        for i in 0..5 {
            b.add_edge(i, i + 1, 0);
        }
        let g = b.build();
        let mut clique = Clique::new(6, Bandwidth::standard(6));
        let (est, _) = apsp_with_zero_weights(&mut clique, &g, exact_inner);
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(est.get(u, v), 0, "({u},{v})");
            }
        }
    }
}
