//! Skeleton graphs (Section 6, Lemmas 6.1–6.4 and 3.4).
//!
//! Given per-node approximate k-nearest sets `Ñ_k(u)` with a *local*
//! a-approximation δ on them, the construction reduces APSP on `G` to APSP
//! on a much smaller graph `G_S` over `O(n·log k / k)` *skeleton nodes*:
//!
//! 1. a **hitting set** `S` intersecting every `Ñ_k(u)` (sampling at rate
//!    `ln k / k`, with a deterministic fix-up; O(log n) parallel trials keep
//!    the smallest — Lemma 6.2);
//! 2. every node picks the **center** `c(u)`: its δ-closest skeleton node in
//!    `Ñ_k(u)`;
//! 3. an edge of `G_S` between `c(u)` and `c(v)` for every "two-hop
//!    exploration" `u → t → v` with `t ∈ Ñ_k(u)` and `{t,v} ∈ E` (or
//!    `t = v`), weighted `δ(c(u),u) + δ(u,t) + w_tv + δ(v,c(v))`, computed
//!    by one sparse min-plus product `X ⋆ Y` (Theorem 6.1);
//! 4. any l-approximation of APSP on `G_S` **extends** to a `7·l·a²`
//!    approximation η on `G` (Lemma 6.4) via `η(u,v) = δ(u,c(u)) +
//!    δ_GS(c(u),c(v)) + δ(c(v),v)` for non-local pairs.

use cc_graph::graph::{Graph, GraphBuilder};
use cc_graph::{log2_ceil, wadd, DistMatrix, NodeId, Weight, INF};
use cc_matrix::engine::{sparse_product_planned, KernelMode};
use cc_matrix::filtered::FilteredMatrix;
use cc_matrix::sparse::SparseMatrix;
use cc_par::ExecPolicy;
use clique_sim::{Clique, Msg};
use rand::rngs::StdRng;
use rand::Rng;

/// Rounds charged for the hitting-set selection (Lemma 6.2): O(log n)
/// one-bit-per-pair sampling trials run in parallel, plus size aggregation
/// and the winner broadcast.
pub const HITTING_SET_ROUNDS: u64 = 3;

/// A skeleton graph with its clustering.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// The skeleton nodes `V_S = S` (sorted G-node IDs).
    pub centers: Vec<NodeId>,
    /// Maps a G node to its index in [`Self::centers`] if it is a skeleton
    /// node.
    pub index_of: Vec<Option<usize>>,
    /// `G_S`, an undirected graph over `centers.len()` nodes (indices into
    /// [`Self::centers`]).
    pub graph: Graph,
    /// `c(u)` per node (a G-node ID, guaranteed in `S ∩ Ñ_k(u)`).
    pub assignment: Vec<NodeId>,
    /// `δ(u, c(u))` per node.
    pub delta_to_center: Vec<Weight>,
}

impl Skeleton {
    /// Number of skeleton nodes `|V_S|`.
    pub fn size(&self) -> usize {
        self.centers.len()
    }
}

/// Builds the hitting set `S` (Lemma 6.2 procedure): `⌈log₂ n⌉` independent
/// trials of rate-`ln k / k` sampling with fix-up, keeping the smallest.
pub fn hitting_set(tilde: &FilteredMatrix, rng: &mut StdRng) -> Vec<NodeId> {
    let n = tilde.n();
    let k = tilde.k().max(1);
    let prob = ((k as f64).ln() / k as f64).clamp(0.0, 1.0);
    let trials = log2_ceil(n).max(1);
    let mut best: Option<Vec<NodeId>> = None;
    for _ in 0..trials {
        let mut in_s = vec![false; n];
        for slot in in_s.iter_mut() {
            if prob > 0.0 && rng.gen_bool(prob) {
                *slot = true;
            }
        }
        // Fix-up: every node whose Ñ_k set is unhit joins S itself.
        for v in 0..n {
            if !tilde.row(v).iter().any(|&(u, _)| in_s[u]) {
                in_s[v] = true;
            }
        }
        let s: Vec<NodeId> = (0..n).filter(|&v| in_s[v]).collect();
        if best.as_ref().is_none_or(|b| s.len() < b.len()) {
            best = Some(s);
        }
    }
    best.expect("at least one trial")
}

/// Builds the skeleton graph from approximate k-nearest sets (Lemma 6.1 /
/// Lemma 3.4 when δ is exact).
///
/// `tilde` row `u` holds `Ñ_k(u)` as `(node, δ(u, node))`; δ must be the
/// symmetric local estimate required by Lemma 6.1 (exact distances qualify,
/// `a = 1`).
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn build_skeleton(
    clique: &mut Clique,
    g: &Graph,
    tilde: &FilteredMatrix,
    rng: &mut StdRng,
) -> Skeleton {
    build_skeleton_with(clique, g, tilde, rng, ExecPolicy::from_env())
}

/// [`build_skeleton`] under an explicit [`ExecPolicy`] (the step-3c
/// min-plus product runs through the kernel engine under the `CC_KERNEL`
/// dispatch default).
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn build_skeleton_with(
    clique: &mut Clique,
    g: &Graph,
    tilde: &FilteredMatrix,
    rng: &mut StdRng,
    exec: ExecPolicy,
) -> Skeleton {
    build_skeleton_kernel(clique, g, tilde, rng, exec, KernelMode::from_env())
}

/// [`build_skeleton_with`] under an explicit [`KernelMode`]: the step-3c
/// product `X ⋆ Y` is dispatched by the kernel engine (dense-tiled vs
/// sparse-sharded per the measured densities, or as forced by `kernel`).
/// The result — skeleton graph, round charges, everything — is
/// bit-identical for every mode.
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn build_skeleton_kernel(
    clique: &mut Clique,
    g: &Graph,
    tilde: &FilteredMatrix,
    rng: &mut StdRng,
    exec: ExecPolicy,
    kernel: KernelMode,
) -> Skeleton {
    let n = g.n();
    assert_eq!(tilde.n(), n, "tilde-set dimension mismatch");
    assert_eq!(clique.n(), n, "clique size mismatch");
    clique.phase("skeleton", |clique| {
        // Step 1: hitting set.
        let centers = hitting_set(tilde, rng);
        clique.charge("hitting-set (Lemma 6.2, cited O(1))", HITTING_SET_ROUNDS);
        let mut index_of: Vec<Option<usize>> = vec![None; n];
        for (i, &s) in centers.iter().enumerate() {
            index_of[s] = Some(i);
        }
        let in_s = |v: NodeId| index_of[v].is_some();

        // Step 2 (local): centers.
        let mut assignment = vec![usize::MAX; n];
        let mut delta_to_center = vec![INF; n];
        for u in 0..n {
            let best = tilde
                .row(u)
                .iter()
                .copied()
                .filter(|&(s, _)| in_s(s))
                .min_by_key(|&(s, d)| (d, s))
                .expect("hitting set fix-up guarantees S ∩ Ñ_k(u) ≠ ∅");
            assignment[u] = best.0;
            delta_to_center[u] = best.1;
        }

        // Step 3a: x(s_a, t) = min over u with c(u)=s_a, t ∈ Ñ_k(u) of
        // δ(s_a,u) + δ(u,t). Each u sends (c(u), value) to every t ∈ Ñ_k(u).
        let mut x_msgs: Vec<Msg<(u64, u64)>> = Vec::new();
        for u in 0..n {
            let base = delta_to_center[u];
            for &(t, d_ut) in tilde.row(u) {
                let val = wadd(base, d_ut);
                if val < INF {
                    x_msgs.push(Msg::new(u, t, (assignment[u] as u64, val)));
                }
            }
        }
        let x_inboxes = clique.route("skeleton-x-scatter", x_msgs);
        // t aggregates min per s_a, then reports x(s_a, t) to s_a.
        let mut x_report: Vec<Msg<(u64, u64)>> = Vec::new();
        let mut x_mat = SparseMatrix::zero(n); // X[s_a][t]
        for (t, inbox) in x_inboxes.iter().enumerate() {
            let mut per_center: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for m in inbox {
                let (sa, val) = m.payload;
                let e = per_center.entry(sa).or_insert(u64::MAX);
                if val < *e {
                    *e = val;
                }
            }
            for (&sa, &val) in &per_center {
                x_report.push(Msg::new(t, sa as usize, (t as u64, val)));
            }
        }
        let x_back = clique.route("skeleton-x-gather", x_report);
        for (sa, inbox) in x_back.iter().enumerate() {
            for m in inbox {
                let (t, val) = m.payload;
                x_mat.relax(sa, t as usize, val);
            }
        }

        // Step 3b: y(t, s_b) = min over v with c(v)=s_b, {t,v} ∈ E of
        // w_tv + δ(v, s_b); plus the t = v case, y(t, c(t)) ≤ δ(t, c(t)).
        let mut y_msgs: Vec<Msg<(u64, u64)>> = Vec::new();
        for v in 0..n {
            let base = delta_to_center[v];
            for (t, w) in g.neighbors(v) {
                let val = wadd(w, base);
                if val < INF {
                    y_msgs.push(Msg::new(v, t, (assignment[v] as u64, val)));
                }
            }
        }
        let y_inboxes = clique.route("skeleton-y-scatter", y_msgs);
        let mut y_mat = SparseMatrix::zero(n); // Y[t][s_b]
        for (t, inbox) in y_inboxes.iter().enumerate() {
            for m in inbox {
                let (sb, val) = m.payload;
                y_mat.relax(t, sb as usize, val);
            }
            // t = v case.
            y_mat.relax(t, assignment[t], delta_to_center[t]);
        }

        // Step 3c: edge weights of G_S = (X ⋆ Y)[s_a, s_b], via sparse
        // min-plus multiplication (Theorem 6.1 round model). ρX ≤ k,
        // ρY ≤ |S|, ρXY ≤ |S|²/n.
        let rho_hint = (centers.len() as f64).powi(2) / n as f64;
        let (product, _choice) =
            sparse_product_planned(&x_mat, &y_mat, Some(rho_hint), kernel, exec);
        clique.charge("skeleton-matmul (Thm 6.1)", product.rounds);

        let mut gs = GraphBuilder::undirected(centers.len());
        for (ia, &sa) in centers.iter().enumerate() {
            for &(sb, w) in product.matrix.row(sa) {
                if let Some(ib) = index_of[sb] {
                    if ia != ib && w < INF {
                        gs.add_edge(ia, ib, w);
                    }
                }
            }
        }
        Skeleton {
            graph: gs.build(),
            centers,
            index_of,
            assignment,
            delta_to_center,
        }
    })
}

/// Step 4 of Lemma 6.1: extends an l-approximation `delta_gs` of APSP on
/// `G_S` to the estimate η on all of `G`:
///
/// * `η(u,v) = δ(u,v)` when `v ∈ Ñ_k(u)` or `u ∈ Ñ_k(v)`;
/// * `η(u,v) = δ(u,c(u)) + δ_GS(c(u),c(v)) + δ(c(v),v)` otherwise.
///
/// If δ is an a-approximation on the tilde sets (per Lemma 6.1's
/// conditions), η is a `7·l·a²`-approximation on `G` (Lemma 6.4).
///
/// Round charge: the two sparse products `A^T ⋆ (D ⋆ A)` with `ρ_A = 1`
/// (Section 6.2), evaluated through the Theorem 6.1 formula.
pub fn extend_estimate(
    clique: &mut Clique,
    skeleton: &Skeleton,
    tilde: &FilteredMatrix,
    delta_gs: &DistMatrix,
) -> DistMatrix {
    let n = tilde.n();
    let s_count = skeleton.size();
    assert_eq!(delta_gs.n(), s_count, "δ_GS must be over skeleton nodes");
    clique.phase("skeleton-extend", |clique| {
        // Charge the D⋆A and Aᵀ⋆(DA) products (Theorem 6.1, ρ_A = 1).
        let rho_d = (s_count as f64).powi(2) / n as f64;
        let r1 = cc_matrix::sparse::cdkl_rounds(n, rho_d, 1.0, s_count as f64);
        let r2 = cc_matrix::sparse::cdkl_rounds(n, 1.0, s_count as f64, n as f64);
        clique.charge("extend-matmul (Thm 6.1, ρA=1)", r1 + r2);

        let mut eta = DistMatrix::infinite(n);
        // Non-local pairs via centers.
        for u in 0..n {
            let cu = skeleton.index_of[skeleton.assignment[u]].expect("center is in S");
            let du = skeleton.delta_to_center[u];
            for v in 0..n {
                if u == v {
                    continue;
                }
                let cv = skeleton.index_of[skeleton.assignment[v]].expect("center is in S");
                let dv = skeleton.delta_to_center[v];
                let val = wadd(wadd(du, delta_gs.get(cu, cv)), dv);
                eta.set(u, v, val);
            }
        }
        // Local pairs override: η(u,v) = δ(u,v) when v ∈ Ñ_k(u) or u ∈ Ñ_k(v).
        for u in 0..n {
            for &(v, d) in tilde.row(u) {
                if u != v {
                    eta.set(u, v, d);
                    eta.set(v, u, d);
                }
            }
        }
        eta
    })
}

/// Lemma 6.4's approximation bound for the extension: `7·l·a²`.
pub fn extension_bound(l: f64, a: f64) -> f64 {
    7.0 * l * a * a
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{apsp, generators, sssp};
    use clique_sim::Bandwidth;
    use rand::SeedableRng;

    fn clique_for(n: usize) -> Clique {
        Clique::new(n, Bandwidth::standard(n))
    }

    /// Exact k-nearest tilde sets (the Lemma 3.4 setting: a = 1).
    fn exact_tilde(g: &Graph, k: usize) -> FilteredMatrix {
        let rows: Vec<Vec<(NodeId, Weight)>> =
            (0..g.n()).map(|u| sssp::k_nearest(g, u, k)).collect();
        FilteredMatrix::from_rows(g.n(), k, rows)
    }

    #[test]
    fn hitting_set_hits_every_tilde_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnp_connected(80, 0.08, 1..=20, &mut rng);
        let tilde = exact_tilde(&g, 9);
        let s = hitting_set(&tilde, &mut rng);
        let in_s: std::collections::HashSet<_> = s.iter().copied().collect();
        for u in 0..g.n() {
            assert!(
                tilde.row(u).iter().any(|&(v, _)| in_s.contains(&v)),
                "Ñ_k({u}) unhit"
            );
        }
    }

    #[test]
    fn hitting_set_size_within_bound() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 400;
        let k = 20;
        let g = generators::gnp_connected(n, 0.05, 1..=10, &mut rng);
        let tilde = exact_tilde(&g, k);
        let s = hitting_set(&tilde, &mut rng);
        // E|S| ≈ n·ln k/k (plus fix-ups); allow constant 4.
        let bound = 4.0 * n as f64 * (k as f64).ln() / k as f64;
        assert!((s.len() as f64) < bound, "|S| = {} > {bound:.0}", s.len());
    }

    #[test]
    fn centers_are_hit_members_of_tilde_sets() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp_connected(60, 0.1, 1..=15, &mut rng);
        let tilde = exact_tilde(&g, 8);
        let mut clique = clique_for(g.n());
        let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
        for u in 0..g.n() {
            let c = sk.assignment[u];
            assert!(sk.index_of[c].is_some(), "c({u}) not in S");
            assert!(
                tilde.row(u).iter().any(|&(v, _)| v == c),
                "c({u}) ∉ Ñ_k({u})"
            );
        }
        // Skeleton nodes center on themselves.
        for &s in &sk.centers {
            assert_eq!(sk.assignment[s], s);
            assert_eq!(sk.delta_to_center[s], 0);
        }
    }

    #[test]
    fn skeleton_edges_are_realizable_paths() {
        // Every G_S edge weight must be ≥ the true distance between its
        // endpoints in G (it is built from δ-values ≥ d plus real edges).
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnp_connected(50, 0.12, 1..=12, &mut rng);
        let tilde = exact_tilde(&g, 7);
        let mut clique = clique_for(g.n());
        let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
        let exact = apsp::exact_apsp(&g);
        for (ia, ib, w) in sk.graph.edges() {
            let (sa, sb) = (sk.centers[ia], sk.centers[ib]);
            assert!(w >= exact.get(sa, sb), "G_S edge below true distance");
        }
    }

    /// Lemma 3.4 (a = 1, l = 1): exact APSP on G_S extends to a
    /// 7-approximation on G.
    #[test]
    fn extension_with_exact_skeleton_apsp_is_7_approx() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(60, 0.1, 1..=25, &mut rng);
            let k = 8;
            let tilde = exact_tilde(&g, k);
            let mut clique = clique_for(g.n());
            let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
            let delta_gs = apsp::exact_apsp(&sk.graph);
            let eta = extend_estimate(&mut clique, &sk, &tilde, &delta_gs);
            let exact = apsp::exact_apsp(&g);
            let stats = eta.stretch_vs(&exact);
            assert!(
                stats.is_valid_approximation(extension_bound(1.0, 1.0)),
                "seed={seed}: {stats}"
            );
        }
    }

    #[test]
    fn extension_never_underestimates_even_with_approx_gs() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::gnp_connected(40, 0.15, 1..=10, &mut rng);
        let tilde = exact_tilde(&g, 6);
        let mut clique = clique_for(g.n());
        let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
        // A 3-approximation of G_S distances (inflate exact by 3).
        let exact_gs = apsp::exact_apsp(&sk.graph);
        let mut approx_gs = exact_gs.clone();
        for a in 0..sk.size() {
            for b in 0..sk.size() {
                let d = exact_gs.get(a, b);
                if a != b && d < INF {
                    approx_gs.set(a, b, d * 3);
                }
            }
        }
        let eta = extend_estimate(&mut clique, &sk, &tilde, &approx_gs);
        let exact = apsp::exact_apsp(&g);
        let stats = eta.stretch_vs(&exact);
        assert_eq!(stats.underestimates, 0);
        assert!(
            stats.is_valid_approximation(extension_bound(3.0, 1.0)),
            "{stats}"
        );
    }

    #[test]
    fn skeleton_shrinks_with_larger_k() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(200, 0.06, 1..=20, &mut rng);
        let small_k = exact_tilde(&g, 4);
        let large_k = exact_tilde(&g, 24);
        let mut c1 = clique_for(g.n());
        let mut c2 = clique_for(g.n());
        let sk_small = build_skeleton(&mut c1, &g, &small_k, &mut rng);
        let sk_large = build_skeleton(&mut c2, &g, &large_k, &mut rng);
        assert!(sk_large.size() < sk_small.size());
    }

    #[test]
    fn skeleton_rounds_are_constant_flavored() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::gnp_connected(150, 0.06, 1..=20, &mut rng);
        let tilde = exact_tilde(&g, 12);
        let mut clique = clique_for(g.n());
        let sk = build_skeleton(&mut clique, &g, &tilde, &mut rng);
        let delta_gs = apsp::exact_apsp(&sk.graph);
        extend_estimate(&mut clique, &sk, &tilde, &delta_gs);
        assert!(clique.rounds() <= 24, "rounds = {}", clique.rounds());
    }
}
