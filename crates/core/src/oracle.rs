//! Distance oracles and greedy routing — the network-routing application
//! that motivates APSP in the Congested Clique (Section 1: "particularly
//! important in distributed computing due to its close connection to
//! network routing").
//!
//! After an APSP run, each node knows an estimate row δ(u, ·). A
//! [`DistanceOracle`] wraps the estimate together with the graph and
//! supports *greedy next-hop routing*: from `u` toward `v`, forward to the
//! neighbor minimizing `w(u, x) + δ(x, v)`. With exact distances this
//! follows a shortest path; with an α-approximation the detour is bounded
//! in practice (measured by [`DistanceOracle::routing_quality`]).

use cc_graph::{wadd, DistMatrix, Graph, NodeId, StretchStats, Weight, INF};
use cc_par::ExecPolicy;

use crate::landmark::LandmarkSketch;

/// Which oracle backend a run should produce — the `--oracle` /
/// `CC_ORACLE` axis, mirroring the `--kernel` / `CC_KERNEL` pattern of
/// [`cc_matrix::engine::KernelMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleKind {
    /// Dense n×n [`DistMatrix`] estimate: exact answers for whatever the
    /// pipeline computed, 8n² bytes resident.
    #[default]
    Dense,
    /// Sublinear [`LandmarkSketch`]: Θ(n√n) expected words, provable
    /// 3-approximate answers.
    Landmark,
}

impl OracleKind {
    /// Parses a CLI/env spelling (`dense` | `landmark`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dense" => Some(OracleKind::Dense),
            "landmark" => Some(OracleKind::Landmark),
            _ => None,
        }
    }

    /// The canonical spelling, for usage strings and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Dense => "dense",
            OracleKind::Landmark => "landmark",
        }
    }

    /// The `CC_ORACLE` environment default: `dense` when unset or
    /// unrecognized.
    pub fn from_env() -> Self {
        std::env::var("CC_ORACLE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The estimate store behind a [`DistanceOracle`]: either the classic dense
/// matrix or a sublinear landmark sketch. Every layer above (snapshots, the
/// serving engine, the dynamic engine, the benches) is generic over this
/// enum; the dense arm answers bit-identically to the pre-refactor code.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleBackend {
    /// Dense n×n estimate matrix.
    Dense(DistMatrix),
    /// Landmark sketch (see [`crate::landmark`]).
    Landmark(LandmarkSketch),
}

impl OracleBackend {
    /// Number of nodes the backend covers.
    pub fn n(&self) -> usize {
        match self {
            OracleBackend::Dense(m) => m.n(),
            OracleBackend::Landmark(s) => s.n(),
        }
    }

    /// Which kind of backend this is.
    pub fn kind(&self) -> OracleKind {
        match self {
            OracleBackend::Dense(_) => OracleKind::Dense,
            OracleBackend::Landmark(_) => OracleKind::Landmark,
        }
    }

    /// The distance estimate δ(u, v).
    #[inline]
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        match self {
            OracleBackend::Dense(m) => m.get(u, v),
            OracleBackend::Landmark(s) => s.query(u, v),
        }
    }

    /// The dense matrix, when this is a dense backend (the serving layer's
    /// zero-copy row path and the dynamic engine's row repair use this).
    pub fn as_dense(&self) -> Option<&DistMatrix> {
        match self {
            OracleBackend::Dense(m) => Some(m),
            OracleBackend::Landmark(_) => None,
        }
    }

    /// The landmark sketch, when this is a landmark backend.
    pub fn as_landmark(&self) -> Option<&LandmarkSketch> {
        match self {
            OracleBackend::Dense(_) => None,
            OracleBackend::Landmark(s) => Some(s),
        }
    }

    /// Materializes the estimate row δ(u, ·). Dense backends copy their row;
    /// landmark backends compute it in O(L·n). Prefer
    /// [`OracleBackend::as_dense`] when a borrowed row suffices.
    pub fn dist_row(&self, u: NodeId) -> Vec<Weight> {
        match self {
            OracleBackend::Dense(m) => m.row(u).to_vec(),
            OracleBackend::Landmark(s) => s.dist_row(u),
        }
    }

    /// Approximate resident memory of the estimate payload in bytes.
    pub fn approx_mem_bytes(&self) -> u64 {
        match self {
            OracleBackend::Dense(m) => m.approx_mem_bytes(),
            OracleBackend::Landmark(s) => s.approx_mem_bytes(),
        }
    }

    /// Audits the backend's stretch against exact distances computed from
    /// `sources` seeded-sampled source vertices (all of them when `sources
    /// ≥ n`) — the affordable audit at sketch scale, reported with the same
    /// [`StretchStats`] semantics as the dense matrix audits.
    ///
    /// Deterministic per `(graph, sources, seed)`; `exec` parallelizes the
    /// exact rows only.
    pub fn sampled_stretch(
        &self,
        graph: &Graph,
        sources: usize,
        seed: u64,
        exec: ExecPolicy,
    ) -> StretchStats {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = graph.n();
        let picked: Vec<NodeId> = if sources >= n {
            (0..n).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ids: Vec<NodeId> = (0..n).collect();
            for i in 0..sources {
                let j = rng.gen_range(i..n);
                ids.swap(i, j);
            }
            let mut picked = ids[..sources].to_vec();
            picked.sort_unstable();
            picked
        };
        let exact_rows = cc_graph::apsp::exact_rows_with(graph, &picked, exec);
        let mut ratios = Vec::new();
        let mut under = 0usize;
        let mut missing = 0usize;
        for (row, &u) in exact_rows.iter().zip(&picked) {
            let est_row = self.dist_row(u);
            for (v, &d) in row.iter().enumerate() {
                if u == v || d == 0 || d >= INF {
                    continue;
                }
                let e = est_row[v];
                if e >= INF {
                    missing += 1;
                    continue;
                }
                if e < d {
                    under += 1;
                }
                ratios.push(e as f64 / d as f64);
            }
        }
        StretchStats::from_tally(ratios, under, missing)
    }
}

/// A queryable distance oracle backed by an APSP estimate.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    graph: Graph,
    backend: OracleBackend,
}

/// Outcome of routing a batch of random queries through the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingQuality {
    /// Queries attempted (connected pairs only).
    pub attempted: usize,
    /// Queries whose greedy walk reached the target.
    pub delivered: usize,
    /// Mean ratio of walked length to true distance, over delivered
    /// queries.
    pub mean_route_stretch: f64,
    /// Max ratio of walked length to true distance.
    pub max_route_stretch: f64,
}

impl DistanceOracle {
    /// Wraps a graph and an estimate of its APSP.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn new(graph: Graph, estimate: DistMatrix) -> Self {
        Self::with_backend(graph, OracleBackend::Dense(estimate))
    }

    /// Wraps a graph and any [`OracleBackend`].
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn with_backend(graph: Graph, backend: OracleBackend) -> Self {
        assert_eq!(graph.n(), backend.n(), "oracle estimate dimension mismatch");
        Self { graph, backend }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The underlying backend.
    pub fn backend(&self) -> &OracleBackend {
        &self.backend
    }

    /// The underlying estimate matrix (the serving layer reads rows from it
    /// for k-nearest queries on the dense path).
    ///
    /// # Panics
    ///
    /// Panics on a landmark backend, which has no dense matrix — callers
    /// that must handle both use [`DistanceOracle::backend`].
    pub fn estimate(&self) -> &DistMatrix {
        self.backend
            .as_dense()
            .expect("estimate(): landmark backend has no dense matrix")
    }

    /// Decomposes the oracle back into its graph and estimate, without
    /// cloning either.
    ///
    /// # Panics
    ///
    /// Panics on a landmark backend; the serving layer's delta application
    /// path uses [`DistanceOracle::into_backend_parts`], which handles both.
    pub fn into_parts(self) -> (Graph, DistMatrix) {
        match self.backend {
            OracleBackend::Dense(m) => (self.graph, m),
            OracleBackend::Landmark(_) => {
                panic!("into_parts(): landmark backend has no dense matrix")
            }
        }
    }

    /// Decomposes the oracle into its graph and backend, without cloning
    /// either. The serving layer's delta application path uses this to take
    /// the current state out of a live entry, apply an update batch, and
    /// construct the successor oracle from the result.
    pub fn into_backend_parts(self) -> (Graph, OracleBackend) {
        (self.graph, self.backend)
    }

    /// The distance estimate δ(u, v).
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        self.backend.query(u, v)
    }

    /// The greedy next hop from `u` toward `v`: the neighbor `x` minimizing
    /// `(w(u,x) + δ(x,v), x)`, or `None` if `u` is isolated or every
    /// neighbor estimates `v` as unreachable.
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.graph
            .neighbors(u)
            .map(|(x, w)| (wadd(w, self.backend.query(x, v)), x))
            .filter(|&(cost, _)| cost < INF)
            .min()
            .map(|(_, x)| x)
    }

    /// Routes greedily from `u` to `v`: at each step, forward to the best
    /// **unvisited** neighbor by `w(u,x) + δ(x,v)` (excluding visited nodes
    /// guarantees termination even when the approximate estimate would
    /// create a loop). Gives up when stuck; returns the node sequence on
    /// success.
    ///
    /// Guaranteed to terminate within `n` steps for *any* estimate, however
    /// misleading: every step visits a fresh node, so the walk either
    /// reaches `v`, or runs out of unvisited neighbors (a dead end or an
    /// unreachable target, e.g. `δ(·,v) = ∞` everywhere) and returns
    /// `None` — it can never loop. `u == v` is the trivial one-node route.
    pub fn route(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        if u == v {
            return Some(vec![u]);
        }
        let n = self.graph.n();
        let mut path = vec![u];
        let mut visited = vec![false; n];
        visited[u] = true;
        let mut cur = u;
        while cur != v {
            debug_assert!(path.len() <= n, "visited-set invariant violated");
            let next = self
                .graph
                .neighbors(cur)
                .filter(|&(x, _)| !visited[x])
                .map(|(x, w)| (wadd(w, self.backend.query(x, v)), x))
                .filter(|&(cost, _)| cost < INF)
                .min()
                .map(|(_, x)| x)?;
            visited[next] = true;
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Measures greedy-routing quality over all ordered connected pairs of a
    /// deterministic sample (every `stride`-th pair), comparing walked
    /// length to exact distance.
    pub fn routing_quality(&self, exact: &DistMatrix, stride: usize) -> RoutingQuality {
        let n = self.graph.n();
        let stride = stride.max(1);
        let mut attempted = 0;
        let mut delivered = 0;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        let mut counter = 0usize;
        for u in 0..n {
            for v in 0..n {
                if u == v || exact.get(u, v) >= INF {
                    continue;
                }
                counter += 1;
                if !counter.is_multiple_of(stride) {
                    continue;
                }
                attempted += 1;
                if let Some(path) = self.route(u, v) {
                    let length: Weight = path
                        .windows(2)
                        .map(|p| {
                            self.graph
                                .edge_weight(p[0], p[1])
                                .expect("route uses real edges")
                        })
                        .sum();
                    delivered += 1;
                    let ratio = length as f64 / exact.get(u, v) as f64;
                    sum += ratio;
                    max = max.max(ratio);
                }
            }
        }
        RoutingQuality {
            attempted,
            delivered,
            mean_route_stretch: if delivered > 0 {
                sum / delivered as f64
            } else {
                0.0
            },
            max_route_stretch: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::graph::Direction;
    use cc_graph::{apsp, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometric(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_geometric(n, 0.3, 50, &mut rng)
    }

    #[test]
    fn exact_oracle_routes_along_shortest_paths() {
        let g = geometric(40, 1);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g.clone(), exact.clone());
        let q = oracle.routing_quality(&exact, 7);
        assert_eq!(q.attempted, q.delivered);
        assert!((q.max_route_stretch - 1.0).abs() < 1e-9, "{q:?}");
    }

    #[test]
    fn approximate_oracle_delivers_with_bounded_detour() {
        let g = geometric(50, 2);
        let exact = apsp::exact_apsp(&g);
        let result = crate::pipeline::approximate_apsp(
            &g,
            &crate::pipeline::PipelineConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let oracle = DistanceOracle::new(g, result.estimate);
        let q = oracle.routing_quality(&exact, 5);
        // Most queries should deliver, and detours stay modest on geometric
        // graphs.
        assert!(q.delivered * 10 >= q.attempted * 8, "{q:?}");
        assert!(q.max_route_stretch < 20.0, "{q:?}");
    }

    #[test]
    fn into_parts_round_trips() {
        let g = geometric(12, 4);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g.clone(), exact.clone());
        let (g2, e2) = oracle.into_parts();
        assert_eq!(g2, g);
        assert_eq!(e2, exact);
    }

    #[test]
    fn next_hop_none_for_isolated_node() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.next_hop(2, 0), None);
        assert_eq!(oracle.route(2, 0), None);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let g = geometric(10, 3);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(4, 4), Some(vec![4]));
    }

    #[test]
    fn route_to_self_works_even_for_isolated_nodes() {
        // u == v must be the trivial route regardless of connectivity.
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(2, 2), Some(vec![2]));
        assert_eq!(oracle.route(0, 0), Some(vec![0]));
    }

    #[test]
    fn disconnected_pair_with_inf_estimate_returns_none() {
        // Two components; every neighbor estimates the far side as INF, so
        // the very first step finds no candidate.
        let g = Graph::from_edges(
            6,
            Direction::Undirected,
            &[(0, 1, 2), (1, 2, 3), (3, 4, 1), (4, 5, 1)],
        );
        let exact = apsp::exact_apsp(&g);
        assert_eq!(exact.get(0, 5), INF);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(0, 5), None);
        assert_eq!(oracle.route(5, 0), None);
        assert_eq!(oracle.next_hop(0, 5), None);
    }

    #[test]
    fn lying_estimate_into_a_dead_end_returns_none() {
        // δ(1, 3) = 0 lies: greedy routing from 0 toward 3 prefers the
        // dead-end node 1 over the real path through 2, then has no
        // unvisited neighbor left and must give up (not loop back).
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1), (0, 2, 1), (2, 3, 1)]);
        let mut fake = DistMatrix::infinite(4);
        fake.set(1, 3, 0);
        fake.set(2, 3, 5);
        fake.set(3, 3, 0);
        let oracle = DistanceOracle::new(g, fake);
        assert_eq!(oracle.route(0, 3), None);
    }

    #[test]
    fn cyclic_estimate_terminates_with_distinct_path_nodes() {
        // A constant all-ones estimate on a cycle is the classic greedy
        // loop bait; the visited set must bound the walk by n distinct
        // nodes whatever happens.
        let n = 8;
        let edges: Vec<(usize, usize, u64)> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();
        let g = Graph::from_edges(n, Direction::Undirected, &edges);
        let mut fake = DistMatrix::infinite(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    fake.set(u, v, 1);
                }
            }
        }
        let oracle = DistanceOracle::new(g, fake);
        for target in 0..n {
            if let Some(path) = oracle.route(0, target) {
                assert!(path.len() <= n, "path too long: {path:?}");
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), path.len(), "revisit in {path:?}");
            }
        }
    }

    #[test]
    fn oracle_kind_parses_and_reads_env_spellings() {
        assert_eq!(OracleKind::parse("dense"), Some(OracleKind::Dense));
        assert_eq!(OracleKind::parse("landmark"), Some(OracleKind::Landmark));
        assert_eq!(OracleKind::parse("sketchy"), None);
        assert_eq!(OracleKind::Dense.name(), "dense");
        assert_eq!(OracleKind::Landmark.to_string(), "landmark");
        assert_eq!(OracleKind::default(), OracleKind::Dense);
    }

    #[test]
    fn dense_backend_answers_identically_to_the_old_dense_oracle() {
        let g = geometric(30, 6);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g.clone(), exact.clone());
        assert_eq!(oracle.backend().kind(), OracleKind::Dense);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(oracle.query(u, v), exact.get(u, v));
            }
            assert_eq!(oracle.backend().dist_row(u), exact.row(u).to_vec());
        }
        assert_eq!(
            oracle.backend().approx_mem_bytes(),
            exact.approx_mem_bytes()
        );
    }

    #[test]
    fn landmark_backend_routes_and_never_underestimates() {
        let g = geometric(40, 8);
        let exact = apsp::exact_apsp(&g);
        let sketch = crate::landmark::LandmarkSketch::build(&g, 17, cc_par::ExecPolicy::Seq);
        let oracle = DistanceOracle::with_backend(g.clone(), OracleBackend::Landmark(sketch));
        assert_eq!(oracle.backend().kind(), OracleKind::Landmark);
        for u in 0..g.n() {
            for v in 0..g.n() {
                let d = exact.get(u, v);
                let e = oracle.query(u, v);
                assert!(e >= d, "underestimate at ({u},{v})");
                if d < INF {
                    // Route must terminate; when delivered it uses real edges.
                    if let Some(path) = oracle.route(u, v) {
                        assert_eq!(*path.first().unwrap(), u);
                        assert_eq!(*path.last().unwrap(), v);
                        assert!(path.len() <= g.n());
                    }
                }
            }
        }
        let stats = oracle
            .backend()
            .sampled_stretch(&g, 16, 3, cc_par::ExecPolicy::Seq);
        assert_eq!(stats.underestimates, 0);
        assert_eq!(stats.missing, 0);
        assert!(stats.max_stretch <= 3.0 + 1e-9, "{stats}");
    }

    #[test]
    fn sampled_stretch_with_all_sources_matches_full_matrix_audit() {
        let g = geometric(25, 12);
        let exact = apsp::exact_apsp(&g);
        let sketch = crate::landmark::LandmarkSketch::build(&g, 2, cc_par::ExecPolicy::Seq);
        let backend = OracleBackend::Landmark(sketch.clone());
        let sampled = backend.sampled_stretch(&g, g.n(), 0, cc_par::ExecPolicy::Seq);
        // Materialize the sketch into a dense matrix and audit it fully.
        let mut dense = DistMatrix::infinite(g.n());
        for u in 0..g.n() {
            let row = sketch.dist_row(u);
            for (v, &d) in row.iter().enumerate() {
                dense.set(u, v, d);
            }
        }
        let full = dense.stretch_vs(&exact);
        assert_eq!(sampled, full);
    }

    #[test]
    #[should_panic(expected = "landmark backend has no dense matrix")]
    fn estimate_accessor_panics_on_landmark_backend() {
        let g = geometric(10, 1);
        let sketch = crate::landmark::LandmarkSketch::build(&g, 0, cc_par::ExecPolicy::Seq);
        let oracle = DistanceOracle::with_backend(g, OracleBackend::Landmark(sketch));
        let _ = oracle.estimate();
    }

    #[test]
    fn misleading_estimate_detected_as_loop_or_dead_end() {
        // An estimate claiming everything is at distance 1 everywhere makes
        // greedy routing walk to the ID-smallest neighbor forever; the
        // visited-set guard must catch it rather than hang.
        let g = Graph::from_edges(
            4,
            Direction::Undirected,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)],
        );
        let mut fake = DistMatrix::infinite(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    fake.set(u, v, 1);
                }
            }
        }
        let oracle = DistanceOracle::new(g, fake);
        // Routing may or may not succeed, but must terminate.
        let _ = oracle.route(0, 2);
    }
}
