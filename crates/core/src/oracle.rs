//! Distance oracles and greedy routing — the network-routing application
//! that motivates APSP in the Congested Clique (Section 1: "particularly
//! important in distributed computing due to its close connection to
//! network routing").
//!
//! After an APSP run, each node knows an estimate row δ(u, ·). A
//! [`DistanceOracle`] wraps the estimate together with the graph and
//! supports *greedy next-hop routing*: from `u` toward `v`, forward to the
//! neighbor minimizing `w(u, x) + δ(x, v)`. With exact distances this
//! follows a shortest path; with an α-approximation the detour is bounded
//! in practice (measured by [`DistanceOracle::routing_quality`]).

use cc_graph::{wadd, DistMatrix, Graph, NodeId, Weight, INF};

/// A queryable distance oracle backed by an APSP estimate.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    graph: Graph,
    estimate: DistMatrix,
}

/// Outcome of routing a batch of random queries through the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingQuality {
    /// Queries attempted (connected pairs only).
    pub attempted: usize,
    /// Queries whose greedy walk reached the target.
    pub delivered: usize,
    /// Mean ratio of walked length to true distance, over delivered
    /// queries.
    pub mean_route_stretch: f64,
    /// Max ratio of walked length to true distance.
    pub max_route_stretch: f64,
}

impl DistanceOracle {
    /// Wraps a graph and an estimate of its APSP.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn new(graph: Graph, estimate: DistMatrix) -> Self {
        assert_eq!(
            graph.n(),
            estimate.n(),
            "oracle estimate dimension mismatch"
        );
        Self { graph, estimate }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The underlying estimate matrix (the serving layer reads rows from it
    /// for k-nearest queries).
    pub fn estimate(&self) -> &DistMatrix {
        &self.estimate
    }

    /// Decomposes the oracle back into its graph and estimate, without
    /// cloning either. The serving layer's delta application path uses this
    /// to take the current state out of a live entry, apply an update
    /// batch, and construct the successor oracle from the result.
    pub fn into_parts(self) -> (Graph, DistMatrix) {
        (self.graph, self.estimate)
    }

    /// The distance estimate δ(u, v).
    pub fn query(&self, u: NodeId, v: NodeId) -> Weight {
        self.estimate.get(u, v)
    }

    /// The greedy next hop from `u` toward `v`: the neighbor `x` minimizing
    /// `(w(u,x) + δ(x,v), x)`, or `None` if `u` is isolated or every
    /// neighbor estimates `v` as unreachable.
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.graph
            .neighbors(u)
            .map(|(x, w)| (wadd(w, self.estimate.get(x, v)), x))
            .filter(|&(cost, _)| cost < INF)
            .min()
            .map(|(_, x)| x)
    }

    /// Routes greedily from `u` to `v`: at each step, forward to the best
    /// **unvisited** neighbor by `w(u,x) + δ(x,v)` (excluding visited nodes
    /// guarantees termination even when the approximate estimate would
    /// create a loop). Gives up when stuck; returns the node sequence on
    /// success.
    ///
    /// Guaranteed to terminate within `n` steps for *any* estimate, however
    /// misleading: every step visits a fresh node, so the walk either
    /// reaches `v`, or runs out of unvisited neighbors (a dead end or an
    /// unreachable target, e.g. `δ(·,v) = ∞` everywhere) and returns
    /// `None` — it can never loop. `u == v` is the trivial one-node route.
    pub fn route(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        if u == v {
            return Some(vec![u]);
        }
        let n = self.graph.n();
        let mut path = vec![u];
        let mut visited = vec![false; n];
        visited[u] = true;
        let mut cur = u;
        while cur != v {
            debug_assert!(path.len() <= n, "visited-set invariant violated");
            let next = self
                .graph
                .neighbors(cur)
                .filter(|&(x, _)| !visited[x])
                .map(|(x, w)| (wadd(w, self.estimate.get(x, v)), x))
                .filter(|&(cost, _)| cost < INF)
                .min()
                .map(|(_, x)| x)?;
            visited[next] = true;
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Measures greedy-routing quality over all ordered connected pairs of a
    /// deterministic sample (every `stride`-th pair), comparing walked
    /// length to exact distance.
    pub fn routing_quality(&self, exact: &DistMatrix, stride: usize) -> RoutingQuality {
        let n = self.graph.n();
        let stride = stride.max(1);
        let mut attempted = 0;
        let mut delivered = 0;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        let mut counter = 0usize;
        for u in 0..n {
            for v in 0..n {
                if u == v || exact.get(u, v) >= INF {
                    continue;
                }
                counter += 1;
                if !counter.is_multiple_of(stride) {
                    continue;
                }
                attempted += 1;
                if let Some(path) = self.route(u, v) {
                    let length: Weight = path
                        .windows(2)
                        .map(|p| {
                            self.graph
                                .edge_weight(p[0], p[1])
                                .expect("route uses real edges")
                        })
                        .sum();
                    delivered += 1;
                    let ratio = length as f64 / exact.get(u, v) as f64;
                    sum += ratio;
                    max = max.max(ratio);
                }
            }
        }
        RoutingQuality {
            attempted,
            delivered,
            mean_route_stretch: if delivered > 0 {
                sum / delivered as f64
            } else {
                0.0
            },
            max_route_stretch: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::graph::Direction;
    use cc_graph::{apsp, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometric(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_geometric(n, 0.3, 50, &mut rng)
    }

    #[test]
    fn exact_oracle_routes_along_shortest_paths() {
        let g = geometric(40, 1);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g.clone(), exact.clone());
        let q = oracle.routing_quality(&exact, 7);
        assert_eq!(q.attempted, q.delivered);
        assert!((q.max_route_stretch - 1.0).abs() < 1e-9, "{q:?}");
    }

    #[test]
    fn approximate_oracle_delivers_with_bounded_detour() {
        let g = geometric(50, 2);
        let exact = apsp::exact_apsp(&g);
        let result = crate::pipeline::approximate_apsp(
            &g,
            &crate::pipeline::PipelineConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let oracle = DistanceOracle::new(g, result.estimate);
        let q = oracle.routing_quality(&exact, 5);
        // Most queries should deliver, and detours stay modest on geometric
        // graphs.
        assert!(q.delivered * 10 >= q.attempted * 8, "{q:?}");
        assert!(q.max_route_stretch < 20.0, "{q:?}");
    }

    #[test]
    fn into_parts_round_trips() {
        let g = geometric(12, 4);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g.clone(), exact.clone());
        let (g2, e2) = oracle.into_parts();
        assert_eq!(g2, g);
        assert_eq!(e2, exact);
    }

    #[test]
    fn next_hop_none_for_isolated_node() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.next_hop(2, 0), None);
        assert_eq!(oracle.route(2, 0), None);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let g = geometric(10, 3);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(4, 4), Some(vec![4]));
    }

    #[test]
    fn route_to_self_works_even_for_isolated_nodes() {
        // u == v must be the trivial route regardless of connectivity.
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        let exact = apsp::exact_apsp(&g);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(2, 2), Some(vec![2]));
        assert_eq!(oracle.route(0, 0), Some(vec![0]));
    }

    #[test]
    fn disconnected_pair_with_inf_estimate_returns_none() {
        // Two components; every neighbor estimates the far side as INF, so
        // the very first step finds no candidate.
        let g = Graph::from_edges(
            6,
            Direction::Undirected,
            &[(0, 1, 2), (1, 2, 3), (3, 4, 1), (4, 5, 1)],
        );
        let exact = apsp::exact_apsp(&g);
        assert_eq!(exact.get(0, 5), INF);
        let oracle = DistanceOracle::new(g, exact);
        assert_eq!(oracle.route(0, 5), None);
        assert_eq!(oracle.route(5, 0), None);
        assert_eq!(oracle.next_hop(0, 5), None);
    }

    #[test]
    fn lying_estimate_into_a_dead_end_returns_none() {
        // δ(1, 3) = 0 lies: greedy routing from 0 toward 3 prefers the
        // dead-end node 1 over the real path through 2, then has no
        // unvisited neighbor left and must give up (not loop back).
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1), (0, 2, 1), (2, 3, 1)]);
        let mut fake = DistMatrix::infinite(4);
        fake.set(1, 3, 0);
        fake.set(2, 3, 5);
        fake.set(3, 3, 0);
        let oracle = DistanceOracle::new(g, fake);
        assert_eq!(oracle.route(0, 3), None);
    }

    #[test]
    fn cyclic_estimate_terminates_with_distinct_path_nodes() {
        // A constant all-ones estimate on a cycle is the classic greedy
        // loop bait; the visited set must bound the walk by n distinct
        // nodes whatever happens.
        let n = 8;
        let edges: Vec<(usize, usize, u64)> = (0..n).map(|i| (i, (i + 1) % n, 1)).collect();
        let g = Graph::from_edges(n, Direction::Undirected, &edges);
        let mut fake = DistMatrix::infinite(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    fake.set(u, v, 1);
                }
            }
        }
        let oracle = DistanceOracle::new(g, fake);
        for target in 0..n {
            if let Some(path) = oracle.route(0, target) {
                assert!(path.len() <= n, "path too long: {path:?}");
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), path.len(), "revisit in {path:?}");
            }
        }
    }

    #[test]
    fn misleading_estimate_detected_as_loop_or_dead_end() {
        // An estimate claiming everything is at distance 1 everywhere makes
        // greedy routing walk to the ID-smallest neighbor forever; the
        // visited-set guard must catch it rather than hang.
        let g = Graph::from_edges(
            4,
            Direction::Undirected,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)],
        );
        let mut fake = DistMatrix::infinite(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    fake.set(u, v, 1);
                }
            }
        }
        let oracle = DistanceOracle::new(g, fake);
        // Routing may or may not succeed, but must terminate.
        let _ = oracle.route(0, 2);
    }
}
