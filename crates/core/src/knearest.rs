//! Fast computation of the k-nearest nodes (Section 5).
//!
//! Lemma 5.1: for `k ∈ O(n^(1/h))`, every node can learn its `k` nearest
//! nodes **under h-hop distances** in `O(1)` rounds. Iterating (Lemma 5.2)
//! gives `h^i`-hop k-nearest in `O(i)` rounds, and applying that to `G ∪ H`
//! for a k-nearest `h^i`-hopset `H` yields exact k-nearest distances
//! (Lemma 3.3).
//!
//! The engine is *filtered matrix multiplication*: keep only the `k` smallest
//! entries per row (`Ā`, see [`cc_matrix::filtered`]) — Lemma 5.5 shows
//! filtering commutes with tropical powers. The distributed algorithm
//! (Section 5.2):
//!
//! 1. every node contributes its filtered row to a global ordered list `M`
//!    of `nk` arcs;
//! 2. `M` is cut into `p = ⌊n^(1/h)·h/4⌋` contiguous **bins**;
//! 3. each of the `h·C(p,h) ≤ n` **h-combinations** (an ordered first bin
//!    plus `h−1` unordered others) is assigned to a node, which learns all
//!    arcs in its bins;
//! 4. a combination node computes, for every node `u` owning an arc in its
//!    *first* bin, the `k` nearest nodes within `h` hops over its arcs, and
//!    sends them to `u`; `u` merges the responses.
//!
//! Every `≤h`-hop path's arcs live in some combination whose first bin holds
//! the path's first arc (owned by the path's source), so the merge recovers
//! exactly `filter_k(Ā^h)` (Lemma 5.4).

use cc_graph::{wadd, Graph, NodeId, Weight, INF};
use cc_matrix::filtered::{select_k_smallest, FilteredMatrix};
use clique_sim::Clique;

/// The bin/combination geometry for one invocation of Lemma 5.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinPlan {
    /// Number of bins `p`.
    pub bins: usize,
    /// Bin size `s = ⌈nk/p⌉` (positions per bin).
    pub bin_size: usize,
    /// All h-combinations: `(first_bin, other_bins)`; index = assigned node.
    pub combinations: Vec<(usize, Vec<usize>)>,
}

/// Computes the bin plan, shrinking `p` if needed so the combination count
/// fits in `n` (the paper proves `h·C(p,h) ≤ n` for `p = ⌊n^(1/h)·h/4⌋`; the
/// shrink only triggers at tiny `n`). Returns `None` when the preconditions
/// cannot be met (`p < h` or bin size ≤ k), in which case callers fall back
/// to broadcasting (the paper's remark: those cases force `k ∈ O(1)`).
pub fn plan_bins(n: usize, k: usize, h: usize) -> Option<BinPlan> {
    assert!(h >= 1 && k >= 1 && n >= 1);
    let mut p = ((n as f64).powf(1.0 / h as f64) * h as f64 / 4.0).floor() as usize;
    loop {
        if p < h {
            return None;
        }
        match combination_count(p, h, n as u128) {
            Some(count) if count <= n as u128 => break,
            _ => p -= 1,
        }
    }
    let bin_size = (n * k).div_ceil(p);
    if bin_size <= k {
        return None;
    }
    let mut combinations = Vec::new();
    let mut rest = Vec::with_capacity(h.saturating_sub(1));
    for first in 0..p {
        enumerate_subsets(p, first, h - 1, 0, &mut rest, &mut combinations);
    }
    Some(BinPlan {
        bins: p,
        bin_size,
        combinations,
    })
}

/// `h · C(p, h) = p · C(p-1, h-1)`, capped at `limit+1` to avoid overflow.
fn combination_count(p: usize, h: usize, limit: u128) -> Option<u128> {
    if h == 0 || p < h {
        return Some(0);
    }
    // p * C(p-1, h-1)
    let mut count: u128 = p as u128;
    let (mut num, mut den) = (1u128, 1u128);
    for j in 0..(h - 1) {
        num = num.checked_mul((p - 1 - j) as u128)?;
        den = den.checked_mul((j + 1) as u128)?;
        if num / den > limit.saturating_mul(2) {
            return None; // far beyond any usable count
        }
    }
    count = count.checked_mul(num / den)?;
    Some(count)
}

fn enumerate_subsets(
    p: usize,
    first: usize,
    remaining: usize,
    start: usize,
    rest: &mut Vec<usize>,
    out: &mut Vec<(usize, Vec<usize>)>,
) {
    if remaining == 0 {
        out.push((first, rest.clone()));
        return;
    }
    for b in start..p {
        if b == first {
            continue;
        }
        rest.push(b);
        enumerate_subsets(p, first, remaining - 1, b + 1, rest, out);
        rest.pop();
    }
}

/// Scratch buffers for hop-limited Bellman–Ford reused across sources.
struct BfScratch {
    cur: Vec<Weight>,
    next: Vec<Weight>,
    touched: Vec<NodeId>,
}

impl BfScratch {
    fn new(n: usize) -> Self {
        Self {
            cur: vec![INF; n],
            next: vec![INF; n],
            touched: Vec::new(),
        }
    }

    /// Exact `≤h`-hop distances from `src` over `arcs`; returns the `k`
    /// smallest `(node, dist)` by `(dist, node)`.
    fn k_nearest_h_hops(
        &mut self,
        arcs: &[(NodeId, NodeId, Weight)],
        src: NodeId,
        h: usize,
        k: usize,
    ) -> Vec<(NodeId, Weight)> {
        self.cur[src] = 0;
        self.next[src] = 0;
        self.touched.push(src);
        for _ in 0..h {
            let mut changed = false;
            for &(u, v, w) in arcs {
                let du = self.cur[u];
                if du >= INF {
                    continue;
                }
                let cand = wadd(du, w);
                if cand < self.next[v] {
                    if self.next[v] == INF && self.cur[v] == INF {
                        self.touched.push(v);
                    }
                    self.next[v] = cand;
                    changed = true;
                }
            }
            for &t in &self.touched {
                self.cur[t] = self.next[t];
            }
            if !changed {
                break;
            }
        }
        let result = select_k_smallest(self.touched.iter().map(|&t| (t, self.cur[t])), k);
        for &t in &self.touched {
            self.cur[t] = INF;
            self.next[t] = INF;
        }
        self.touched.clear();
        result
    }
}

/// One application of Lemma 5.1: from the filtered matrix `abar` (= `Ā`),
/// computes `filter_k(Ā^h)` — each node's `k` nearest under `h`-hop
/// distances of `Ā` — in `O(1)` charged rounds.
pub fn one_round(clique: &mut Clique, abar: &FilteredMatrix, h: usize) -> FilteredMatrix {
    let n = abar.n();
    let k = abar.k();
    assert_eq!(clique.n(), n, "clique size must match matrix dimension");
    clique.phase("knearest-round", |clique| match plan_bins(n, k, h) {
        Some(plan) => one_round_binned(clique, abar, h, &plan),
        None => one_round_broadcast(clique, abar, h),
    })
}

/// Fallback for the degenerate parameter regimes (`p < h` or bin ≤ k, both
/// forcing `k ∈ O(1)`): every node broadcasts its `k` arcs and computes its
/// row locally. Charge: all-broadcast of `2k` words per node.
fn one_round_broadcast(clique: &mut Clique, abar: &FilteredMatrix, h: usize) -> FilteredMatrix {
    let n = abar.n();
    let k = abar.k();
    let per_node: Vec<usize> = (0..n).map(|u| 2 * abar.row(u).len()).collect();
    clique.broadcast_all("knearest-fallback-broadcast", &per_node);
    let arcs: Vec<(NodeId, NodeId, Weight)> = abar.arcs().collect();
    let mut scratch = BfScratch::new(n);
    let rows: Vec<Vec<(NodeId, Weight)>> = (0..n)
        .map(|u| scratch.k_nearest_h_hops(&arcs, u, h, k))
        .collect();
    FilteredMatrix::from_rows(n, k, rows)
}

fn one_round_binned(
    clique: &mut Clique,
    abar: &FilteredMatrix,
    h: usize,
    plan: &BinPlan,
) -> FilteredMatrix {
    let n = abar.n();
    let k = abar.k();
    let s = plan.bin_size;

    // Global list M: rows padded to exactly k entries with (u, u, 0)
    // self-arcs (harmless zero self-loops) so positions are computable.
    let mut m_list: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(n * k);
    for u in 0..n {
        let row = abar.row(u);
        for &(v, w) in row {
            m_list.push((u, v, w));
        }
        for _ in row.len()..k {
            m_list.push((u, u, 0));
        }
    }

    // --- Step 3 charge: combination nodes learn their bins. ---
    // copies[j] = how many combinations include bin j.
    let mut copies = vec![0usize; plan.bins];
    for (first, rest) in &plan.combinations {
        copies[*first] += 1;
        for &b in rest {
            copies[b] += 1;
        }
    }
    let mut send = vec![0usize; n];
    let mut recv = vec![0usize; n];
    for (j, &c) in copies.iter().enumerate() {
        let lo = j * s;
        let hi = ((j + 1) * s).min(n * k);
        for pos in lo..hi {
            send[pos / k] += 2 * c;
        }
    }
    for (idx, (first, rest)) in plan.combinations.iter().enumerate() {
        let mut words = 0;
        for &b in std::iter::once(first).chain(rest.iter()) {
            let lo = b * s;
            let hi = ((b + 1) * s).min(n * k);
            words += 2 * (hi - lo);
        }
        recv[idx] += words;
    }
    clique.charge_route_by_loads("knearest-bin-transfer", &send, &recv);

    // --- Local work at each combination node + Step 4 response charge. ---
    let mut responses: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
    let mut resp_send = vec![0usize; n];
    let mut resp_recv = vec![0usize; n];
    let mut scratch = BfScratch::new(n);
    let mut arcs: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    for (idx, (first, rest)) in plan.combinations.iter().enumerate() {
        arcs.clear();
        for &b in std::iter::once(first).chain(rest.iter()) {
            let lo = b * s;
            let hi = ((b + 1) * s).min(n * k);
            arcs.extend_from_slice(&m_list[lo..hi]);
        }
        // Sources: owners of positions in the first bin.
        let lo = first * s;
        let hi = ((first + 1) * s).min(n * k);
        if lo >= hi {
            continue;
        }
        let src_lo = lo / k;
        let src_hi = (hi - 1) / k;
        for u in src_lo..=src_hi {
            let found = scratch.k_nearest_h_hops(&arcs, u, h, k);
            resp_send[idx] += 2 * found.len();
            resp_recv[u] += 2 * found.len();
            responses[u].extend(found);
        }
    }
    clique.charge_route_by_loads("knearest-responses", &resp_send, &resp_recv);

    // --- Merge at each node: own row ∪ responses, keep k smallest. ---
    let rows: Vec<Vec<(NodeId, Weight)>> = (0..n)
        .map(|u| {
            let own = abar.row(u).iter().copied();
            select_k_smallest(own.chain(responses[u].iter().copied()), k)
        })
        .collect();
    FilteredMatrix::from_rows(n, k, rows)
}

/// Lemma 5.2: `i` applications of [`one_round`], yielding each node's `k`
/// nearest under `h^i`-hop distances, in `O(i)` charged rounds.
pub fn iterated(
    clique: &mut Clique,
    start: &FilteredMatrix,
    h: usize,
    iterations: usize,
) -> FilteredMatrix {
    let mut cur = start.clone();
    for _ in 0..iterations {
        cur = one_round(clique, &cur, h);
    }
    cur
}

/// Lemma 3.3: given `G ∪ H` for a k-nearest `h^i`-hopset `H`, computes each
/// node's **exact** distances to its `k` nearest nodes in `O(i)` rounds.
///
/// The returned rows are `(node, exact distance)` sorted by
/// `(distance, id)`; row `u` contains `u` itself at distance 0.
pub fn k_nearest_exact(
    clique: &mut Clique,
    combined: &Graph,
    k: usize,
    h: usize,
    iterations: usize,
) -> FilteredMatrix {
    let start = FilteredMatrix::from_graph(combined, k);
    iterated(clique, &start, h, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::graph::Direction;
    use cc_graph::{generators, sssp};
    use cc_matrix::dense::adjacency_matrix;
    use cc_matrix::filtered::filtered_power_reference;
    use clique_sim::Bandwidth;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clique_for(n: usize) -> Clique {
        Clique::new(n, Bandwidth::standard(n))
    }

    fn random_digraph(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p) {
                    edges.push((u, v, rng.gen_range(1..40u64)));
                }
            }
        }
        Graph::from_edges(n, Direction::Directed, &edges)
    }

    #[test]
    fn plan_bins_combination_count_fits_n() {
        for (n, k, h) in [(1024, 32, 2), (1024, 10, 3), (256, 16, 2), (4096, 8, 4)] {
            if let Some(plan) = plan_bins(n, k, h) {
                assert!(plan.combinations.len() <= n, "n={n} k={k} h={h}");
                assert!(plan.bins >= h);
                assert!(plan.bin_size > k);
            }
        }
    }

    #[test]
    fn plan_bins_none_for_degenerate_params() {
        // Tiny n with big h: p < h.
        assert!(plan_bins(8, 2, 5).is_none());
    }

    #[test]
    fn combinations_are_distinct_and_well_formed() {
        let plan = plan_bins(512, 22, 2).expect("plan");
        let mut seen = std::collections::HashSet::new();
        for (first, rest) in &plan.combinations {
            assert!(!rest.contains(first));
            let mut sorted = rest.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, rest, "rest must be sorted (canonical)");
            assert!(seen.insert((*first, rest.clone())), "duplicate combination");
        }
    }

    /// Lemma 5.1: the distributed algorithm computes exactly filter_k(Ā^h).
    #[test]
    fn one_round_matches_filtered_power() {
        for seed in 0..4 {
            let n = 60;
            let k = 5;
            let h = 2;
            let g = random_digraph(n, 0.15, seed);
            let abar = FilteredMatrix::from_graph(&g, k);
            let mut clique = clique_for(n);
            let out = one_round(&mut clique, &abar, h);
            let expect = filtered_power_reference(&abar.to_dense(), k, h as u64);
            assert_eq!(out, expect, "seed={seed}");
        }
    }

    #[test]
    fn one_round_broadcast_fallback_matches_reference() {
        let n = 30;
        let k = 2;
        let h = 6; // forces fallback: p < h at this n
        assert!(plan_bins(n, k, h).is_none());
        let g = random_digraph(n, 0.2, 9);
        let abar = FilteredMatrix::from_graph(&g, k);
        let mut clique = clique_for(n);
        let out = one_round(&mut clique, &abar, h);
        let expect = filtered_power_reference(&abar.to_dense(), k, h as u64);
        assert_eq!(out, expect);
    }

    /// Lemma 5.2 + Lemma 5.5: i iterations give filter_k(A^(h^i)).
    #[test]
    fn iterated_matches_power_of_original_matrix() {
        let n = 48;
        let k = 4;
        let h = 2;
        let i = 3; // h^i = 8 hops
        let g = random_digraph(n, 0.12, 5);
        let start = FilteredMatrix::from_graph(&g, k);
        let mut clique = clique_for(n);
        let out = iterated(&mut clique, &start, h, i);
        let a = adjacency_matrix(&g);
        let expect = filtered_power_reference(&a, k, (h as u64).pow(i as u32));
        assert_eq!(out, expect);
    }

    /// Lemma 3.3: with enough hops, rows hold exact k-nearest distances.
    #[test]
    fn k_nearest_exact_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp_connected(50, 0.1, 1..=25, &mut rng);
        let k = 6;
        // Any k-nearest node is within k hops; h=2, i=ceil(log2 k)=3 ⇒ 8 ≥ 6.
        let mut clique = clique_for(g.n());
        let out = k_nearest_exact(&mut clique, &g, k, 2, 3);
        for u in 0..g.n() {
            let expect = sssp::k_nearest(&g, u, k);
            assert_eq!(out.row(u), &expect[..], "node {u}");
        }
    }

    #[test]
    fn rounds_scale_linearly_in_iterations() {
        let g = random_digraph(64, 0.1, 8);
        let start = FilteredMatrix::from_graph(&g, 4);
        let mut c1 = clique_for(64);
        iterated(&mut c1, &start, 2, 1);
        let mut c3 = clique_for(64);
        iterated(&mut c3, &start, 2, 3);
        assert!(c3.rounds() <= 3 * c1.rounds() + 3);
        assert!(c3.rounds() >= c1.rounds());
    }

    #[test]
    fn per_node_receive_load_is_linear() {
        // The lemma's requirement: every routing step has O(n) receive load.
        let n = 256;
        let k = 16; // = n^(1/2)
        let g = random_digraph(n, 0.05, 4);
        let abar = FilteredMatrix::from_graph(&g, k);
        let mut clique = clique_for(n);
        let plan = plan_bins(n, k, 2).expect("plan exists");
        let out = one_round_binned(&mut clique, &abar, 2, &plan);
        assert_eq!(out.n(), n);
        // Check ledger: each routing event charged O(1) rounds for n-load.
        for ev in clique.ledger().events() {
            assert!(
                ev.rounds <= 16,
                "event {} charged {} rounds",
                ev.label,
                ev.rounds
            );
        }
    }

    #[test]
    fn self_distance_is_zero_in_output() {
        let g = random_digraph(40, 0.1, 6);
        let mut clique = clique_for(40);
        let out = k_nearest_exact(&mut clique, &g, 4, 2, 2);
        for u in 0..40 {
            assert!(out.row(u).contains(&(u, 0)), "node {u} missing (u, 0)");
        }
    }
}
