//! The `ccapsp serve` daemon: a multi-client TCP front end over
//! [`OracleService`], built on std networking only.
//!
//! # Architecture
//!
//! ```text
//! listener ──accept──▶ per-connection reader thread ──jobs──▶ batcher thread
//!                          │        ▲                            │
//!                          │        └── direct replies           │ run_batch
//!                          ▼                                     ▼
//!                      writer thread ◀──────── demuxed replies ──┘
//! ```
//!
//! * **Reader threads** decode frames ([`crate::wire`]) with a polling read
//!   (200 ms socket timeout + stop-flag check), so a half-sent frame can
//!   never hang shutdown. Query batches are enqueued to the batcher;
//!   metrics/info/admin frames are answered inline.
//! * **The batcher** coalesces whatever jobs are queued (up to
//!   [`ServerConfig::batch_max`] queries) into single
//!   [`OracleService::run_batch`] calls under a read lock — concurrent
//!   clients' queries share one parallel sweep — and demultiplexes the
//!   responses back to each connection's writer in request order.
//! * **Admission control**: the job queue is a bounded channel; when it is
//!   full the reader answers [`Reply::Overload`] immediately instead of
//!   buffering without limit.
//! * **Slow readers**: each connection's outbound frames go through a
//!   bounded writer queue; a client that stops draining its socket gets
//!   disconnected rather than wedging the batcher.
//! * **Blue/green swaps**: [`Request::ApplyDelta`] / `SwapSnapshot` take
//!   the service write lock, which waits for the in-flight batch and then
//!   bumps the version in place — queued queries run against the new
//!   version, none are dropped.
//! * **Shutdown** ([`Request::Shutdown`] or [`ServerHandle::shutdown`])
//!   sets a stop flag, unblocks `accept` with a self-connection, drains the
//!   job queue, and joins every thread — in-flight queries are answered,
//!   not dropped.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use cc_par::ExecPolicy;

use crate::service::{OracleService, Query, SnapshotId};
use crate::snapshot::Snapshot;
use crate::telemetry::{prometheus_text, ServeTelemetry};
use crate::wire::{self, Frame, Reply, Request, ServeInfo, WireError};

/// How often blocked reads/receives re-check the stop flag.
const POLL: Duration = Duration::from_millis(200);

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Thread policy for the batched query sweeps.
    pub exec: ExecPolicy,
    /// Bounded job-queue depth (pending batch requests across all
    /// connections); a full queue answers [`Reply::Overload`].
    pub queue_cap: usize,
    /// Maximum queries coalesced into one `run_batch` call.
    pub batch_max: usize,
    /// Per-frame payload cap in bytes ([`wire::DEFAULT_FRAME_CAP`]).
    pub frame_cap: u64,
    /// Bounded per-connection outbound queue (frames); a slow reader that
    /// fills it is disconnected.
    pub writer_cap: usize,
    /// Slow-query threshold in microseconds for the flight-recorder log;
    /// 0 disables the slow-query log (`serve --slow-query-us`).
    pub slow_query_us: u64,
    /// When set, a second listener serves plain-HTTP `GET /metrics` with
    /// the Prometheus-style exposition (`serve --metrics-addr`); port 0
    /// binds an ephemeral port ([`ServerHandle::metrics_addr`]).
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            exec: ExecPolicy::Seq,
            queue_cap: 128,
            batch_max: 4096,
            frame_cap: wire::DEFAULT_FRAME_CAP,
            writer_cap: 128,
            slow_query_us: 0,
            metrics_addr: None,
        }
    }
}

/// Monotone serving counters, readable while the server runs and reported
/// in the metrics frame.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames successfully decoded.
    pub frames: AtomicU64,
    /// Batch jobs rejected with [`Reply::Overload`].
    pub overloads: AtomicU64,
    /// Connections dropped for protocol errors (malformed/corrupt frames).
    pub wire_errors: AtomicU64,
    /// Connections dropped for not draining their socket.
    pub slow_closes: AtomicU64,
    /// `run_batch` sweeps executed by the batcher.
    pub sweeps: AtomicU64,
    /// Queries answered through the batcher.
    pub queries: AtomicU64,
}

impl ServerStats {
    fn text(&self) -> String {
        format!(
            "server    conns={} frames={} sweeps={} queries={} overloads={} wire_errors={} slow_closes={}\n",
            self.connections.load(Ordering::Relaxed),
            self.frames.load(Ordering::Relaxed),
            self.sweeps.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.overloads.load(Ordering::Relaxed),
            self.wire_errors.load(Ordering::Relaxed),
            self.slow_closes.load(Ordering::Relaxed),
        )
    }
}

/// One enqueued batch request: the queries plus the way home.
struct Job {
    name: String,
    queries: Vec<Query>,
    reply: SyncSender<Frame>,
}

/// `RwLock` read/write with poison recovery — same rationale as
/// [`crate::service::lock_recovering`]: a panicking holder must not take
/// the whole daemon down, and the guarded service keeps its invariants at
/// every await point (swaps are all-or-nothing by construction).
fn read_recovering(l: &RwLock<OracleService>) -> std::sync::RwLockReadGuard<'_, OracleService> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_recovering(l: &RwLock<OracleService>) -> std::sync::RwLockWriteGuard<'_, OracleService> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The running daemon; see the [module docs](self). Returned by
/// [`Server::spawn`]; dropped handles leak the threads, so call
/// [`ServerHandle::shutdown`] or [`ServerHandle::wait`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    telemetry: Arc<ServeTelemetry>,
    listener_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds `addr` and starts serving `service` on background threads.
    /// `addr` may use port 0 to bind an ephemeral port; the bound address
    /// is [`ServerHandle::local_addr`].
    pub fn spawn(
        service: OracleService,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let telemetry = Arc::new(ServeTelemetry::new(cfg.slow_query_us));
        let service = Arc::new(RwLock::new(service));
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_cap);

        // The optional second listener: plain-HTTP `GET /metrics` with the
        // Prometheus-style exposition, so a stock scraper can poll without
        // speaking the wire protocol.
        let (metrics_addr, metrics_thread) = match cfg.metrics_addr {
            None => (None, None),
            Some(addr) => {
                let metrics_listener = TcpListener::bind(addr)?;
                let bound = metrics_listener.local_addr()?;
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let telemetry = Arc::clone(&telemetry);
                let service = Arc::clone(&service);
                let thread = std::thread::spawn(move || {
                    metrics_http_loop(metrics_listener, &stop, &service, &stats, &telemetry)
                });
                (Some(bound), Some(thread))
            }
        };

        let batcher_thread = {
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || batcher_loop(job_rx, &service, &stats, &telemetry, cfg))
        };

        let listener_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                for incoming in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let ctx = ConnCtx {
                        stop: Arc::clone(&stop),
                        stats: Arc::clone(&stats),
                        telemetry: Arc::clone(&telemetry),
                        service: Arc::clone(&service),
                        job_tx: job_tx.clone(),
                        cfg,
                        local_addr,
                    };
                    conns.push(std::thread::spawn(move || connection_loop(stream, ctx)));
                    // Reap finished connection threads so a long-lived
                    // server does not accumulate handles.
                    conns.retain(|h| !h.is_finished());
                }
                // Drop our job sender before joining connections: once the
                // last reader exits, the batcher sees the channel disconnect
                // (after draining) and stops.
                drop(job_tx);
                for h in conns {
                    let _ = h.join();
                }
            })
        };

        Ok(ServerHandle {
            local_addr,
            metrics_addr,
            stop,
            stats,
            telemetry,
            listener_thread: Some(listener_thread),
            batcher_thread: Some(batcher_thread),
            metrics_thread,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's monotone counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The server's live telemetry block (rolling windows, gauges, flight
    /// recorder).
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// The bound `GET /metrics` HTTP address (resolves port 0), when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Whether a stop was requested (via [`ServerHandle::shutdown`] or a
    /// [`Request::Shutdown`] frame).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests a stop and joins every server thread, draining in-flight
    /// work first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.finish();
    }

    /// Blocks until a [`Request::Shutdown`] frame stops the server, then
    /// joins every thread. This is what `ccapsp serve` parks on.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        self.finish();
    }

    fn finish(&mut self) {
        // Unblock accept: the listeners check the stop flag per iteration,
        // so one throwaway connection gets each past the blocking call.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(h) = self.listener_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_thread.take() {
            let _ = h.join();
        }
    }
}

/// Everything a connection thread needs.
struct ConnCtx {
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    telemetry: Arc<ServeTelemetry>,
    service: Arc<RwLock<OracleService>>,
    job_tx: SyncSender<Job>,
    cfg: ServerConfig,
    local_addr: SocketAddr,
}

/// Per-connection accounting, shared between the reader and writer threads
/// and reported in the connection's `conn-drop` flight event.
#[derive(Debug, Default)]
struct ConnTally {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames: AtomicU64,
}

/// An `io::Read` over a TCP stream that absorbs read timeouts: it polls
/// every [`POLL`] and fails with [`std::io::ErrorKind::ConnectionAborted`]
/// once the stop flag is set, preserving partially-read frames in the
/// caller's buffer — so neither a half-sent frame nor an idle client can
/// hang shutdown. Read bytes are tallied per connection and daemon-wide.
struct PollingReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
    tally: &'a ConnTally,
    telemetry: &'a ServeTelemetry,
}

impl Read for PollingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server stopping",
                        ));
                    }
                }
                Ok(k) => {
                    self.tally.bytes_in.fetch_add(k as u64, Ordering::Relaxed);
                    self.telemetry
                        .bytes_in
                        .fetch_add(k as u64, Ordering::Relaxed);
                    return Ok(k);
                }
                other => return other,
            }
        }
    }
}

/// Serves one client connection; see the [module docs](self).
fn connection_loop(stream: TcpStream, ctx: ConnCtx) {
    let _ = stream.set_read_timeout(Some(POLL));
    // A writer that stops draining must not wedge us forever.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    ctx.telemetry.connections_live.add(1);
    ctx.telemetry.event("conn-accept", format!("peer {peer}"));
    let tally = Arc::new(ConnTally::default());
    let (out_tx, out_rx) = std::sync::mpsc::sync_channel::<Frame>(ctx.cfg.writer_cap);
    let writer = {
        let stats = Arc::clone(&ctx.stats);
        let telemetry = Arc::clone(&ctx.telemetry);
        let tally = Arc::clone(&tally);
        std::thread::spawn(move || writer_loop(writer_stream, out_rx, &stats, &telemetry, &tally))
    };

    let mut reader = PollingReader {
        stream: &stream,
        stop: &ctx.stop,
        tally: &tally,
        telemetry: &ctx.telemetry,
    };
    loop {
        let frame = match wire::read_frame(&mut reader, ctx.cfg.frame_cap) {
            Ok(Some(frame)) => frame,
            // Clean EOF, stop-flag abort, or reset: just close.
            Ok(None) | Err(WireError::Io(_)) => break,
            Err(e) => {
                // Corrupt or malformed bytes: framing is unrecoverable, so
                // answer with a typed error frame and close.
                ctx.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                ctx.telemetry
                    .event("wire-error", format!("peer {peer}: {e}"));
                enqueue(&out_tx, Reply::Error(e.to_string()).to_frame(), &ctx);
                break;
            }
        };
        ctx.stats.frames.fetch_add(1, Ordering::Relaxed);
        tally.frames.fetch_add(1, Ordering::Relaxed);
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                ctx.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                ctx.telemetry
                    .event("wire-error", format!("peer {peer}: {e}"));
                enqueue(&out_tx, Reply::Error(e.to_string()).to_frame(), &ctx);
                break;
            }
        };
        let done = matches!(request, Request::Shutdown);
        if !handle_request(request, &ctx, &out_tx) || done {
            break;
        }
    }
    // Dropping our sender (and every enqueued Job's clone, once the batcher
    // finishes them) disconnects the writer channel; the writer flushes the
    // backlog and exits.
    drop(out_tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    ctx.telemetry.connections_live.sub(1);
    ctx.telemetry.event(
        "conn-drop",
        format!(
            "peer {peer} bytes_in={} bytes_out={} frames={}",
            tally.bytes_in.load(Ordering::Relaxed),
            tally.bytes_out.load(Ordering::Relaxed),
            tally.frames.load(Ordering::Relaxed),
        ),
    );
}

/// Best-effort enqueue onto the writer queue, keeping the occupancy gauge
/// honest: the writer decrements per frame it drains, so inc-on-success
/// here makes the gauge's high-water the queue-depth peak.
fn enqueue(out_tx: &SyncSender<Frame>, frame: Frame, ctx: &ConnCtx) -> bool {
    match out_tx.try_send(frame) {
        Ok(()) => {
            ctx.telemetry.writer_queue.add(1);
            true
        }
        Err(_) => false,
    }
}

/// Dispatches one decoded request. Returns `false` when the connection
/// should close (its outbound queue overflowed).
fn handle_request(request: Request, ctx: &ConnCtx, out_tx: &SyncSender<Frame>) -> bool {
    match request {
        Request::Batch { name, queries } => {
            ctx.stats
                .queries
                .fetch_add(queries.len() as u64, Ordering::Relaxed);
            let queued = queries.len() as u64;
            let job = Job {
                name,
                queries,
                reply: out_tx.clone(),
            };
            match ctx.job_tx.try_send(job) {
                Ok(()) => {
                    ctx.telemetry.queue_depth.add(1);
                    true
                }
                Err(TrySendError::Full(_)) => {
                    // Admission control: reject now, with the queue depth,
                    // instead of buffering without bound.
                    ctx.stats.overloads.fetch_add(1, Ordering::Relaxed);
                    ctx.telemetry.event(
                        "overload",
                        format!(
                            "rejected batch of {queued} (queue_cap={})",
                            ctx.cfg.queue_cap
                        ),
                    );
                    send_or_close(out_tx, Reply::Overload(ctx.cfg.queue_cap as u64), ctx)
                }
                Err(TrySendError::Disconnected(_)) => {
                    send_or_close(out_tx, Reply::Error("server stopping".into()), ctx)
                }
            }
        }
        Request::Metrics => {
            let text = {
                let svc = read_recovering(&ctx.service);
                svc.metrics_text()
            } + &ctx.stats.text();
            send_or_close(out_tx, Reply::Metrics(text), ctx)
        }
        Request::MetricsV2 => {
            let text = {
                let svc = read_recovering(&ctx.service);
                prometheus_text(&svc, &ctx.stats, &ctx.telemetry)
            };
            send_or_close(out_tx, Reply::MetricsV2(text), ctx)
        }
        Request::FlightDump => {
            send_or_close(out_tx, Reply::FlightDump(ctx.telemetry.flight_json()), ctx)
        }
        Request::Info { name } => {
            let svc = read_recovering(&ctx.service);
            let reply = match svc.resolve(&name) {
                None => Reply::Error(format!("no snapshot registered as {name:?}")),
                Some(id) => {
                    let (_, version) = svc.label(id);
                    let cache = svc.cache_stats(id);
                    Reply::Info(ServeInfo {
                        name,
                        version,
                        n: svc.n(id),
                        algo: svc.meta(id).algo.clone(),
                        mem_bytes: svc.estimate_mem_bytes(id),
                        cache_hits: cache.hits,
                        cache_misses: cache.misses,
                    })
                }
            };
            drop(svc);
            send_or_close(out_tx, reply, ctx)
        }
        Request::ApplyDelta { name, delta } => {
            let reply = match cc_dynamic::Delta::from_bytes(&delta) {
                Err(e) => Reply::Error(format!("cannot decode delta: {e}")),
                Ok(delta) => {
                    let mut svc = write_recovering(&ctx.service);
                    match svc.apply_delta(&name, &delta) {
                        Ok(id) => {
                            let (_, version) = svc.label(id);
                            ctx.telemetry
                                .event("delta-apply", format!("{name} now v{version}"));
                            Reply::AdminOk(format!("applied delta: {name} now v{version}"))
                        }
                        Err(e) => Reply::Error(e.to_string()),
                    }
                }
            };
            send_or_close(out_tx, reply, ctx)
        }
        Request::SwapSnapshot { name, snapshot } => {
            let reply = match Snapshot::from_bytes(&snapshot) {
                Err(e) => Reply::Error(format!("cannot decode snapshot: {e}")),
                Ok(snapshot) => {
                    let mut svc = write_recovering(&ctx.service);
                    let id = svc.register(&name, snapshot);
                    let (_, version) = svc.label(id);
                    ctx.telemetry
                        .event("snapshot-swap", format!("{name} now v{version}"));
                    Reply::AdminOk(format!("swapped snapshot: {name} now v{version}"))
                }
            };
            send_or_close(out_tx, reply, ctx)
        }
        Request::Shutdown => {
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.telemetry.event("shutdown", "client shutdown frame");
            // Unblock accept so the listeners can wind down promptly.
            let _ = TcpStream::connect(ctx.local_addr);
            if let Some(addr) = ctx.cfg.metrics_addr {
                let _ = TcpStream::connect(addr);
            }
            send_or_close(out_tx, Reply::ShutdownOk, ctx);
            false
        }
    }
}

/// Enqueues a direct reply; a full outbound queue means the client is not
/// draining its socket, so the connection closes instead of blocking.
fn send_or_close(out_tx: &SyncSender<Frame>, reply: Reply, ctx: &ConnCtx) -> bool {
    if enqueue(out_tx, reply.to_frame(), ctx) {
        true
    } else {
        ctx.stats.slow_closes.fetch_add(1, Ordering::Relaxed);
        ctx.telemetry.event("slow-close", "outbound queue full");
        false
    }
}

/// Writes queued frames until the channel disconnects or the socket dies.
fn writer_loop(
    mut stream: TcpStream,
    out_rx: Receiver<Frame>,
    stats: &ServerStats,
    telemetry: &ServeTelemetry,
    tally: &ConnTally,
) {
    while let Ok(frame) = out_rx.recv() {
        telemetry.writer_queue.sub(1);
        if wire::write_frame(&mut stream, &frame).is_err() {
            // Write timeout or reset: the peer stopped draining. Drain the
            // channel so enqueued replies drop instead of blocking senders.
            stats.slow_closes.fetch_add(1, Ordering::Relaxed);
            telemetry.event("slow-close", "write stalled; dropping backlog");
            let _ = stream.shutdown(std::net::Shutdown::Both);
            while out_rx.recv().is_ok() {
                telemetry.writer_queue.sub(1);
            }
            return;
        }
        let wrote = (wire::HEADER_LEN + frame.payload.len()) as u64;
        tally.bytes_out.fetch_add(wrote, Ordering::Relaxed);
        telemetry.bytes_out.fetch_add(wrote, Ordering::Relaxed);
    }
}

/// The batcher: coalesces queued jobs into shared `run_batch` sweeps and
/// demultiplexes the responses; see the [module docs](self).
fn batcher_loop(
    job_rx: Receiver<Job>,
    service: &RwLock<OracleService>,
    stats: &ServerStats,
    telemetry: &ServeTelemetry,
    cfg: ServerConfig,
) {
    loop {
        let first = match job_rx.recv_timeout(POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            // Every sender (connection) is gone; nothing can arrive.
            Err(RecvTimeoutError::Disconnected) => return,
        };
        telemetry.queue_depth.sub(1);
        let mut jobs = vec![first];
        let mut total: usize = jobs[0].queries.len();
        while total < cfg.batch_max {
            match job_rx.try_recv() {
                Ok(job) => {
                    telemetry.queue_depth.sub(1);
                    total += job.queries.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        // Occupancy gauge: how full this coalesced sweep was (high-water =
        // the best coalescing the batcher ever achieved).
        telemetry.batch_fill.set(total as u64);
        run_jobs(jobs, service, stats, telemetry, cfg.exec);
    }
}

/// Executes one coalesced sweep. Name resolution and node-id validation
/// happen under the *same* read lock as `run_batch`, so a concurrent
/// blue/green swap can never shear a validated batch against a different
/// snapshot.
fn run_jobs(
    jobs: Vec<Job>,
    service: &RwLock<OracleService>,
    stats: &ServerStats,
    telemetry: &ServeTelemetry,
    exec: ExecPolicy,
) {
    let svc = read_recovering(service);
    // Group job indices by resolved snapshot id; invalid jobs answer
    // immediately with a typed error.
    let mut by_id: HashMap<SnapshotId, Vec<usize>> = HashMap::new();
    let mut replies: Vec<Option<Frame>> = (0..jobs.len()).map(|_| None).collect();
    for (ji, job) in jobs.iter().enumerate() {
        let Some(id) = svc.resolve(&job.name) else {
            replies[ji] =
                Some(Reply::Error(format!("no snapshot registered as {:?}", job.name)).to_frame());
            continue;
        };
        let n = svc.n(id);
        if let Some(bad) = job.queries.iter().position(|q| {
            let (u, v) = match *q {
                Query::Dist(u, v) | Query::Route(u, v) => (u, v),
                Query::KNearest(u, _) => (u, 0),
            };
            u >= n || v >= n
        }) {
            replies[ji] = Some(
                Reply::Error(format!(
                    "query {bad} references a node out of range (n={n})"
                ))
                .to_frame(),
            );
            continue;
        }
        by_id.entry(id).or_default().push(ji);
    }
    for (id, job_idxs) in by_id {
        let all: Vec<Query> = job_idxs
            .iter()
            .flat_map(|&ji| jobs[ji].queries.iter().copied())
            .collect();
        let outcome = svc.run_batch(id, &all, exec);
        stats.sweeps.fetch_add(1, Ordering::Relaxed);
        // Rolling-window latency/QPS accounting and the slow-query log; a
        // post-pass in query order, so the windows' contents don't depend
        // on the sweep's thread interleaving.
        telemetry.record_sweep(&all, &outcome.latencies_ns);
        let mut offset = 0;
        for &ji in &job_idxs {
            let len = jobs[ji].queries.len();
            let slice = outcome.responses[offset..offset + len].to_vec();
            offset += len;
            replies[ji] = Some(Reply::Batch(slice).to_frame());
        }
    }
    drop(svc);
    for (job, reply) in jobs.into_iter().zip(replies) {
        if let Some(frame) = reply {
            // A full/closed writer queue means the connection is dying; the
            // response drops with it (the client never sees a wrong one).
            if job.reply.try_send(frame).is_ok() {
                telemetry.writer_queue.add(1);
            }
        }
    }
}

/// The `GET /metrics` HTTP responder: a deliberately tiny HTTP/1.1 server
/// over std TCP (the workspace vendors no HTTP stack) that answers every
/// request with `Connection: close`. Anything that is not a `GET /metrics`
/// gets a 404; unparseable requests get a 400. The accept loop re-checks
/// the stop flag per connection, and [`ServerHandle::finish`] unblocks it
/// with a throwaway connection, mirroring the wire listener.
fn metrics_http_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    service: &RwLock<OracleService>,
    stats: &ServerStats,
    telemetry: &ServeTelemetry,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        serve_one_scrape(stream, service, stats, telemetry);
    }
}

/// Handles one scrape connection inline (scrapes are rare and cheap; no
/// per-connection thread needed).
fn serve_one_scrape(
    mut stream: TcpStream,
    service: &RwLock<OracleService>,
    stats: &ServerStats,
    telemetry: &ServeTelemetry,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read until the header terminator, bounded: a scrape request that
    // doesn't fit 4 KiB is not a scrape request.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let request_line = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break String::from_utf8_lossy(&buf[..end]).into_owned();
        }
        if buf.len() > 4096 {
            break String::new();
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break String::new(),
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
        }
    };
    let target = request_line
        .lines()
        .next()
        .unwrap_or("")
        .split_whitespace()
        .collect::<Vec<_>>();
    let (status, body) = match target.as_slice() {
        ["GET", "/metrics", ..] => {
            let svc = read_recovering(service);
            ("200 OK", prometheus_text(&svc, stats, telemetry))
        }
        ["GET", ..] => ("404 Not Found", "only GET /metrics is served\n".into()),
        _ => ("400 Bad Request", "malformed request\n".into()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
