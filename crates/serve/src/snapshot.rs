//! Versioned binary snapshots: the servable artifact of a pipeline run.
//!
//! A [`Snapshot`] packages everything a query node needs — the graph, the
//! oracle backend (dense matrix or landmark sketch), and the run's
//! provenance ([`SnapshotMeta`]) — into a single self-validating file
//! (conventionally `*.ccsnap`):
//!
//! ```text
//! magic "CCSNAP\0\n" (8 bytes)
//! format version      u32
//! section count       u32
//! per section: tag u32 · payload length u64 · FNV-1a checksum u64 · payload
//! ```
//!
//! All integers are little-endian. Three sections are defined (graph,
//! estimate, metadata); each carries its own checksum so corruption is
//! localized in the error. Since format version 2 the estimate payload
//! opens with a backend tag byte (`0` dense matrix, `1` landmark sketch);
//! version-1 files — always dense, no tag — still load (the writer always
//! emits the current version). Serialization is canonical — the same
//! snapshot always produces the same bytes — which is what the round-trip
//! property test (`save → load → save` is bit-identical) pins down.

use cc_apsp::landmark::LandmarkSketch;
use cc_apsp::oracle::OracleBackend;
use cc_graph::graph::{Direction, Graph};
use cc_graph::{DistMatrix, NodeId, Weight};
use std::path::Path;

use crate::cursor::{Cursor, ReadError};

/// File magic: identifies a snapshot regardless of format version.
pub const MAGIC: [u8; 8] = *b"CCSNAP\0\n";

/// Current format version (tagged estimate section).
pub const FORMAT_VERSION: u32 = 2;

/// The original format: untagged, always-dense estimate section. Still
/// accepted on read; never written.
pub const LEGACY_VERSION: u32 = 1;

const SEC_GRAPH: u32 = 1;
const SEC_ESTIMATE: u32 = 2;
const SEC_META: u32 = 3;

const BACKEND_DENSE: u8 = 0;
const BACKEND_LANDMARK: u8 = 1;

/// FNV-1a 64-bit hash; the per-section checksum (and the response
/// fingerprint in [`crate::service`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Provenance of the run that produced a snapshot's estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Algorithm short-name (`thm11`, `exact`, …).
    pub algo: String,
    /// RNG seed the pipeline ran with.
    pub seed: u64,
    /// The stretch bound the run guarantees.
    pub stretch_bound: f64,
    /// Simulated Congested Clique rounds the run charged.
    pub rounds: u64,
    /// Human label of the workload (input path or generator spec).
    pub source: String,
}

/// A servable pipeline artifact: graph + oracle backend + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The graph queries are routed on.
    pub graph: Graph,
    /// The distance structure the oracle answers from: a dense APSP matrix
    /// or a landmark sketch.
    pub backend: OracleBackend,
    /// Provenance of the producing run.
    pub meta: SnapshotMeta,
}

/// Everything that can go wrong reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The input ended before a declared length was satisfied.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// Which section failed (`"graph"`, `"estimate"`, `"meta"`).
        section: &'static str,
    },
    /// Structurally invalid content (bad tag, bad dimensions, …).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a cc-serve snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {available} available"
                )
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ReadError> for SnapshotError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Truncated { needed, available } => {
                SnapshotError::Truncated { needed, available }
            }
            // A length that does not fit the platform's address space can
            // never be satisfied by real bytes — it is a crafted header,
            // not a short read.
            ReadError::LengthOverflow(v) => SnapshotError::Malformed(format!(
                "length field {v} exceeds this platform's addressable size"
            )),
            ReadError::InvalidUtf8 => SnapshotError::Malformed("non-utf8 string".into()),
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

impl Snapshot {
    /// Packages a graph and its estimate.
    ///
    /// # Panics
    ///
    /// Panics if the estimate dimension differs from the graph's node count
    /// (the same contract as [`cc_apsp::oracle::DistanceOracle::new`]).
    pub fn new(graph: Graph, estimate: DistMatrix, meta: SnapshotMeta) -> Self {
        Self::with_backend(graph, OracleBackend::Dense(estimate), meta)
    }

    /// Packages a graph and any oracle backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend dimension differs from the graph's node count.
    pub fn with_backend(graph: Graph, backend: OracleBackend, meta: SnapshotMeta) -> Self {
        assert_eq!(
            graph.n(),
            backend.n(),
            "snapshot estimate dimension mismatch"
        );
        Self {
            graph,
            backend,
            meta,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The dense estimate, when the backend is dense.
    pub fn dense_estimate(&self) -> Option<&DistMatrix> {
        self.backend.as_dense()
    }

    /// Content fingerprint of the servable state (graph + backend,
    /// excluding provenance metadata): the identity the dynamic engine's
    /// `*.ccdelta` chains are anchored to. Two snapshots with the same
    /// fingerprint answer every query identically, whatever produced them.
    /// For dense backends this is exactly the pre-backend
    /// [`cc_dynamic::state_fingerprint`], so existing delta chains stay
    /// anchored.
    pub fn state_fingerprint(&self) -> u64 {
        cc_dynamic::backend_state_fingerprint(&self.graph, &self.backend)
    }

    /// Applies a dynamic-update delta, producing the successor snapshot
    /// (same provenance metadata, updated graph and backend). The delta's
    /// base fingerprint must match [`Snapshot::state_fingerprint`], and the
    /// result is verified against the delta's recorded result fingerprint
    /// before anything is returned.
    ///
    /// # Errors
    ///
    /// See [`cc_dynamic::Delta::apply`] and
    /// [`cc_dynamic::Delta::apply_backend`].
    pub fn apply_delta(
        &self,
        delta: &cc_dynamic::Delta,
    ) -> Result<Snapshot, cc_dynamic::DeltaError> {
        let (graph, backend) = delta.apply_backend(&self.graph, &self.backend)?;
        Ok(Snapshot {
            graph,
            backend,
            meta: self.meta.clone(),
        })
    }

    /// Serializes to the canonical byte form (see the [module docs](self)).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Graph section: n, direction, edge count, (u, v, w) triples. The
        // edge list from `Graph::edges` is already deduped and sorted, so
        // rebuilding through `Graph::from_edges` reproduces the CSR exactly.
        let mut graph = Vec::new();
        put_u64(&mut graph, self.graph.n() as u64);
        graph.push(match self.graph.direction() {
            Direction::Undirected => 0,
            Direction::Directed => 1,
        });
        let edges = self.graph.edges();
        put_u64(&mut graph, edges.len() as u64);
        for (u, v, w) in edges {
            put_u64(&mut graph, u as u64);
            put_u64(&mut graph, v as u64);
            put_u64(&mut graph, w);
        }

        // Estimate section: backend tag, then the backend-specific layout.
        let mut estimate = Vec::new();
        match &self.backend {
            OracleBackend::Dense(matrix) => {
                // Dense: n then the row-major entries (the v1 layout,
                // shifted one byte by the tag).
                estimate.reserve(1 + 8 + 8 * matrix.raw().len());
                estimate.push(BACKEND_DENSE);
                put_u64(&mut estimate, matrix.n() as u64);
                for &d in matrix.raw() {
                    put_u64(&mut estimate, d);
                }
            }
            OracleBackend::Landmark(sketch) => {
                // Landmark: n, seed, landmark count L, the L landmark ids,
                // the L×n distance rows, then per vertex its bunch as a
                // count followed by (id, dist) pairs. `nearest` is derived
                // and not serialized.
                estimate.push(BACKEND_LANDMARK);
                put_u64(&mut estimate, sketch.n() as u64);
                put_u64(&mut estimate, sketch.seed());
                let landmarks = sketch.landmarks();
                put_u64(&mut estimate, landmarks.len() as u64);
                for &l in landmarks {
                    put_u64(&mut estimate, l as u64);
                }
                for i in 0..landmarks.len() {
                    for &d in sketch.landmark_row(i) {
                        put_u64(&mut estimate, d);
                    }
                }
                for u in 0..sketch.n() {
                    let bunch = sketch.bunch(u);
                    put_u64(&mut estimate, bunch.len() as u64);
                    for &(v, d) in bunch {
                        put_u64(&mut estimate, v as u64);
                        put_u64(&mut estimate, d);
                    }
                }
            }
        }

        // Meta section.
        let mut meta = Vec::new();
        put_str(&mut meta, &self.meta.algo);
        put_str(&mut meta, &self.meta.source);
        put_u64(&mut meta, self.meta.seed);
        put_u64(&mut meta, self.meta.stretch_bound.to_bits());
        put_u64(&mut meta, self.meta.rounds);

        let sections = [
            (SEC_GRAPH, graph),
            (SEC_ESTIMATE, estimate),
            (SEC_META, meta),
        ];
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, sections.len() as u32);
        for (tag, payload) in &sections {
            put_u32(&mut out, *tag);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, fnv1a(payload));
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a snapshot, validating magic, version, per-section checksums,
    /// and structural invariants.
    ///
    /// # Errors
    ///
    /// Every decoding failure maps to a specific [`SnapshotError`] variant;
    /// no input panics.
    pub fn from_bytes(data: &[u8]) -> Result<Self, SnapshotError> {
        let mut cur = Cursor::new(data);
        if cur.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u32()?;
        if version != FORMAT_VERSION && version != LEGACY_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let section_count = cur.u32()?;
        let mut graph_payload: Option<&[u8]> = None;
        let mut estimate_payload: Option<&[u8]> = None;
        let mut meta_payload: Option<&[u8]> = None;
        for _ in 0..section_count {
            let tag = cur.u32()?;
            let len = cur.len_u64()?;
            let checksum = cur.u64()?;
            let payload = cur.take(len)?;
            let (slot, name) = match tag {
                SEC_GRAPH => (&mut graph_payload, "graph"),
                SEC_ESTIMATE => (&mut estimate_payload, "estimate"),
                SEC_META => (&mut meta_payload, "meta"),
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown section tag {other}"
                    )))
                }
            };
            if fnv1a(payload) != checksum {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            if slot.replace(payload).is_some() {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate {name} section"
                )));
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the last section",
                cur.remaining()
            )));
        }
        // Decode the estimate first: its node count is self-bounding (a
        // lying n fails the per-cell reads long before any n²-sized
        // allocation). The graph decoder then validates its own n against it
        // *before* building the CSR, so no length field in the file can
        // trigger an allocation bigger than the file itself.
        let backend = decode_backend(
            estimate_payload
                .ok_or_else(|| SnapshotError::Malformed("missing estimate section".into()))?,
            version,
        )?;
        let graph = decode_graph(
            graph_payload
                .ok_or_else(|| SnapshotError::Malformed("missing graph section".into()))?,
            backend.n(),
        )?;
        let meta = decode_meta(
            meta_payload.ok_or_else(|| SnapshotError::Malformed("missing meta section".into()))?,
        )?;
        Ok(Snapshot {
            graph,
            backend,
            meta,
        })
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// I/O and decoding errors; see [`Snapshot::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data)
    }
}

fn decode_graph(payload: &[u8], expected_n: usize) -> Result<Graph, SnapshotError> {
    let mut cur = Cursor::new(payload);
    let n = cur.len_u64()?;
    if n != expected_n {
        return Err(SnapshotError::Malformed(format!(
            "graph has {n} nodes but the estimate is {expected_n}×{expected_n}"
        )));
    }
    let direction = match cur.u8()? {
        0 => Direction::Undirected,
        1 => Direction::Directed,
        other => {
            return Err(SnapshotError::Malformed(format!(
                "invalid direction byte {other}"
            )))
        }
    };
    let m = cur.len_u64()?;
    // Cap the pre-allocation by the bytes actually present (24 per edge): a
    // lying length field must surface as Truncated, not a capacity panic.
    let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(m.min(cur.remaining() / 24));
    for _ in 0..m {
        let u = cur.len_u64()?;
        let v = cur.len_u64()?;
        let w = cur.u64()?;
        if u >= n || v >= n {
            return Err(SnapshotError::Malformed(format!(
                "edge ({u}, {v}) out of range for n={n}"
            )));
        }
        edges.push((u, v, w));
    }
    if cur.remaining() != 0 {
        return Err(SnapshotError::Malformed(
            "trailing bytes in graph section".into(),
        ));
    }
    Ok(Graph::from_edges(n, direction, &edges))
}

fn decode_backend(payload: &[u8], version: u32) -> Result<OracleBackend, SnapshotError> {
    let mut cur = Cursor::new(payload);
    // Version-1 estimate sections have no tag byte and are always dense.
    let tag = if version == LEGACY_VERSION {
        BACKEND_DENSE
    } else {
        cur.u8()?
    };
    let backend = match tag {
        BACKEND_DENSE => OracleBackend::Dense(decode_dense(&mut cur)?),
        BACKEND_LANDMARK => OracleBackend::Landmark(decode_landmark(&mut cur)?),
        other => {
            return Err(SnapshotError::Malformed(format!(
                "unknown oracle backend tag {other}"
            )))
        }
    };
    if cur.remaining() != 0 {
        return Err(SnapshotError::Malformed(
            "trailing bytes in estimate section".into(),
        ));
    }
    Ok(backend)
}

fn decode_dense(cur: &mut Cursor<'_>) -> Result<DistMatrix, SnapshotError> {
    let n = cur.len_u64()?;
    let cells = n
        .checked_mul(n)
        .ok_or_else(|| SnapshotError::Malformed("estimate dimension overflows".into()))?;
    // As in decode_graph: never pre-allocate more than the payload can hold.
    let mut data = Vec::with_capacity(cells.min(cur.remaining() / 8));
    for _ in 0..cells {
        data.push(cur.u64()?);
    }
    Ok(DistMatrix::from_raw(n, data))
}

fn decode_landmark(cur: &mut Cursor<'_>) -> Result<LandmarkSketch, SnapshotError> {
    let n = cur.len_u64()?;
    let seed = cur.u64()?;
    let count = cur.len_u64()?;
    // Every pre-allocation below is capped by the bytes actually present,
    // so lying length fields surface as Truncated, never as capacity
    // panics or oversized allocations.
    let mut landmarks: Vec<NodeId> = Vec::with_capacity(count.min(cur.remaining() / 8));
    for _ in 0..count {
        landmarks.push(cur.len_u64()?);
    }
    let cells = count
        .checked_mul(n)
        .ok_or_else(|| SnapshotError::Malformed("landmark row length overflows".into()))?;
    let mut rows: Vec<Weight> = Vec::with_capacity(cells.min(cur.remaining() / 8));
    for _ in 0..cells {
        rows.push(cur.u64()?);
    }
    let mut bunches: Vec<Vec<(NodeId, Weight)>> = Vec::with_capacity(n.min(cur.remaining() / 8));
    for _ in 0..n {
        let len = cur.len_u64()?;
        let mut bunch: Vec<(NodeId, Weight)> = Vec::with_capacity(len.min(cur.remaining() / 16));
        for _ in 0..len {
            let v = cur.len_u64()?;
            let d = cur.u64()?;
            bunch.push((v, d));
        }
        bunches.push(bunch);
    }
    LandmarkSketch::from_parts(n, seed, landmarks, rows, bunches)
        .map_err(|e| SnapshotError::Malformed(format!("landmark sketch: {e}")))
}

fn decode_meta(payload: &[u8]) -> Result<SnapshotMeta, SnapshotError> {
    let mut cur = Cursor::new(payload);
    let algo = cur.str()?;
    let source = cur.str()?;
    let seed = cur.u64()?;
    let stretch_bound = f64::from_bits(cur.u64()?);
    let rounds = cur.u64()?;
    if cur.remaining() != 0 {
        return Err(SnapshotError::Malformed(
            "trailing bytes in meta section".into(),
        ));
    }
    Ok(SnapshotMeta {
        algo,
        seed,
        stretch_bound,
        rounds,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::apsp;

    fn sample() -> Snapshot {
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 3), (1, 2, 1), (2, 3, 4), (3, 4, 2), (0, 4, 9)],
        );
        let exact = apsp::exact_apsp(&g);
        Snapshot::new(
            g,
            exact,
            SnapshotMeta {
                algo: "exact".into(),
                seed: 7,
                stretch_bound: 1.0,
                rounds: 12,
                source: "unit-test".into(),
            },
        )
    }

    #[test]
    fn round_trips_through_bytes() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "canonical form must be stable");
    }

    #[test]
    fn round_trips_through_file() {
        let snap = sample();
        let path = std::env::temp_dir().join(format!("ccsnap_unit_{}.ccsnap", std::process::id()));
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, snap);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version LE low byte
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let bytes = sample().to_bytes();
        // Flip the very last byte (inside the meta payload).
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { section: "meta" })
        ));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    /// A syntactically valid frame around arbitrary section payloads (with
    /// correct checksums), for crafting adversarial inputs.
    fn frame_v(version: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, version);
        put_u32(&mut out, sections.len() as u32);
        for (tag, payload) in sections {
            put_u32(&mut out, *tag);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, fnv1a(payload));
            out.extend_from_slice(payload);
        }
        out
    }

    fn frame(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
        frame_v(FORMAT_VERSION, sections)
    }

    #[test]
    fn lying_length_fields_error_instead_of_panicking() {
        // A correctly-checksummed graph section declaring 2^60 edges with no
        // edge bytes behind it: must decode to Truncated, not abort trying
        // to pre-allocate the declared capacity.
        let mut lying_graph = Vec::new();
        put_u64(&mut lying_graph, 4); // n
        lying_graph.push(0); // undirected
        put_u64(&mut lying_graph, 1 << 60); // m — a lie
        let mut meta = Vec::new();
        put_str(&mut meta, "x");
        put_str(&mut meta, "y");
        put_u64(&mut meta, 0);
        put_u64(&mut meta, 1.0f64.to_bits());
        put_u64(&mut meta, 0);
        // A well-formed 4×4 estimate so the graph decoder's dimension check
        // passes and the lying edge count is actually reached.
        let mut ok_estimate = vec![0u8]; // dense backend tag
        put_u64(&mut ok_estimate, 4);
        for _ in 0..16 {
            put_u64(&mut ok_estimate, 0);
        }
        let bytes = frame(&[
            (SEC_GRAPH, lying_graph),
            (SEC_ESTIMATE, ok_estimate),
            (SEC_META, meta.clone()),
        ]);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));

        // Same for an estimate section declaring n = 2^31 (2^62 cells).
        let mut ok_graph = Vec::new();
        put_u64(&mut ok_graph, 4);
        ok_graph.push(0);
        put_u64(&mut ok_graph, 0);
        let mut lying_estimate = vec![0u8];
        put_u64(&mut lying_estimate, 1 << 31);
        let bytes = frame(&[
            (SEC_GRAPH, ok_graph),
            (SEC_ESTIMATE, lying_estimate),
            (SEC_META, meta.clone()),
        ]);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));

        // A graph section declaring n = 2^40 with zero edges is internally
        // consistent, but must be rejected against the estimate's (payload-
        // bounded) dimension before any n-sized allocation happens.
        let mut huge_graph = Vec::new();
        put_u64(&mut huge_graph, 1 << 40);
        huge_graph.push(0);
        put_u64(&mut huge_graph, 0);
        let mut tiny_estimate = vec![0u8];
        put_u64(&mut tiny_estimate, 1);
        put_u64(&mut tiny_estimate, 0); // the single cell
        let bytes = frame(&[
            (SEC_GRAPH, huge_graph),
            (SEC_ESTIMATE, tiny_estimate),
            (SEC_META, meta),
        ]);
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("nodes"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    fn landmark_sample() -> Snapshot {
        use cc_graph::generators;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::gnp_connected(18, 0.2, 1..=9, &mut rng);
        let sketch = LandmarkSketch::build(&g, 13, cc_par::ExecPolicy::Seq);
        Snapshot::with_backend(
            g,
            OracleBackend::Landmark(sketch),
            SnapshotMeta {
                algo: "landmark".into(),
                seed: 13,
                stretch_bound: 3.0,
                rounds: 0,
                source: "unit-test".into(),
            },
        )
    }

    #[test]
    fn landmark_snapshots_round_trip() {
        let snap = landmark_sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "canonical form must be stable");
    }

    #[test]
    fn landmark_every_truncation_point_errors_cleanly() {
        let bytes = landmark_sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn landmark_estimate_byte_flips_are_checksum_mismatches() {
        let snap = landmark_sample();
        let clean = snap.to_bytes();
        // Locate the estimate section's payload in the framed bytes and
        // flip every byte in it, one at a time.
        let mut pos = MAGIC.len() + 4 + 4;
        let (mut est_start, mut est_len) = (0usize, 0usize);
        for _ in 0..3 {
            let tag = u32::from_le_bytes(clean[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(clean[pos + 4..pos + 12].try_into().unwrap()) as usize;
            let payload_at = pos + 4 + 8 + 8;
            if tag == SEC_ESTIMATE {
                est_start = payload_at;
                est_len = len;
            }
            pos = payload_at + len;
        }
        assert!(est_len > 0, "estimate section not found");
        for off in (0..est_len).step_by(97.max(est_len / 64)) {
            let mut corrupt = clean.clone();
            corrupt[est_start + off] ^= 0x01;
            assert!(
                matches!(
                    Snapshot::from_bytes(&corrupt),
                    Err(SnapshotError::ChecksumMismatch {
                        section: "estimate"
                    })
                ),
                "flip at estimate offset {off} was not caught"
            );
        }
    }

    #[test]
    fn unknown_backend_tags_are_malformed() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        // The estimate section is the second section; find its payload's
        // first byte (the backend tag) and set it to an unknown value, then
        // re-checksum so the tag check (not the checksum) fires.
        let mut pos = MAGIC.len() + 4 + 4;
        for _ in 0..3 {
            let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
            let payload_at = pos + 4 + 8 + 8;
            if tag == SEC_ESTIMATE {
                bytes[payload_at] = 7;
                let sum = fnv1a(&bytes[payload_at..payload_at + len]);
                bytes[pos + 12..pos + 20].copy_from_slice(&sum.to_le_bytes());
                break;
            }
            pos = payload_at + len;
        }
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("backend tag"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_dense_frames_still_decode() {
        let snap = sample();
        let v2 = snap.to_bytes();
        // Rebuild the same snapshot as a version-1 file: same graph and
        // meta payloads, estimate payload without the leading tag byte.
        let mut pos = MAGIC.len() + 4 + 4;
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
        for _ in 0..3 {
            let tag = u32::from_le_bytes(v2[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(v2[pos + 4..pos + 12].try_into().unwrap()) as usize;
            let payload_at = pos + 4 + 8 + 8;
            let mut payload = v2[payload_at..payload_at + len].to_vec();
            if tag == SEC_ESTIMATE {
                payload.remove(0); // drop the v2 backend tag
            }
            sections.push((tag, payload));
            pos = payload_at + len;
        }
        let v1 = frame_v(LEGACY_VERSION, &sections);
        let back = Snapshot::from_bytes(&v1).expect("legacy decode");
        assert_eq!(back, snap);
        // Re-encoding a legacy snapshot produces the current format.
        assert_eq!(back.to_bytes(), v2);
    }

    #[test]
    fn lying_landmark_lengths_error_instead_of_panicking() {
        let mut ok_graph = Vec::new();
        put_u64(&mut ok_graph, 4);
        ok_graph.push(0);
        put_u64(&mut ok_graph, 0);
        let mut meta = Vec::new();
        put_str(&mut meta, "x");
        put_str(&mut meta, "y");
        put_u64(&mut meta, 0);
        put_u64(&mut meta, 3.0f64.to_bits());
        put_u64(&mut meta, 0);
        // A landmark estimate declaring 2^60 landmarks with no id bytes
        // behind it: Truncated, not an allocation blow-up.
        let mut lying = vec![1u8]; // landmark backend tag
        put_u64(&mut lying, 4); // n
        put_u64(&mut lying, 0); // seed
        put_u64(&mut lying, 1 << 60); // landmark count — a lie
        let bytes = frame(&[
            (SEC_GRAPH, ok_graph.clone()),
            (SEC_ESTIMATE, lying),
            (SEC_META, meta.clone()),
        ]);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));

        // Structurally complete but invalid content (landmark id out of
        // range) must be Malformed via the sketch validator.
        let mut bad = vec![1u8];
        put_u64(&mut bad, 4); // n
        put_u64(&mut bad, 0); // seed
        put_u64(&mut bad, 1); // one landmark
        put_u64(&mut bad, 9); // id 9 out of range for n=4
        for _ in 0..4 {
            put_u64(&mut bad, 0); // its row
        }
        for _ in 0..4 {
            put_u64(&mut bad, 0); // empty bunches
        }
        let bytes = frame(&[(SEC_GRAPH, ok_graph), (SEC_ESTIMATE, bad), (SEC_META, meta)]);
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::Malformed(msg)) => {
                assert!(msg.contains("landmark sketch"), "{msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        let truncated = SnapshotError::Truncated {
            needed: 8,
            available: 3,
        };
        assert!(truncated.to_string().contains("truncated"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(SnapshotError::ChecksumMismatch { section: "graph" }
            .to_string()
            .contains("graph"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics_at_construction() {
        let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
        Snapshot::new(
            g,
            DistMatrix::infinite(4),
            SnapshotMeta {
                algo: "x".into(),
                seed: 0,
                stretch_bound: 1.0,
                rounds: 0,
                source: String::new(),
            },
        );
    }
}
