//! Live operational telemetry for the serving daemon: the shared
//! [`ServeTelemetry`] block every server thread feeds, and the
//! Prometheus-style text exposition rendered from it.
//!
//! The block bundles the windowed instruments from [`cc_obs::window`] —
//! per-query-type [`RollingHistogram`]s (sliding QPS and latency
//! percentiles over 1 s/10 s/60 s), [`Gauge`]s for queue depths and live
//! connections, and the [`FlightRecorder`] ring of recent structured
//! events (connection accept/drop, overload rejections, delta applies,
//! slow queries over the `--slow-query-us` threshold).
//!
//! Two invariants carry over from the rest of the observability layer:
//!
//! * **Telemetry never changes an answer.** Everything here is written on
//!   the side of the serving path and read only by exposition endpoints;
//!   `tests/obs_determinism.rs` extends the fingerprint-invariance
//!   property over the network path with all of it enabled.
//! * **Deterministic windows under an injected clock.** All rolling state
//!   is keyed by milliseconds since daemon boot ([`ServeTelemetry::now_ms`]);
//!   the instruments themselves never read a wall clock, so unit and
//!   property tests drive them with synthetic timestamps.
//!
//! The exposition ([`prometheus_text`]) is the body of both the wire
//! Metrics-v2 frame ([`crate::wire::Request::MetricsV2`]) and the
//! plain-HTTP `GET /metrics` responder (`serve --metrics-addr`), so a
//! stock scraper and the wire client read the same text.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cc_obs::{FlightRecorder, Gauge, RollingHistogram};

use crate::server::ServerStats;
use crate::service::{lock_recovering, OracleService, Query, QUERY_TYPE_NAMES};

/// Epoch width of the rolling rings: 1 s buckets.
pub const EPOCH_MS: u64 = 1_000;

/// Ring length: 64 one-second epochs, covering the longest (60 s) window.
pub const EPOCH_SLOTS: usize = 64;

/// Flight-recorder capacity: the last N structured events.
pub const FLIGHT_CAP: usize = 256;

/// The windows the exposition derives rates over, label → milliseconds.
pub const QPS_WINDOWS: [(&str, u64); 3] = [("1s", 1_000), ("10s", 10_000), ("60s", 60_000)];

/// Rolling per-type latency state, guarded by one mutex (only the batcher
/// thread writes; exposition reads are rare).
struct Rolling {
    /// Latency in nanoseconds per query type, indexed like
    /// [`QUERY_TYPE_NAMES`].
    per_type: [RollingHistogram; 3],
    /// Largest single-epoch (1 s) query count ever observed — the
    /// `qps_1s_peak` the net bench records.
    peak_epoch_queries: u64,
}

/// The daemon's live telemetry block, shared by the listener, every
/// connection thread, the batcher, and the exposition endpoints.
pub struct ServeTelemetry {
    t0: Instant,
    /// Slow-query threshold in microseconds; 0 disables the slow-query log.
    pub slow_query_us: u64,
    rolling: Mutex<Rolling>,
    /// Ring of recent structured events, dumped by `serve-admin
    /// flight-dump`.
    pub flight: FlightRecorder,
    /// Live (currently open) client connections.
    pub connections_live: Gauge,
    /// Jobs sitting in the batcher queue right now (high-water = depth
    /// peak).
    pub queue_depth: Gauge,
    /// Frames queued across all per-connection writer queues.
    pub writer_queue: Gauge,
    /// Queries coalesced into the most recent batcher sweep (high-water =
    /// occupancy peak).
    pub batch_fill: Gauge,
    /// Total bytes read from client sockets.
    pub bytes_in: AtomicU64,
    /// Total bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// Queries slower than the threshold.
    pub slow_queries: AtomicU64,
}

impl std::fmt::Debug for ServeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTelemetry")
            .field("slow_query_us", &self.slow_query_us)
            .field("flight_events", &self.flight.recorded())
            .finish()
    }
}

impl ServeTelemetry {
    /// A fresh block; `slow_query_us == 0` disables the slow-query log.
    pub fn new(slow_query_us: u64) -> Self {
        Self {
            t0: Instant::now(),
            slow_query_us,
            rolling: Mutex::new(Rolling {
                per_type: std::array::from_fn(|_| RollingHistogram::new(EPOCH_MS, EPOCH_SLOTS)),
                peak_epoch_queries: 0,
            }),
            flight: FlightRecorder::new(FLIGHT_CAP),
            connections_live: Gauge::new(),
            queue_depth: Gauge::new(),
            writer_queue: Gauge::new(),
            batch_fill: Gauge::new(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            slow_queries: AtomicU64::new(0),
        }
    }

    /// Milliseconds since daemon boot — the injected clock every windowed
    /// instrument in this block is driven by.
    pub fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Seconds since daemon boot.
    pub fn uptime_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Records one sweep's per-query latencies into the rolling rings and
    /// the slow-query log. Called by the batcher after `run_batch`, in
    /// query order.
    pub fn record_sweep(&self, queries: &[Query], latencies_ns: &[u64]) {
        let now = self.now_ms();
        {
            let mut rolling = lock_recovering(&self.rolling);
            for (q, &ns) in queries.iter().zip(latencies_ns) {
                rolling.per_type[q.type_index()].record(now, ns);
            }
            let epoch_queries: u64 = rolling
                .per_type
                .iter()
                .map(|r| r.current_epoch_count(now))
                .sum();
            rolling.peak_epoch_queries = rolling.peak_epoch_queries.max(epoch_queries);
        }
        if self.slow_query_us > 0 {
            let threshold_ns = self.slow_query_us.saturating_mul(1_000);
            for (q, &ns) in queries.iter().zip(latencies_ns) {
                if ns > threshold_ns {
                    self.slow_queries.fetch_add(1, Ordering::Relaxed);
                    self.flight.record(
                        now,
                        "slow-query",
                        format!(
                            "{} took {}us (threshold {}us)",
                            q.type_name(),
                            ns / 1_000,
                            self.slow_query_us
                        ),
                    );
                }
            }
        }
    }

    /// The largest query count any single 1 s epoch has seen, as a rate.
    pub fn qps_1s_peak(&self) -> f64 {
        lock_recovering(&self.rolling).peak_epoch_queries as f64
    }

    /// Derived QPS over a trailing window, summed across query types.
    pub fn qps(&self, window_ms: u64) -> f64 {
        let now = self.now_ms();
        let rolling = lock_recovering(&self.rolling);
        rolling
            .per_type
            .iter()
            .map(|r| r.rate_per_sec(now, window_ms))
            .sum()
    }

    /// Records a structured flight event stamped with the block's clock.
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        self.flight.record(self.now_ms(), kind, detail);
    }

    /// The flight ring as a `cc-flight/v1` JSON document.
    pub fn flight_json(&self) -> String {
        cc_obs::render_flight_json(&self.flight.snapshot())
    }
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (no exponent needed
/// for our ranges; trims to a stable short decimal).
fn prom_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders the full Prometheus-style exposition: `# TYPE`d families with
/// labels, one text body shared by the Metrics-v2 wire frame and the HTTP
/// `GET /metrics` responder. Deterministic family order; label sets ordered
/// by snapshot registration and [`QUERY_TYPE_NAMES`].
pub fn prometheus_text(svc: &OracleService, stats: &ServerStats, tel: &ServeTelemetry) -> String {
    let mut out = String::with_capacity(4096);
    let mut family = |name: &str, kind: &str, samples: &[(String, f64)]| {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for (labels, value) in samples {
            out.push_str(&format!("{name}{labels} {}\n", prom_num(*value)));
        }
    };

    // Daemon-level gauges and counters.
    family(
        "ccapsp_uptime_seconds",
        "gauge",
        &[(String::new(), tel.uptime_secs())],
    );
    let counter = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
    family(
        "ccapsp_connections_total",
        "counter",
        &[(String::new(), counter(&stats.connections))],
    );
    family(
        "ccapsp_connections_live",
        "gauge",
        &[(String::new(), tel.connections_live.get() as f64)],
    );
    family(
        "ccapsp_frames_total",
        "counter",
        &[(String::new(), counter(&stats.frames))],
    );
    family(
        "ccapsp_queries_total",
        "counter",
        &[(String::new(), counter(&stats.queries))],
    );
    family(
        "ccapsp_sweeps_total",
        "counter",
        &[(String::new(), counter(&stats.sweeps))],
    );
    family(
        "ccapsp_overloads_total",
        "counter",
        &[(String::new(), counter(&stats.overloads))],
    );
    family(
        "ccapsp_wire_errors_total",
        "counter",
        &[(String::new(), counter(&stats.wire_errors))],
    );
    family(
        "ccapsp_slow_closes_total",
        "counter",
        &[(String::new(), counter(&stats.slow_closes))],
    );
    family(
        "ccapsp_slow_queries_total",
        "counter",
        &[(String::new(), counter(&tel.slow_queries))],
    );
    family(
        "ccapsp_bytes_total",
        "counter",
        &[
            ("{direction=\"in\"}".into(), counter(&tel.bytes_in)),
            ("{direction=\"out\"}".into(), counter(&tel.bytes_out)),
        ],
    );
    family(
        "ccapsp_queue_depth",
        "gauge",
        &[(String::new(), tel.queue_depth.get() as f64)],
    );
    family(
        "ccapsp_queue_depth_high_water",
        "gauge",
        &[(String::new(), tel.queue_depth.high_water() as f64)],
    );
    family(
        "ccapsp_writer_queue_high_water",
        "gauge",
        &[(String::new(), tel.writer_queue.high_water() as f64)],
    );
    family(
        "ccapsp_batch_fill_high_water",
        "gauge",
        &[(String::new(), tel.batch_fill.high_water() as f64)],
    );
    family(
        "ccapsp_flight_events",
        "gauge",
        &[(String::new(), tel.flight.len() as f64)],
    );

    // Rolling windows: QPS per window, latency quantiles per query type.
    let qps: Vec<(String, f64)> = QPS_WINDOWS
        .iter()
        .map(|&(label, ms)| (format!("{{window=\"{label}\"}}"), tel.qps(ms)))
        .collect();
    family("ccapsp_qps", "gauge", &qps);
    family(
        "ccapsp_qps_1s_peak",
        "gauge",
        &[(String::new(), tel.qps_1s_peak())],
    );
    let now = tel.now_ms();
    let mut latency: Vec<(String, f64)> = Vec::new();
    {
        let rolling = lock_recovering(&tel.rolling);
        for (ti, name) in QUERY_TYPE_NAMES.iter().enumerate() {
            let hist = rolling.per_type[ti].window(now, 60_000);
            for &(q, qs) in &[(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                latency.push((
                    format!("{{type=\"{name}\",window=\"60s\",quantile=\"{qs}\"}}"),
                    hist.percentile(q) / 1e3,
                ));
            }
            latency.push((
                format!("{{type=\"{name}\",window=\"60s\",quantile=\"count\"}}"),
                hist.count() as f64,
            ));
        }
    }
    family("ccapsp_latency_us", "gauge", &latency);

    // Per-snapshot families: identity (with backend kind), memory
    // footprint, query counts, cache counters.
    let mut info = Vec::new();
    let mut mem = Vec::new();
    let mut by_type = Vec::new();
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for id in svc.ids() {
        let (name, version) = svc.label(id);
        let name = prom_escape(name);
        info.push((
            format!(
                "{{name=\"{name}\",version=\"{version}\",backend=\"{backend}\",algo=\"{algo}\",n=\"{n}\"}}",
                backend = svc.backend_kind(id),
                algo = prom_escape(&svc.meta(id).algo),
                n = svc.n(id),
            ),
            1.0,
        ));
        mem.push((
            format!("{{name=\"{name}\",version=\"{version}\"}}"),
            svc.estimate_mem_bytes(id) as f64,
        ));
        for (ti, stats) in svc.query_type_stats(id).iter().enumerate() {
            by_type.push((
                format!(
                    "{{name=\"{name}\",version=\"{version}\",type=\"{ty}\"}}",
                    ty = QUERY_TYPE_NAMES[ti]
                ),
                stats.count as f64,
            ));
        }
        let cache = svc.cache_stats(id);
        let labels = format!("{{name=\"{name}\",version=\"{version}\"}}");
        hits.push((labels.clone(), cache.hits as f64));
        misses.push((labels, cache.misses as f64));
    }
    family("ccapsp_snapshot_info", "gauge", &info);
    family("ccapsp_estimate_mem_bytes", "gauge", &mem);
    family("ccapsp_queries_by_type_total", "counter", &by_type);
    family("ccapsp_cache_hits_total", "counter", &hits);
    family("ccapsp_cache_misses_total", "counter", &misses);

    out
}

// ---------------------------------------------------------------------------
// Exposition parsing (for `ccapsp top`, the net bench, and tests)
// ---------------------------------------------------------------------------

/// Splits one exposition sample line into `(name, labels, value)`;
/// `labels` is the brace body (possibly empty). Returns `None` for
/// comments, blanks, and malformed lines.
fn split_sample(line: &str) -> Option<(&str, &str, f64)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}')?),
        None => (head, ""),
    };
    Some((name, labels, value))
}

/// Whether every `key="value"` pair in `want` appears in a label body.
fn labels_match(body: &str, want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| body.contains(&format!("{k}=\"{v}\"")))
}

/// The first sample of `family` whose labels contain every pair in
/// `labels`. This is the tiny exposition parser `ccapsp top` and the net
/// bench use — it handles exactly the grammar [`prometheus_text`] emits.
pub fn prom_value(text: &str, family: &str, labels: &[(&str, &str)]) -> Option<f64> {
    text.lines().find_map(|line| {
        let (name, body, value) = split_sample(line)?;
        (name == family && labels_match(body, labels)).then_some(value)
    })
}

/// The sum of every sample of `family` (across all label sets).
pub fn prom_sum(text: &str, family: &str) -> f64 {
    text.lines()
        .filter_map(split_sample)
        .filter(|(name, ..)| *name == family)
        .map(|(_, _, v)| v)
        .sum()
}

/// The value of `label` on the first sample of `family` (unescaped raw
/// text) — how `ccapsp top` reads the served version off
/// `ccapsp_snapshot_info`.
pub fn prom_label(text: &str, family: &str, label: &str) -> Option<String> {
    text.lines().find_map(|line| {
        let (name, body, _) = split_sample(line)?;
        if name != family {
            return None;
        }
        let tail = body.split_once(&format!("{label}=\""))?.1;
        Some(tail.split('"').next().unwrap_or("").to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SnapshotMeta};
    use cc_par::ExecPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_service() -> (OracleService, crate::service::SnapshotId) {
        let mut rng = StdRng::seed_from_u64(7);
        let g = cc_graph::generators::gnp_connected(16, 0.3, 1..=9, &mut rng);
        let exact = cc_graph::apsp::exact_apsp(&g);
        let meta = SnapshotMeta {
            algo: "exact".into(),
            seed: 7,
            stretch_bound: 1.0,
            rounds: 0,
            source: "telemetry-test".into(),
        };
        OracleService::single(Snapshot::new(g, exact, meta))
    }

    #[test]
    fn sweep_recording_feeds_windows_and_slow_log() {
        let tel = ServeTelemetry::new(1); // 1µs threshold: everything is slow
        let queries = [Query::Dist(0, 1), Query::KNearest(2, 3)];
        tel.record_sweep(&queries, &[5_000, 9_000_000]);
        assert!(tel.qps(1_000) >= 2.0, "both samples in the current epoch");
        assert!(tel.qps_1s_peak() >= 2.0);
        assert_eq!(tel.slow_queries.load(Ordering::Relaxed), 2);
        let events = tel.flight.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events[1].detail.contains("knearest"));
    }

    #[test]
    fn exposition_contains_required_families_and_parses_back() {
        let (svc, id) = tiny_service();
        let stats = ServerStats::default();
        let tel = ServeTelemetry::new(0);
        let queries = [Query::Dist(0, 1), Query::Route(0, 5), Query::KNearest(1, 4)];
        let outcome = svc.run_batch(id, &queries, ExecPolicy::Seq);
        tel.record_sweep(&queries, &outcome.latencies_ns);
        tel.event("conn-accept", "peer test");

        let text = prometheus_text(&svc, &stats, &tel);
        for fam in [
            "ccapsp_uptime_seconds",
            "ccapsp_qps",
            "ccapsp_qps_1s_peak",
            "ccapsp_latency_us",
            "ccapsp_snapshot_info",
            "ccapsp_estimate_mem_bytes",
            "ccapsp_flight_events",
        ] {
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "missing {fam}:\n{text}"
            );
        }
        assert_eq!(
            prom_value(&text, "ccapsp_qps", &[("window", "1s")]),
            Some(3.0)
        );
        assert!(prom_value(
            &text,
            "ccapsp_latency_us",
            &[("type", "dist"), ("quantile", "0.99")]
        )
        .is_some());
        assert_eq!(
            prom_label(&text, "ccapsp_snapshot_info", "backend").as_deref(),
            Some("dense")
        );
        assert_eq!(
            prom_label(&text, "ccapsp_snapshot_info", "version").as_deref(),
            Some("1")
        );
        assert!(prom_sum(&text, "ccapsp_estimate_mem_bytes") > 0.0);
        assert_eq!(prom_value(&text, "ccapsp_flight_events", &[]), Some(1.0));
    }

    #[test]
    fn label_escaping_survives_hostile_names() {
        assert_eq!(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(prom_num(3.0), "3");
        assert_eq!(prom_num(3.25), "3.250");
    }
}
