//! Bounded little-endian reader shared by the binary decoders.
//!
//! Both self-validating formats this crate parses — `*.ccsnap` snapshot
//! files ([`crate::snapshot`]) and the `ccapsp serve` wire protocol
//! ([`crate::wire`]) — read length-prefixed sections from untrusted bytes.
//! This cursor is their common substrate: every read is bounds-checked
//! (overruns surface as [`ReadError::Truncated`], never a panic or an
//! out-of-bounds slice), and every length/count field goes through
//! [`Cursor::len_u64`], which converts `u64 → usize` with
//! `usize::try_from` — so a value that does not fit the platform's address
//! space (possible on 32-bit targets, where `as usize` would silently
//! truncate and let a crafted header alias a small value) is a typed
//! [`ReadError::LengthOverflow`] instead.

/// A bounds or range failure while reading untrusted bytes. The decoders
/// convert these into their own error types ([`crate::snapshot::SnapshotError`],
/// [`crate::wire::WireError`]) via `From` impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadError {
    /// The input ended before a declared length was satisfied.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A length/count field does not fit in `usize` on this platform.
    LengthOverflow(u64),
    /// A length-prefixed string is not valid UTF-8.
    InvalidUtf8,
}

/// Bounded reader over raw bytes; see the [module docs](self).
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Consumes the next `n` bytes.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ReadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` length/count field and converts it to `usize` with
    /// `usize::try_from` — the checked path every decoder must use before
    /// looping or allocating on a field from untrusted bytes.
    pub(crate) fn len_u64(&mut self) -> Result<usize, ReadError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ReadError::LengthOverflow(v))
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Result<String, ReadError> {
        let len = self.len_u64()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_bounds_checked() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.u8().unwrap(), 1);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(
            cur.u32(),
            Err(ReadError::Truncated {
                needed: 4,
                available: 2
            })
        );
        // A failed read consumes nothing.
        assert_eq!(cur.take(2).unwrap(), &[2, 3]);
    }

    #[test]
    fn len_u64_is_checked_not_truncating() {
        let bytes = u64::MAX.to_le_bytes();
        let mut cur = Cursor::new(&bytes);
        // On 64-bit targets u64::MAX fits; the point of the helper is that
        // 32-bit targets get a typed error instead of a silent truncation.
        if usize::BITS >= 64 {
            assert_eq!(cur.len_u64().unwrap(), u64::MAX as usize);
        } else {
            assert_eq!(cur.len_u64(), Err(ReadError::LengthOverflow(u64::MAX)));
        }
    }
}
