#![warn(missing_docs)]

//! **cc-serve** — the distance-oracle serving layer: the first subsystem on
//! the read path rather than the compute path.
//!
//! The paper motivates APSP in the Congested Clique by its "close connection
//! to network routing" (Section 1); the payoff of an all-pairs *oracle* is
//! at query time — precompute once, then serve point-to-point queries at
//! high throughput. This crate turns a pipeline run into a servable
//! artifact and measures how fast it can be served:
//!
//! * [`snapshot`] — the versioned binary `*.ccsnap` format (magic, format
//!   version, graph, estimate, metadata, per-section checksums) with
//!   `save`/`load` and typed corrupt-input errors;
//! * [`service`] — [`OracleService`](service::OracleService), a
//!   multi-snapshot registry answering `Dist`/`Route`/`KNearest` queries in
//!   parallel batches (via `cc_par`), with a hot-row LRU cache and
//!   per-query latency accounting;
//! * [`loadgen`] — the deterministic closed-loop load generator (seeded
//!   zipf/uniform mixes) whose results the `ccapsp bench-serve` subcommand
//!   writes as `BENCH_serve.json` through [`cc_bench::report`]; its
//!   [`drive_readwrite`](loadgen::drive_readwrite) variant interleaves a
//!   seeded mutation stream, landing each write batch as a verified
//!   `cc_dynamic` delta via
//!   [`OracleService::apply_delta`](service::OracleService::apply_delta)
//!   (an in-place blue/green version bump that re-keys the hot-row cache);
//! * [`wire`] — the length-prefixed, checksummed binary frame protocol for
//!   network serving (typed [`wire::WireError`] on every corrupt input);
//! * [`server`] — the `ccapsp serve` TCP daemon: per-connection framing
//!   threads feeding a server-side batcher, bounded-queue admission control,
//!   slow-reader disconnects, and blue/green swaps while serving;
//! * [`client`] — the blocking client, the multi-connection networked
//!   loadgen ([`client::drive_network`], fingerprint-compatible with
//!   [`loadgen::drive`]), and the [`client::chaos`] protocol-abuse suite;
//! * [`telemetry`] — the daemon's live telemetry block (rolling-window
//!   QPS/latency, gauges, flight recorder) and the Prometheus-style text
//!   exposition behind the Metrics-v2 frame and the `GET /metrics` HTTP
//!   responder.
//!
//! The serving invariant mirrors the compute layers' parallelism contract:
//! for a fixed snapshot and [`loadgen::LoadSpec`] (and, on the write path,
//! [`loadgen::ReadWriteSpec`]), query *results* are bit-identical at every
//! thread count — only timings move.
//!
//! # Quick start
//!
//! ```
//! use cc_serve::loadgen::{drive, LoadSpec};
//! use cc_serve::service::{OracleService, Query, Response};
//! use cc_serve::snapshot::{Snapshot, SnapshotMeta};
//! use cc_par::ExecPolicy;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = cc_graph::generators::gnp_connected(32, 0.15, 1..=20, &mut rng);
//! let exact = cc_graph::apsp::exact_apsp(&g);
//! let meta = SnapshotMeta {
//!     algo: "exact".into(), seed: 7, stretch_bound: 1.0, rounds: 0,
//!     source: "doc".into(),
//! };
//! let (service, id) = OracleService::single(Snapshot::new(g, exact, meta));
//!
//! assert!(matches!(service.answer(id, &Query::Dist(0, 9)), Response::Dist(_)));
//! let spec = LoadSpec { queries: 200, ..Default::default() };
//! let report = drive(&service, id, &spec, ExecPolicy::Seq);
//! assert_eq!(report.queries, 200);
//! ```

pub mod client;
mod cursor;
pub mod loadgen;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod telemetry;
pub mod wire;

pub use cc_bench::report;
pub use service::OracleService;
pub use snapshot::{Snapshot, SnapshotError, SnapshotMeta};
