//! Client side of the `ccapsp serve` wire protocol: a blocking
//! single-connection [`Client`], the multi-connection networked load
//! generator ([`drive_network`]), and the chaos client ([`chaos`]) that
//! feeds the server hostile input and checks it survives.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use cc_obs::Histogram;

use crate::loadgen::{generate_queries, LoadSpec, ServeBenchResult};
use crate::service::{fingerprint, Query};
use crate::snapshot::fnv1a;
use crate::wire::{self, Reply, Request, ServeInfo, WireError};

/// Backoff between retries of a batch the server answered
/// [`Reply::Overload`] to.
const OVERLOAD_BACKOFF: Duration = Duration::from_millis(2);

/// A blocking client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    frame_cap: u64,
}

impl Client {
    /// Connects with the default frame cap.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            frame_cap: wire::DEFAULT_FRAME_CAP,
        })
    }

    /// Sends one request and reads one reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, WireError> {
        wire::write_frame(&mut self.stream, &request.to_frame())?;
        match wire::read_frame(&mut self.stream, self.frame_cap)? {
            Some(frame) => Reply::from_frame(&frame),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Runs one query batch, retrying (with a short backoff) while the
    /// server answers [`Reply::Overload`]. A [`Reply::Error`] surfaces as
    /// [`WireError::Remote`].
    pub fn batch(
        &mut self,
        name: &str,
        queries: &[Query],
    ) -> Result<Vec<crate::service::Response>, WireError> {
        loop {
            let reply = self.request(&Request::Batch {
                name: name.to_string(),
                queries: queries.to_vec(),
            })?;
            match reply {
                Reply::Batch(responses) => return Ok(responses),
                Reply::Overload(_) => std::thread::sleep(OVERLOAD_BACKOFF),
                Reply::Error(msg) => return Err(WireError::Remote(msg)),
                other => {
                    return Err(WireError::Malformed(format!(
                        "unexpected reply to batch: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches serving info for a named snapshot.
    pub fn info(&mut self, name: &str) -> Result<ServeInfo, WireError> {
        match self.request(&Request::Info {
            name: name.to_string(),
        })? {
            Reply::Info(info) => Ok(info),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to info: {other:?}"
            ))),
        }
    }

    /// Fetches the metrics report.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        match self.request(&Request::Metrics)? {
            Reply::Metrics(text) => Ok(text),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to metrics: {other:?}"
            ))),
        }
    }

    /// Fetches the Prometheus-style exposition (metrics v2) over the wire —
    /// the same text body the HTTP `GET /metrics` responder serves.
    pub fn metrics_v2(&mut self) -> Result<String, WireError> {
        match self.request(&Request::MetricsV2)? {
            Reply::MetricsV2(text) => Ok(text),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to metrics-v2: {other:?}"
            ))),
        }
    }

    /// Fetches the flight-recorder ring as a `cc-flight/v1` JSON document.
    pub fn flight_dump(&mut self) -> Result<String, WireError> {
        match self.request(&Request::FlightDump)? {
            Reply::FlightDump(json) => Ok(json),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to flight-dump: {other:?}"
            ))),
        }
    }

    /// Sends an admin request ([`Request::ApplyDelta`] /
    /// [`Request::SwapSnapshot`]) and returns the server's confirmation.
    pub fn admin(&mut self, request: &Request) -> Result<String, WireError> {
        match self.request(request)? {
            Reply::AdminOk(msg) => Ok(msg),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to admin request: {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShutdownOk => Ok(()),
            Reply::Error(msg) => Err(WireError::Remote(msg)),
            other => Err(WireError::Malformed(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }
}

/// Scrapes `GET /metrics` from a daemon's HTTP metrics listener
/// (`serve --metrics-addr`) and returns the exposition body — the tiny
/// curl-free HTTP client behind `ccapsp serve-admin scrape` and the CI
/// smoke step. Fails on any non-200 status line.
pub fn scrape_http_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: ccapsp\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP header terminator")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape failed: {status}"),
        ));
    }
    Ok(body.to_string())
}

/// Drives a served snapshot over TCP with `conns` concurrent connections,
/// closed-loop per connection, and reduces the run exactly like the
/// in-process [`crate::loadgen::drive`]:
///
/// * the query stream is the same pure function of `(LoadSpec, n)` (`n`
///   fetched via [`Request::Info`]);
/// * batches are the same `spec.batch` chunks, dealt round-robin to
///   connections by batch index and re-assembled in batch order, so the
///   run's fingerprint (per-batch response fingerprints concatenated, then
///   FNV-1a) is **bit-identical** to the in-process path whenever the
///   server serves the same snapshot;
/// * latency percentiles cover per-*query* service time approximated as
///   batch round-trip divided by batch size (the wire adds what it adds);
/// * the cache hit rate is the served snapshot's delta over this run, read
///   from the info frame;
/// * `threads` reports `conns` — the client-side concurrency.
///
/// [`Reply::Overload`] answers are retried with a backoff (admission
/// control sheds load; the closed loop re-offers it).
pub fn drive_network(
    addr: impl ToSocketAddrs + Clone + Send + Sync,
    name: &str,
    spec: &LoadSpec,
    conns: usize,
) -> Result<ServeBenchResult, WireError> {
    let conns = conns.max(1);
    let mut probe = Client::connect(addr.clone())?;
    let before = probe.info(name)?;
    let queries = generate_queries(before.n, spec);
    let batches: Vec<&[Query]> = queries.chunks(spec.batch.max(1)).collect();

    // `(batch index, response fingerprint, rtt ns, batch len)` per batch.
    type ConnLog = Vec<(usize, u64, u64, usize)>;
    let start = Instant::now();
    let per_conn: Vec<Result<ConnLog, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                let batches = &batches;
                scope.spawn(move || {
                    let mut client = Client::connect(addr)?;
                    // (batch index, response fingerprint, rtt ns, len)
                    let mut out = Vec::new();
                    for (i, batch) in batches.iter().enumerate() {
                        if i % conns != c {
                            continue;
                        }
                        let t = Instant::now();
                        let responses = client.batch(name, batch)?;
                        let rtt = t.elapsed().as_nanos() as u64;
                        out.push((i, fingerprint(&responses), rtt, batch.len()));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut results: Vec<(usize, u64, u64, usize)> = Vec::with_capacity(batches.len());
    for r in per_conn {
        results.extend(r?);
    }
    results.sort_unstable_by_key(|&(i, ..)| i);

    let mut batch_prints: Vec<u8> = Vec::new();
    let mut hist = Histogram::new();
    for &(_, print, rtt, len) in &results {
        batch_prints.extend_from_slice(&print.to_le_bytes());
        let per_query = rtt / len.max(1) as u64;
        for _ in 0..len {
            hist.record(per_query);
        }
    }
    let after = probe.info(name)?;
    let lookups =
        (after.cache_hits + after.cache_misses) - (before.cache_hits + before.cache_misses);
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.cache_hits - before.cache_hits) as f64 / lookups as f64
    };

    Ok(ServeBenchResult {
        queries: queries.len(),
        threads: conns,
        wall_ms,
        qps: if wall_ms > 0.0 {
            queries.len() as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        p50_us: hist.percentile(0.50) / 1e3,
        p95_us: hist.percentile(0.95) / 1e3,
        p99_us: hist.percentile(0.99) / 1e3,
        cache_hit_rate,
        estimate_mem_bytes: before.mem_bytes,
        fingerprint: fnv1a(&batch_prints),
    })
}

/// The outcome of one [`chaos`] run.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Scenarios that behaved as required.
    pub passed: Vec<String>,
    /// Scenarios where the server misbehaved (hung, answered garbage, or
    /// went down), with the reason.
    pub failed: Vec<String>,
}

impl ChaosReport {
    /// Whether every scenario passed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, outcome: Result<(), String>) {
        match outcome {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push(format!("{name}: {why}")),
        }
    }
}

/// Time the chaos client is willing to wait on any single read before
/// declaring the server hung.
const CHAOS_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Deterministic xorshift byte stream for the garbage scenarios (no
/// dependence on a random source keeps chaos runs reproducible).
fn garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

fn chaos_stream(addr: &(impl ToSocketAddrs + ?Sized)) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    stream
        .set_read_timeout(Some(CHAOS_READ_TIMEOUT))
        .map_err(|e| format!("set_read_timeout failed: {e}"))?;
    Ok(stream)
}

/// Expects a typed [`Reply::Error`] frame *or* a clean close within the
/// timeout — never a hang and never a non-error reply.
fn expect_error_or_close(stream: &mut TcpStream, what: &str) -> Result<(), String> {
    match wire::read_frame(stream, wire::DEFAULT_FRAME_CAP) {
        Ok(Some(frame)) => match Reply::from_frame(&frame) {
            Ok(Reply::Error(_)) => Ok(()),
            Ok(other) => Err(format!("{what}: got non-error reply {other:?}")),
            Err(_) => Err(format!("{what}: got undecodable reply frame")),
        },
        // Clean close or reset both mean the server cut us off — fine.
        Ok(None) => Ok(()),
        Err(WireError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Err(format!("{what}: server hung (no reply within timeout)"))
        }
        Err(WireError::Io(_)) | Err(WireError::Truncated { .. }) => Ok(()),
        Err(e) => Err(format!("{what}: unexpected decode result {e}")),
    }
}

/// A healthy server must answer a metrics request on a fresh connection.
fn assert_alive(addr: &(impl ToSocketAddrs + ?Sized), after: &str) -> Result<(), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("after {after}: reconnect failed: {e}"))?;
    client
        .stream
        .set_read_timeout(Some(CHAOS_READ_TIMEOUT))
        .ok();
    client
        .metrics()
        .map(|_| ())
        .map_err(|e| format!("after {after}: metrics failed: {e}"))
}

/// Feeds the server hostile input — random bytes, lying lengths, checksum
/// flips, truncated frames with half-closed sockets, a reader that never
/// drains — and verifies after every scenario that the daemon neither
/// panicked, nor hung, nor answered garbage: malformed input gets a typed
/// error frame (or a prompt close), and a fresh connection still serves.
pub fn chaos(addr: impl ToSocketAddrs) -> ChaosReport {
    let mut report = ChaosReport::default();
    let addr = &addr;

    report.record(
        "random-bytes",
        (|| {
            let mut s = chaos_stream(addr)?;
            s.write_all(&garbage(0xbad5eed, 64))
                .map_err(|e| format!("write failed: {e}"))?;
            expect_error_or_close(&mut s, "random bytes")?;
            assert_alive(addr, "random bytes")
        })(),
    );

    report.record(
        "lying-length",
        (|| {
            let mut s = chaos_stream(addr)?;
            let mut bytes = Request::Metrics.to_frame().encode();
            bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
            s.write_all(&bytes)
                .map_err(|e| format!("write failed: {e}"))?;
            expect_error_or_close(&mut s, "lying length")?;
            assert_alive(addr, "lying length")
        })(),
    );

    report.record(
        "checksum-flip",
        (|| {
            let mut s = chaos_stream(addr)?;
            let mut bytes = Request::Info {
                name: "default".into(),
            }
            .to_frame()
            .encode();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            s.write_all(&bytes)
                .map_err(|e| format!("write failed: {e}"))?;
            expect_error_or_close(&mut s, "checksum flip")?;
            assert_alive(addr, "checksum flip")
        })(),
    );

    report.record(
        "truncated-then-half-close",
        (|| {
            let mut s = chaos_stream(addr)?;
            let bytes = Request::Batch {
                name: "default".into(),
                queries: vec![Query::Dist(0, 0); 16],
            }
            .to_frame()
            .encode();
            s.write_all(&bytes[..bytes.len() / 2])
                .map_err(|e| format!("write failed: {e}"))?;
            s.shutdown(Shutdown::Write)
                .map_err(|e| format!("half-close failed: {e}"))?;
            // The server must notice the dead frame and close; a hang here
            // would block the timeout read below.
            let mut buf = [0u8; 64];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Err("server held a half-closed truncated frame open".into())
                    }
                    Err(_) => break,
                }
            }
            assert_alive(addr, "truncated half-close")
        })(),
    );

    report.record(
        "slow-reader",
        (|| {
            let mut s = chaos_stream(addr)?;
            // Fire a burst of valid requests and never read a single reply;
            // the server must bound what it buffers for us (dropping the
            // connection is allowed) and keep serving everyone else.
            let frame = Request::Info {
                name: "default".into(),
            }
            .to_frame()
            .encode();
            for _ in 0..512 {
                if s.write_all(&frame).is_err() {
                    break; // server cut us off — that is the defense working
                }
            }
            std::thread::sleep(Duration::from_millis(100));
            assert_alive(addr, "slow reader")
        })(),
    );

    report.record(
        "idle-half-close",
        (|| {
            let mut s = chaos_stream(addr)?;
            s.shutdown(Shutdown::Write)
                .map_err(|e| format!("half-close failed: {e}"))?;
            let mut buf = [0u8; 16];
            match s.read(&mut buf) {
                Ok(0) | Err(_) => {}
                Ok(_) => return Err("unsolicited bytes on an idle connection".into()),
            }
            assert_alive(addr, "idle half-close")
        })(),
    );

    report
}
