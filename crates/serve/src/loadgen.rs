//! Deterministic closed-loop load generator for the serving layer.
//!
//! Generates a seeded query stream (uniform or zipf-skewed sources, a
//! configurable dist/route/k-nearest mix), drives an [`OracleService`] with
//! it batch-by-batch (closed loop: the next batch is issued only after the
//! previous one completed), and reduces the per-query latencies into the
//! throughput report the CLI writes as `BENCH_serve.json` via
//! [`cc_bench::report`].
//!
//! Everything about the *stream* is a pure function of
//! ([`LoadSpec`], node count): the same spec replays the same queries, so
//! [`ServeBenchResult::fingerprint`] must match across thread counts — only
//! the timing fields may differ.

use cc_bench::report::BenchRecord;
use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
use cc_dynamic::update::{random_batch, MutationProfile};
use cc_graph::NodeId;
use cc_par::ExecPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

use crate::service::{fingerprint, OracleService, Query, SnapshotId};
use crate::snapshot::fnv1a;

/// Source-node popularity distribution of the generated stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every node equally likely.
    Uniform,
    /// Zipf-distributed popularity with this exponent (`1.0` is the classic
    /// web-traffic shape); node ranks are a seeded permutation, so the hot
    /// set is deterministic per seed but not simply the lowest ids.
    Zipf(f64),
}

impl Skew {
    /// Parses the CLI form: `uniform`, `zipf` (exponent 1.0), or
    /// `zipf:<EXPONENT>`.
    ///
    /// The exponent must be a finite, strictly positive float: NaN or ±∞
    /// would silently degenerate the weight table (`rank^NaN` poisons every
    /// cumulative weight), and `0` or a negative exponent inverts the
    /// premise of the knob (no skew, or *anti*-popular hot set) — all three
    /// are rejected here, at parse time, instead of producing a
    /// plausible-looking but meaningless benchmark.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => Ok(Skew::Uniform),
            "zipf" => Ok(Skew::Zipf(1.0)),
            _ => {
                let Some(raw) = s.strip_prefix("zipf:") else {
                    return Err(format!("expected uniform|zipf[:EXPONENT], got {s:?}"));
                };
                let exp: f64 = raw
                    .parse()
                    .map_err(|_| format!("zipf exponent {raw:?} is not a number"))?;
                if !exp.is_finite() || exp <= 0.0 {
                    return Err(format!("zipf exponent must be finite and > 0, got {raw}"));
                }
                Ok(Skew::Zipf(exp))
            }
        }
    }
}

/// Relative weights of the three query types in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    /// Weight of [`Query::Dist`].
    pub dist: u32,
    /// Weight of [`Query::Route`].
    pub route: u32,
    /// Weight of [`Query::KNearest`].
    pub knearest: u32,
}

impl QueryMix {
    /// Sum of the weights.
    pub fn total(&self) -> u32 {
        self.dist + self.route + self.knearest
    }
}

impl Default for QueryMix {
    /// Point-to-point lookups dominate real oracle traffic; routes and
    /// k-nearest scans are the expensive minority.
    fn default() -> Self {
        Self {
            dist: 8,
            route: 1,
            knearest: 1,
        }
    }
}

/// Full specification of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Total queries to issue.
    pub queries: usize,
    /// Queries per closed-loop batch.
    pub batch: usize,
    /// Query-type mix.
    pub mix: QueryMix,
    /// Source-node popularity.
    pub skew: Skew,
    /// The `k` used for [`Query::KNearest`] queries.
    pub k: usize,
    /// Stream seed; the whole query sequence is a pure function of it.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self {
            queries: 50_000,
            batch: 1024,
            mix: QueryMix::default(),
            skew: Skew::Zipf(1.0),
            k: 8,
            seed: 1,
        }
    }
}

/// Salt deriving the zipf permutation seed from the stream seed (an
/// arbitrary odd 64-bit constant; see [`generate_queries`]).
const ZIPF_PERM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt deriving the mutation-stream seed from the read-stream seed in
/// [`drive_readwrite`].
const WRITE_SALT: u64 = 0x5851_f42d_4c95_7f2d;

/// Inverse-CDF zipf sampler over `n` ranks with a seeded rank→node
/// permutation.
pub struct ZipfSampler {
    cdf: Vec<f64>,
    perm: Vec<NodeId>,
}

impl ZipfSampler {
    /// Builds the sampler; the permutation consumes `n - 1` draws from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is not finite and non-negative.
    pub fn new(n: usize, exponent: f64, rng: &mut StdRng) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        // Fisher–Yates with the stream rng: rank r maps to perm[r].
        let mut perm: Vec<NodeId> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        Self { cdf, perm }
    }

    /// Draws one node (one `rng` draw).
    pub fn sample(&self, rng: &mut StdRng) -> NodeId {
        let x: f64 = rng.gen();
        let rank = self
            .cdf
            .partition_point(|&c| c <= x)
            .min(self.perm.len() - 1);
        self.perm[rank]
    }
}

/// Generates the deterministic query stream for a snapshot of `n` nodes.
///
/// # Panics
///
/// Panics if `n == 0` or the mix has zero total weight.
pub fn generate_queries(n: usize, spec: &LoadSpec) -> Vec<Query> {
    assert!(n > 0, "cannot generate load for an empty snapshot");
    let total = spec.mix.total();
    assert!(total > 0, "query mix has zero total weight");
    // The zipf rank permutation gets its own rng, derived from the stream
    // seed by a fixed salt, instead of sharing (and being re-seeded
    // alongside) the query rng: the hot set is a function of the seed
    // alone, never of how many draws preceded it, so back-to-back drives
    // with distinct seeds can neither collide nor shear the permutation
    // against the query stream.
    let sampler = match spec.skew {
        Skew::Uniform => None,
        Skew::Zipf(s) => {
            let mut perm_rng = StdRng::seed_from_u64(spec.seed ^ ZIPF_PERM_SALT);
            Some(ZipfSampler::new(n, s, &mut perm_rng))
        }
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let k = spec.k.clamp(1, n);
    let mut out = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        let pick = rng.gen_range(0..total);
        let u = match &sampler {
            Some(z) => z.sample(&mut rng),
            None => rng.gen_range(0..n),
        };
        out.push(if pick < spec.mix.dist {
            Query::Dist(u, rng.gen_range(0..n))
        } else if pick < spec.mix.dist + spec.mix.route {
            Query::Route(u, rng.gen_range(0..n))
        } else {
            Query::KNearest(u, k)
        });
    }
    out
}

/// The measured outcome of one [`drive`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchResult {
    /// Queries issued.
    pub queries: usize,
    /// Worker threads the batches executed with.
    pub threads: usize,
    /// Total closed-loop wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Queries per second over the whole run.
    pub qps: f64,
    /// Median per-query latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-query latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-query latency in microseconds.
    pub p99_us: f64,
    /// Hot-row cache hit rate over the run (`KNearest` lookups).
    pub cache_hit_rate: f64,
    /// Resident size estimate (bytes) of the served distance structure
    /// (`8n²` dense, sketch footprint for landmark backends).
    pub estimate_mem_bytes: u64,
    /// Fingerprint of all responses in order — identical across thread
    /// counts for a fixed spec and snapshot.
    pub fingerprint: u64,
}

impl ServeBenchResult {
    /// Packages the run as a [`BenchRecord`] for
    /// [`cc_bench::report::write_report`]; the serving metrics ride in
    /// `extras`.
    pub fn to_record(&self, experiment: &str, n: usize) -> BenchRecord {
        BenchRecord {
            experiment: experiment.to_string(),
            n,
            threads: self.threads,
            wall_ms: self.wall_ms,
            rounds: 0,
            extras: vec![
                ("qps".into(), self.qps),
                ("p50_us".into(), self.p50_us),
                ("p95_us".into(), self.p95_us),
                ("p99_us".into(), self.p99_us),
                ("cache_hit_rate".into(), self.cache_hit_rate),
                ("estimate_mem_bytes".into(), self.estimate_mem_bytes as f64),
            ],
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a latency list, in microseconds, reduced
/// through [`cc_obs::Histogram`]: exact nearest-rank (the same
/// `(len − 1) · q` index rule this file always used) up to
/// [`cc_obs::EXACT_CAP`] samples, log₂-sub-bucket interpolated — monotone
/// in `q`, ≤ 6.25% relative error — beyond that.
fn percentile_us(ns: &[u64], q: f64) -> f64 {
    let mut h = cc_obs::Histogram::new();
    for &v in ns {
        h.record(v);
    }
    h.percentile(q) / 1e3
}

/// Drives the service with the spec's query stream in closed-loop batches
/// and reduces the measurements. Cache hit rate is the delta over this run,
/// so repeated drives against one service stay meaningful.
pub fn drive(
    service: &OracleService,
    id: SnapshotId,
    spec: &LoadSpec,
    exec: ExecPolicy,
) -> ServeBenchResult {
    let queries = generate_queries(service.n(id), spec);
    let before = service.cache_stats(id);
    let mut latencies: Vec<u64> = Vec::with_capacity(queries.len());
    let mut batch_prints: Vec<u8> = Vec::new();
    let start = Instant::now();
    for batch in queries.chunks(spec.batch.max(1)) {
        let outcome = service.run_batch(id, batch, exec);
        latencies.extend_from_slice(&outcome.latencies_ns);
        batch_prints.extend_from_slice(&fingerprint(&outcome.responses).to_le_bytes());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = service.cache_stats(id);
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64
    };
    latencies.sort_unstable();
    ServeBenchResult {
        queries: queries.len(),
        threads: exec.threads(),
        wall_ms,
        qps: if wall_ms > 0.0 {
            queries.len() as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        p50_us: percentile_us(&latencies, 0.50),
        p95_us: percentile_us(&latencies, 0.95),
        p99_us: percentile_us(&latencies, 0.99),
        cache_hit_rate,
        estimate_mem_bytes: service.estimate_mem_bytes(id),
        fingerprint: fnv1a(&batch_prints),
    }
}

/// Specification of a mixed read/write run: a read stream plus an
/// interleaved seeded mutation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadWriteSpec {
    /// The read side (queries, batch size, mix, skew, seed).
    pub load: LoadSpec,
    /// Expected write batches per read batch (`0.2` ⇒ one write batch
    /// every 5 read batches; values ≥ 1 write that many batches between
    /// consecutive read batches).
    pub write_ratio: f64,
    /// Edge ops per write batch.
    pub ops_per_batch: usize,
    /// Shape of the mutation stream.
    pub profile: MutationProfile,
}

impl Default for ReadWriteSpec {
    fn default() -> Self {
        Self {
            load: LoadSpec::default(),
            write_ratio: 0.2,
            ops_per_batch: 8,
            profile: MutationProfile::ReweightHeavy,
        }
    }
}

/// The measured outcome of one [`drive_readwrite`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadWriteResult {
    /// Read-side metrics (throughput, latency percentiles, cache, and the
    /// response fingerprint — which now also witnesses *when* each write
    /// landed relative to the reads).
    pub read: ServeBenchResult,
    /// Write batches applied.
    pub write_batches: usize,
    /// Edge changes applied across all write batches.
    pub ops_applied: usize,
    /// Write batches served by incremental row repair.
    pub repairs: u64,
    /// Write batches served by full pipeline rebuild.
    pub rebuilds: u64,
    /// Median write-batch latency (engine apply + service swap), ms.
    pub write_p50_ms: f64,
    /// 95th-percentile write-batch latency, ms.
    pub write_p95_ms: f64,
    /// [`cc_dynamic::state_fingerprint`] of the final servable state.
    pub final_state_fingerprint: u64,
}

impl ReadWriteResult {
    /// Packages the run as a [`BenchRecord`]; write metrics ride in
    /// `extras` next to the read-side ones.
    pub fn to_record(&self, experiment: &str, n: usize) -> BenchRecord {
        let mut record = self.read.to_record(experiment, n);
        record.extras.extend([
            ("write_batches".into(), self.write_batches as f64),
            ("ops_applied".into(), self.ops_applied as f64),
            ("repairs".into(), self.repairs as f64),
            ("rebuilds".into(), self.rebuilds as f64),
            ("write_p50_ms".into(), self.write_p50_ms),
            ("write_p95_ms".into(), self.write_p95_ms),
        ]);
        record
    }
}

/// Drives the newest snapshot under `name` with the read stream while
/// interleaving seeded write batches: each write runs through an
/// [`IncrementalOracle`] (repair or rebuild) and lands in the service as a
/// verified delta via [`OracleService::apply_delta`], so reads after it
/// observe the bumped version. Everything — queries, mutations, and their
/// interleaving — is a pure function of the spec, so the response
/// fingerprint is identical across thread counts.
///
/// # Panics
///
/// Panics if `name` is not registered or `write_ratio` is negative or not
/// finite. (Engine/service delta application cannot fail here: generated
/// batches are valid by construction and both sides advance in lockstep.)
pub fn drive_readwrite(
    service: &mut OracleService,
    name: &str,
    spec: &ReadWriteSpec,
    exec: ExecPolicy,
) -> ReadWriteResult {
    assert!(
        spec.write_ratio.is_finite() && spec.write_ratio >= 0.0,
        "write_ratio must be finite and non-negative"
    );
    let id = service
        .resolve(name)
        .expect("snapshot registered under name");
    let base = service.export(id);
    let algo = base.meta.algo.clone();
    let seed = base.meta.seed;
    let mut engine = IncrementalOracle::with_backend(
        base.graph,
        base.backend,
        &algo,
        seed,
        DynamicConfig {
            exec,
            ..Default::default()
        },
    );
    let queries = generate_queries(service.n(id), &spec.load);
    let mut write_rng = StdRng::seed_from_u64(spec.load.seed ^ WRITE_SALT);
    let before = service.cache_stats(id);
    let mut latencies: Vec<u64> = Vec::with_capacity(queries.len());
    let mut write_ns: Vec<u64> = Vec::new();
    let mut batch_prints: Vec<u8> = Vec::new();
    let mut ops_applied = 0usize;
    let mut writes_due = 0.0f64;
    let start = Instant::now();
    for batch in queries.chunks(spec.load.batch.max(1)) {
        writes_due += spec.write_ratio;
        while writes_due >= 1.0 {
            writes_due -= 1.0;
            let mutation = random_batch(
                engine.graph(),
                spec.ops_per_batch,
                spec.profile,
                &mut write_rng,
            );
            let t = Instant::now();
            let outcome = engine
                .apply(&mutation)
                .expect("generated batches are valid");
            service
                .apply_delta(name, &outcome.delta)
                .expect("engine and service advance in lockstep");
            write_ns.push(t.elapsed().as_nanos() as u64);
            ops_applied += outcome.changed_edges;
        }
        let outcome = service.run_batch(id, batch, exec);
        latencies.extend_from_slice(&outcome.latencies_ns);
        batch_prints.extend_from_slice(&fingerprint(&outcome.responses).to_le_bytes());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = service.cache_stats(id);
    let lookups = (after.hits + after.misses) - (before.hits + before.misses);
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64
    };
    latencies.sort_unstable();
    let write_batches = write_ns.len();
    write_ns.sort_unstable();
    let stats = engine.stats();
    ReadWriteResult {
        read: ServeBenchResult {
            queries: queries.len(),
            threads: exec.threads(),
            wall_ms,
            qps: if wall_ms > 0.0 {
                queries.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            p50_us: percentile_us(&latencies, 0.50),
            p95_us: percentile_us(&latencies, 0.95),
            p99_us: percentile_us(&latencies, 0.99),
            cache_hit_rate,
            estimate_mem_bytes: service.estimate_mem_bytes(id),
            fingerprint: fnv1a(&batch_prints),
        },
        write_batches,
        ops_applied,
        repairs: stats.repairs,
        rebuilds: stats.rebuilds,
        write_p50_ms: percentile_us(&write_ns, 0.50) / 1e3,
        write_p95_ms: percentile_us(&write_ns, 0.95) / 1e3,
        final_state_fingerprint: engine.fingerprint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SnapshotMeta};
    use cc_graph::{apsp, generators};

    fn snapshot(n: usize, seed: u64) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.15, 1..=30, &mut rng);
        let exact = apsp::exact_apsp(&g);
        Snapshot::new(
            g,
            exact,
            SnapshotMeta {
                algo: "exact".into(),
                seed,
                stretch_bound: 1.0,
                rounds: 0,
                source: "test".into(),
            },
        )
    }

    #[test]
    fn query_stream_is_deterministic_per_seed() {
        let spec = LoadSpec {
            queries: 500,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate_queries(40, &spec), generate_queries(40, &spec));
        let other = LoadSpec { seed: 43, ..spec };
        assert_ne!(generate_queries(40, &spec), generate_queries(40, &other));
    }

    #[test]
    fn stream_respects_the_mix() {
        let spec = LoadSpec {
            queries: 3000,
            mix: QueryMix {
                dist: 1,
                route: 0,
                knearest: 1,
            },
            ..Default::default()
        };
        let qs = generate_queries(30, &spec);
        let dist = qs.iter().filter(|q| matches!(q, Query::Dist(..))).count();
        let routes = qs.iter().filter(|q| matches!(q, Query::Route(..))).count();
        assert_eq!(routes, 0);
        assert!((1000..2000).contains(&dist), "dist count {dist}");
    }

    #[test]
    fn skew_parse_rejects_degenerate_exponents() {
        assert_eq!(Skew::parse("uniform"), Ok(Skew::Uniform));
        assert_eq!(Skew::parse("zipf"), Ok(Skew::Zipf(1.0)));
        assert_eq!(Skew::parse("zipf:0.75"), Ok(Skew::Zipf(0.75)));
        for bad in [
            "zipf:NaN",
            "zipf:inf",
            "zipf:-inf",
            "zipf:0",
            "zipf:-1.2",
            "zipf:",
            "zipf:abc",
            "pareto",
            "zipf:1e999", // parses to +inf
        ] {
            assert!(Skew::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn zipf_skews_toward_a_small_hot_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let z = ZipfSampler::new(100, 1.2, &mut rng);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..10].iter().sum();
        // Under zipf(1.2) the top decile carries well over half the draws;
        // uniform would put ~10% there.
        assert!(top10 > 10_000, "top-10 share {top10}/20000");
    }

    #[test]
    fn uniform_covers_the_whole_domain() {
        let spec = LoadSpec {
            queries: 5000,
            skew: Skew::Uniform,
            mix: QueryMix {
                dist: 1,
                route: 0,
                knearest: 0,
            },
            ..Default::default()
        };
        let mut seen = [false; 25];
        for q in generate_queries(25, &spec) {
            if let Query::Dist(u, v) = q {
                seen[u] = true;
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn knearest_k_is_clamped_to_n() {
        let spec = LoadSpec {
            queries: 50,
            k: 1000,
            mix: QueryMix {
                dist: 0,
                route: 0,
                knearest: 1,
            },
            ..Default::default()
        };
        for q in generate_queries(12, &spec) {
            match q {
                Query::KNearest(_, k) => assert_eq!(k, 12),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn drive_produces_consistent_fingerprints_across_policies() {
        let spec = LoadSpec {
            queries: 600,
            batch: 128,
            seed: 11,
            ..Default::default()
        };
        let run = |threads: usize| {
            // Fresh service per run so cache state starts equal.
            let (service, id) = OracleService::single(snapshot(28, 9));
            drive(&service, id, &spec, ExecPolicy::with_threads(threads))
        };
        let seq = run(1);
        assert_eq!(seq.queries, 600);
        assert!(seq.wall_ms >= 0.0 && seq.qps > 0.0);
        assert!(seq.p50_us <= seq.p95_us && seq.p95_us <= seq.p99_us);
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(par.fingerprint, seq.fingerprint, "threads={threads}");
            assert_eq!(par.threads, threads);
        }
    }

    #[test]
    fn back_to_back_drives_with_distinct_seeds_have_distinct_fingerprints() {
        // Regression for the hoisted zipf-permutation seeding: consecutive
        // drives against one service, differing only in the stream seed,
        // must produce distinct query streams and hence distinct response
        // fingerprints (cache warm-up must not matter either).
        let (service, id) = OracleService::single(snapshot(30, 4));
        let drive_seed = |seed: u64| {
            let spec = LoadSpec {
                queries: 800,
                batch: 128,
                seed,
                ..Default::default()
            };
            drive(&service, id, &spec, ExecPolicy::Seq).fingerprint
        };
        let a = drive_seed(1);
        let b = drive_seed(2);
        let a_again = drive_seed(1);
        assert_ne!(a, b, "distinct seeds must not collide");
        assert_eq!(a, a_again, "same seed replays the same stream");
        // The hot set itself differs per seed, not just the query order.
        let hot = |seed: u64| {
            let spec = LoadSpec {
                queries: 1,
                seed,
                ..Default::default()
            };
            let mut perm_rng = StdRng::seed_from_u64(spec.seed ^ ZIPF_PERM_SALT);
            ZipfSampler::new(30, 1.0, &mut perm_rng).perm.clone()
        };
        assert_ne!(hot(1), hot(2));
    }

    #[test]
    fn readwrite_drive_is_deterministic_and_tracks_writes() {
        let spec = ReadWriteSpec {
            load: LoadSpec {
                queries: 600,
                batch: 64,
                seed: 5,
                ..Default::default()
            },
            write_ratio: 0.5,
            ops_per_batch: 3,
            profile: MutationProfile::TopologyHeavy,
        };
        let run = |threads: usize| {
            let mut service = OracleService::default();
            service.register("g", snapshot(26, 8));
            let result =
                drive_readwrite(&mut service, "g", &spec, ExecPolicy::with_threads(threads));
            let final_snap = service.export(service.resolve("g").unwrap());
            (result, final_snap)
        };
        let (seq, seq_snap) = run(1);
        assert_eq!(
            seq.write_batches, 5,
            "0.5 writes/read-batch over 10 read batches"
        );
        assert!(seq.ops_applied > 0);
        assert_eq!(seq.repairs + seq.rebuilds, seq.write_batches as u64);
        assert!(seq.write_p50_ms <= seq.write_p95_ms);
        // The served state really moved, and service/engine agree on it.
        assert_ne!(
            seq.final_state_fingerprint,
            snapshot(26, 8).state_fingerprint()
        );
        assert_eq!(seq.final_state_fingerprint, seq_snap.state_fingerprint());
        // The final estimate is exactly a from-scratch rebuild.
        assert_eq!(
            seq_snap.dense_estimate().expect("dense snapshot"),
            &apsp::exact_apsp(&seq_snap.graph)
        );
        for threads in [2, 4] {
            let (par, par_snap) = run(threads);
            assert_eq!(
                par.read.fingerprint, seq.read.fingerprint,
                "threads={threads}"
            );
            assert_eq!(par.final_state_fingerprint, seq.final_state_fingerprint);
            assert_eq!(par_snap, seq_snap);
            assert_eq!((par.repairs, par.rebuilds), (seq.repairs, seq.rebuilds));
        }
        // Pure-read spec degenerates to zero writes.
        let mut service = OracleService::default();
        service.register("g", snapshot(26, 8));
        let none = drive_readwrite(
            &mut service,
            "g",
            &ReadWriteSpec {
                write_ratio: 0.0,
                load: spec.load.clone(),
                ..spec.clone()
            },
            ExecPolicy::Seq,
        );
        assert_eq!(none.write_batches, 0);
        assert_eq!(
            none.final_state_fingerprint,
            snapshot(26, 8).state_fingerprint()
        );
    }

    #[test]
    fn readwrite_record_carries_write_extras() {
        let mut service = OracleService::default();
        service.register("g", snapshot(20, 9));
        let result = drive_readwrite(
            &mut service,
            "g",
            &ReadWriteSpec {
                load: LoadSpec {
                    queries: 100,
                    batch: 25,
                    ..Default::default()
                },
                write_ratio: 1.0,
                ops_per_batch: 2,
                profile: MutationProfile::ReweightHeavy,
            },
            ExecPolicy::Seq,
        );
        let rec = result.to_record("serve_readwrite", 20);
        for key in [
            "qps",
            "write_batches",
            "repairs",
            "rebuilds",
            "write_p50_ms",
        ] {
            assert!(
                rec.extras.iter().any(|(k, _)| k == key),
                "missing extra {key}"
            );
        }
        assert_eq!(
            rec.extras
                .iter()
                .find(|(k, _)| k == "write_batches")
                .unwrap()
                .1,
            result.write_batches as f64
        );
    }

    #[test]
    fn bench_record_carries_the_serving_extras() {
        let result = ServeBenchResult {
            queries: 1000,
            threads: 4,
            wall_ms: 12.5,
            qps: 80_000.0,
            p50_us: 1.5,
            p95_us: 3.0,
            p99_us: 9.0,
            cache_hit_rate: 0.75,
            estimate_mem_bytes: 131_072,
            fingerprint: 42,
        };
        let rec = result.to_record("serve_mixed", 128);
        assert_eq!(rec.experiment, "serve_mixed");
        assert_eq!(rec.threads, 4);
        assert!(rec.extras.iter().any(|(k, v)| k == "qps" && *v == 80_000.0));
        assert!(rec
            .extras
            .iter()
            .any(|(k, v)| k == "cache_hit_rate" && *v == 0.75));
        assert!(rec
            .extras
            .iter()
            .any(|(k, v)| k == "estimate_mem_bytes" && *v == 131_072.0));
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1000).collect(); // 1..100 µs
        assert!((percentile_us(&sorted, 0.50) - 50.0).abs() < 1.5);
        assert!((percentile_us(&sorted, 0.99) - 99.0).abs() < 1.5);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
