//! The `ccapsp serve` wire protocol: length-prefixed, checksummed binary
//! frames over TCP, in the same self-validating style as the `*.ccsnap`
//! format ([`crate::snapshot`]).
//!
//! # Frame layout
//!
//! Every message — request or reply — is one frame (all integers
//! little-endian):
//!
//! | field    | size | value                                         |
//! |----------|------|-----------------------------------------------|
//! | magic    | 8    | `CCWIRE\0\n` ([`WIRE_MAGIC`])                 |
//! | version  | 4    | [`WIRE_VERSION`]                              |
//! | kind     | 4    | [`FrameKind`] discriminant                    |
//! | length   | 8    | payload byte count                            |
//! | checksum | 8    | FNV-1a over `kind ‖ length ‖ payload`         |
//! | payload  | len  | kind-specific body                            |
//!
//! The checksum covers the `kind` and `length` fields as well as the
//! payload, so a bit-flip *anywhere* past the version field is detected:
//! flipping `kind` to another valid discriminant, shrinking `length` to a
//! plausible smaller body, or corrupting one payload byte all surface as
//! [`WireError::ChecksumMismatch`], never as a quietly different message.
//! The survival guarantees mirror the snapshot decoder's, property-tested
//! in `tests/wire_props.rs`:
//!
//! * every truncation point → [`WireError::Truncated`];
//! * any single-bit flip → a typed error, never a decoded frame;
//! * a lying `length` is capped *before* allocation
//!   ([`WireError::Oversized`]), so a 16-exabyte header cannot reserve
//!   memory;
//! * trailing or missing payload bytes inside a kind-specific body →
//!   [`WireError::Malformed`].
//!
//! Node-count/length fields inside payloads go through the same checked
//! `u64 → usize` cursor as the snapshot decoder ([`crate::cursor`]), so
//! 32-bit builds reject rather than truncate.

use std::io::{Read, Write};

use cc_graph::{NodeId, Weight};

use crate::cursor::{Cursor, ReadError};
use crate::service::{Query, Response};
use crate::snapshot::fnv1a;

/// Leading bytes of every frame.
pub const WIRE_MAGIC: [u8; 8] = *b"CCWIRE\0\n";

/// Protocol version this build speaks.
pub const WIRE_VERSION: u32 = 1;

/// Fixed frame header size: magic + version + kind + length + checksum.
pub const HEADER_LEN: usize = 32;

/// Default cap on a frame's declared payload length (64 MiB). A header
/// declaring more is rejected before any allocation.
pub const DEFAULT_FRAME_CAP: u64 = 64 << 20;

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket/stream failed.
    Io(std::io::Error),
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u32),
    /// The kind field is not a known [`FrameKind`].
    UnknownKind(u32),
    /// The input ended before the declared length was satisfied.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame checksum does not match its `kind ‖ length ‖ payload`.
    ChecksumMismatch,
    /// The declared payload length exceeds the configured cap.
    Oversized {
        /// The length the header declared.
        declared: u64,
        /// The cap it was checked against.
        cap: u64,
    },
    /// The payload is structurally invalid for its kind.
    Malformed(String),
    /// The server answered with an [`Reply::Error`] frame (client-side
    /// surface of a remote failure).
    Remote(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic => write!(f, "not a ccwire frame (bad magic)"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {available} available"
                )
            }
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Oversized { declared, cap } => {
                write!(f, "frame declares {declared} payload bytes, cap is {cap}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ReadError> for WireError {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Truncated { needed, available } => {
                WireError::Truncated { needed, available }
            }
            ReadError::LengthOverflow(v) => WireError::Malformed(format!(
                "length field {v} exceeds this platform's addressable size"
            )),
            ReadError::InvalidUtf8 => WireError::Malformed("non-utf8 string".into()),
        }
    }
}

/// Frame discriminants. Requests are 1–8, replies 17–25, so a stray reply
/// can never be mistaken for a request (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FrameKind {
    /// Client → server: a batch of queries against a named snapshot.
    Batch = 1,
    /// Client → server: request the text metrics report.
    Metrics = 2,
    /// Client → server: request a named snapshot's serving info.
    Info = 3,
    /// Client → server: apply a `cc_dynamic` delta to a named snapshot.
    ApplyDelta = 4,
    /// Client → server: register a new snapshot version under a name.
    SwapSnapshot = 5,
    /// Client → server: drain and stop the server.
    Shutdown = 6,
    /// Client → server: request the Prometheus-style exposition
    /// (metrics v2: rolling-window rates, gauges, per-snapshot families).
    MetricsV2 = 7,
    /// Client → server: request the flight-recorder ring as JSON.
    FlightDump = 8,
    /// Server → client: the responses to a [`FrameKind::Batch`], in order.
    BatchOk = 17,
    /// Server → client: the metrics report body.
    MetricsOk = 18,
    /// Server → client: snapshot serving info.
    InfoOk = 19,
    /// Server → client: an admin operation succeeded.
    AdminOk = 20,
    /// Server → client: the job queue is full; retry later.
    Overload = 21,
    /// Server → client: the request failed (message payload).
    Error = 22,
    /// Server → client: shutdown acknowledged; the server is draining.
    ShutdownOk = 23,
    /// Server → client: the Prometheus-style exposition body.
    MetricsV2Ok = 24,
    /// Server → client: the flight-recorder JSON document.
    FlightDumpOk = 25,
}

impl FrameKind {
    fn from_u32(k: u32) -> Option<Self> {
        Some(match k {
            1 => FrameKind::Batch,
            2 => FrameKind::Metrics,
            3 => FrameKind::Info,
            4 => FrameKind::ApplyDelta,
            5 => FrameKind::SwapSnapshot,
            6 => FrameKind::Shutdown,
            7 => FrameKind::MetricsV2,
            8 => FrameKind::FlightDump,
            17 => FrameKind::BatchOk,
            18 => FrameKind::MetricsOk,
            19 => FrameKind::InfoOk,
            20 => FrameKind::AdminOk,
            21 => FrameKind::Overload,
            22 => FrameKind::Error,
            23 => FrameKind::ShutdownOk,
            24 => FrameKind::MetricsV2Ok,
            25 => FrameKind::FlightDumpOk,
            _ => return None,
        })
    }
}

/// One decoded frame: its kind plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub kind: FrameKind,
    /// The kind-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encodes the frame into its wire bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.kind as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&frame_checksum(self.kind as u32, &self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// The checksummed region: `kind ‖ length ‖ payload`.
fn frame_checksum(kind: u32, payload: &[u8]) -> u64 {
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(&kind.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    fnv1a(&bytes)
}

/// Decodes one frame from the front of `data`, returning it plus the byte
/// count consumed. Never allocates more than `cap` bytes no matter what the
/// header declares.
pub fn decode_frame(data: &[u8], cap: u64) -> Result<(Frame, usize), WireError> {
    let mut cur = Cursor::new(data);
    let magic = cur.take(WIRE_MAGIC.len())?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind_raw = cur.u32()?;
    // The cap check runs on the raw u64 before any usize conversion, so a
    // 16-exabyte header is Oversized, not a 32-bit overflow.
    let declared = cur.u64()?;
    if declared > cap {
        return Err(WireError::Oversized { declared, cap });
    }
    let len = usize::try_from(declared).map_err(|_| WireError::Oversized { declared, cap })?;
    let checksum = cur.u64()?;
    let payload = cur.take(len)?;
    // Kind validity is checked *after* the payload is in hand but the
    // checksum verdict comes first: a bit-flipped kind field fails the
    // checksum (it is covered), which is the more precise diagnosis.
    if frame_checksum(kind_raw, payload) != checksum {
        return Err(WireError::ChecksumMismatch);
    }
    let kind = FrameKind::from_u32(kind_raw).ok_or(WireError::UnknownKind(kind_raw))?;
    let consumed = HEADER_LEN + len;
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        consumed,
    ))
}

/// Reads exactly `buf.len()` bytes, looping over short reads. `Ok(0)` from
/// the reader (peer closed) surfaces as [`WireError::Truncated`] unless it
/// happens before the first byte, which returns `Ok(false)` (clean EOF at a
/// frame boundary).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    available: filled,
                });
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame from a blocking stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary (the peer closed between frames); a close
/// mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, cap: u64) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    let mut cur = Cursor::new(&header);
    if cur.take(WIRE_MAGIC.len())? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind_raw = cur.u32()?;
    let declared = cur.u64()?;
    if declared > cap {
        return Err(WireError::Oversized { declared, cap });
    }
    let len = usize::try_from(declared).map_err(|_| WireError::Oversized { declared, cap })?;
    let checksum = cur.u64()?;
    let mut payload = vec![0u8; len];
    if !read_full(r, &mut payload)? && len > 0 {
        return Err(WireError::Truncated {
            needed: len,
            available: 0,
        });
    }
    if frame_checksum(kind_raw, &payload) != checksum {
        return Err(WireError::ChecksumMismatch);
    }
    let kind = FrameKind::from_u32(kind_raw).ok_or(WireError::UnknownKind(kind_raw))?;
    Ok(Some(Frame { kind, payload }))
}

/// Writes one frame to a blocking stream and flushes it.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a batch of queries against the newest version of a named
    /// snapshot; answered by [`Reply::Batch`] (or [`Reply::Overload`]).
    Batch {
        /// Snapshot name (`"default"` for single-snapshot servers).
        name: String,
        /// Queries, answered in order.
        queries: Vec<Query>,
    },
    /// Request the metrics report; answered by [`Reply::Metrics`].
    Metrics,
    /// Request serving info for a named snapshot; answered by
    /// [`Reply::Info`].
    Info {
        /// Snapshot name.
        name: String,
    },
    /// Apply an encoded `cc_dynamic` delta to a named snapshot (blue/green
    /// version bump); answered by [`Reply::AdminOk`].
    ApplyDelta {
        /// Snapshot name.
        name: String,
        /// `Delta::to_bytes` encoding.
        delta: Vec<u8>,
    },
    /// Register an encoded snapshot as the newest version under a name;
    /// answered by [`Reply::AdminOk`].
    SwapSnapshot {
        /// Snapshot name.
        name: String,
        /// `Snapshot::to_bytes` encoding.
        snapshot: Vec<u8>,
    },
    /// Drain in-flight work and stop the server; answered by
    /// [`Reply::ShutdownOk`].
    Shutdown,
    /// Request the Prometheus-style exposition (rolling-window QPS,
    /// latency quantiles, gauges, per-snapshot families); answered by
    /// [`Reply::MetricsV2`]. Same body as the HTTP `GET /metrics`
    /// responder.
    MetricsV2,
    /// Request the flight-recorder ring of recent structured events as a
    /// `cc-flight/v1` JSON document; answered by [`Reply::FlightDump`].
    FlightDump,
}

/// Serving info for one snapshot, carried by [`Reply::Info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeInfo {
    /// Snapshot name.
    pub name: String,
    /// Live (blue/green) version.
    pub version: u32,
    /// Node count.
    pub n: usize,
    /// Producing algorithm (from the snapshot metadata).
    pub algo: String,
    /// Resident size estimate of the distance structure, bytes.
    pub mem_bytes: u64,
    /// Hot-row cache hits so far.
    pub cache_hits: u64,
    /// Hot-row cache misses so far.
    pub cache_misses: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Responses to a [`Request::Batch`], in query order.
    Batch(Vec<Response>),
    /// The text metrics report ([`crate::OracleService::metrics_text`] plus
    /// server counters).
    Metrics(String),
    /// Serving info for the requested snapshot.
    Info(ServeInfo),
    /// An admin operation succeeded (human-readable detail).
    AdminOk(String),
    /// The job queue was full; the batch was not enqueued. Carries the
    /// queue depth at rejection. Retry after a backoff.
    Overload(u64),
    /// The request failed; human-readable reason.
    Error(String),
    /// Shutdown acknowledged.
    ShutdownOk,
    /// The Prometheus-style exposition body (metrics v2).
    MetricsV2(String),
    /// The flight-recorder ring as a `cc-flight/v1` JSON document.
    FlightDump(String),
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_queries(out: &mut Vec<u8>, queries: &[Query]) {
    out.extend_from_slice(&(queries.len() as u64).to_le_bytes());
    for q in queries {
        let (tag, a, b) = match *q {
            Query::Dist(u, v) => (1u8, u as u64, v as u64),
            Query::Route(u, v) => (2, u as u64, v as u64),
            Query::KNearest(u, k) => (3, u as u64, k as u64),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn decode_queries(cur: &mut Cursor<'_>) -> Result<Vec<Query>, WireError> {
    let count = cur.len_u64()?;
    // Each query is 17 bytes; cap the preallocation by what the payload can
    // actually hold, same discipline as the snapshot decoder.
    let mut queries = Vec::with_capacity(count.min(cur.remaining() / 17 + 1));
    for _ in 0..count {
        let tag = cur.u8()?;
        let a = cur.len_u64()?;
        let b = cur.len_u64()?;
        queries.push(match tag {
            1 => Query::Dist(a, b),
            2 => Query::Route(a, b),
            3 => Query::KNearest(a, b),
            t => return Err(WireError::Malformed(format!("unknown query tag {t}"))),
        });
    }
    Ok(queries)
}

/// Encodes responses with the exact same byte layout the response
/// fingerprint hashes ([`crate::service::fingerprint`]), so what is checked
/// end-to-end is literally what crossed the wire.
fn encode_responses(out: &mut Vec<u8>, responses: &[Response]) {
    out.extend_from_slice(&(responses.len() as u64).to_le_bytes());
    for r in responses {
        match r {
            Response::Dist(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Response::Route(path) => {
                out.push(2);
                match path {
                    None => out.push(0),
                    Some(nodes) => {
                        out.push(1);
                        out.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
                        for &x in nodes {
                            out.extend_from_slice(&(x as u64).to_le_bytes());
                        }
                    }
                }
            }
            Response::KNearest(rows) => {
                out.push(3);
                out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                for &(v, d) in rows {
                    out.extend_from_slice(&(v as u64).to_le_bytes());
                    out.extend_from_slice(&d.to_le_bytes());
                }
            }
        }
    }
}

fn decode_responses(cur: &mut Cursor<'_>) -> Result<Vec<Response>, WireError> {
    let count = cur.len_u64()?;
    let mut responses = Vec::with_capacity(count.min(cur.remaining() / 9 + 1));
    for _ in 0..count {
        let tag = cur.u8()?;
        responses.push(match tag {
            1 => Response::Dist(cur.u64()?),
            2 => match cur.u8()? {
                0 => Response::Route(None),
                1 => {
                    let len = cur.len_u64()?;
                    let mut nodes: Vec<NodeId> =
                        Vec::with_capacity(len.min(cur.remaining() / 8 + 1));
                    for _ in 0..len {
                        nodes.push(cur.len_u64()?);
                    }
                    Response::Route(Some(nodes))
                }
                f => return Err(WireError::Malformed(format!("bad route flag {f}"))),
            },
            3 => {
                let len = cur.len_u64()?;
                let mut rows: Vec<(NodeId, Weight)> =
                    Vec::with_capacity(len.min(cur.remaining() / 16 + 1));
                for _ in 0..len {
                    let v = cur.len_u64()?;
                    let d = cur.u64()?;
                    rows.push((v, d));
                }
                Response::KNearest(rows)
            }
            t => return Err(WireError::Malformed(format!("unknown response tag {t}"))),
        });
    }
    Ok(responses)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_bytes(cur: &mut Cursor<'_>) -> Result<Vec<u8>, WireError> {
    let len = cur.len_u64()?;
    Ok(cur.take(len)?.to_vec())
}

fn finish(cur: &Cursor<'_>) -> Result<(), WireError> {
    if cur.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after payload body",
            cur.remaining()
        )));
    }
    Ok(())
}

impl Request {
    /// Encodes the request as a frame.
    pub fn to_frame(&self) -> Frame {
        let mut payload = Vec::new();
        let kind = match self {
            Request::Batch { name, queries } => {
                put_str(&mut payload, name);
                encode_queries(&mut payload, queries);
                FrameKind::Batch
            }
            Request::Metrics => FrameKind::Metrics,
            Request::Info { name } => {
                put_str(&mut payload, name);
                FrameKind::Info
            }
            Request::ApplyDelta { name, delta } => {
                put_str(&mut payload, name);
                put_bytes(&mut payload, delta);
                FrameKind::ApplyDelta
            }
            Request::SwapSnapshot { name, snapshot } => {
                put_str(&mut payload, name);
                put_bytes(&mut payload, snapshot);
                FrameKind::SwapSnapshot
            }
            Request::Shutdown => FrameKind::Shutdown,
            Request::MetricsV2 => FrameKind::MetricsV2,
            Request::FlightDump => FrameKind::FlightDump,
        };
        Frame { kind, payload }
    }

    /// Decodes a request from a frame. Reply kinds are
    /// [`WireError::Malformed`] here — a server never accepts them.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let mut cur = Cursor::new(&frame.payload);
        let req = match frame.kind {
            FrameKind::Batch => Request::Batch {
                name: cur.str()?,
                queries: decode_queries(&mut cur)?,
            },
            FrameKind::Metrics => Request::Metrics,
            FrameKind::Info => Request::Info { name: cur.str()? },
            FrameKind::ApplyDelta => Request::ApplyDelta {
                name: cur.str()?,
                delta: take_bytes(&mut cur)?,
            },
            FrameKind::SwapSnapshot => Request::SwapSnapshot {
                name: cur.str()?,
                snapshot: take_bytes(&mut cur)?,
            },
            FrameKind::Shutdown => Request::Shutdown,
            FrameKind::MetricsV2 => Request::MetricsV2,
            FrameKind::FlightDump => Request::FlightDump,
            k => {
                return Err(WireError::Malformed(format!(
                    "frame kind {:?} is not a request",
                    k
                )))
            }
        };
        finish(&cur)?;
        Ok(req)
    }
}

impl Reply {
    /// Encodes the reply as a frame.
    pub fn to_frame(&self) -> Frame {
        let mut payload = Vec::new();
        let kind = match self {
            Reply::Batch(responses) => {
                encode_responses(&mut payload, responses);
                FrameKind::BatchOk
            }
            Reply::Metrics(text) => {
                put_str(&mut payload, text);
                FrameKind::MetricsOk
            }
            Reply::Info(info) => {
                put_str(&mut payload, &info.name);
                payload.extend_from_slice(&info.version.to_le_bytes());
                payload.extend_from_slice(&(info.n as u64).to_le_bytes());
                put_str(&mut payload, &info.algo);
                payload.extend_from_slice(&info.mem_bytes.to_le_bytes());
                payload.extend_from_slice(&info.cache_hits.to_le_bytes());
                payload.extend_from_slice(&info.cache_misses.to_le_bytes());
                FrameKind::InfoOk
            }
            Reply::AdminOk(msg) => {
                put_str(&mut payload, msg);
                FrameKind::AdminOk
            }
            Reply::Overload(depth) => {
                payload.extend_from_slice(&depth.to_le_bytes());
                FrameKind::Overload
            }
            Reply::Error(msg) => {
                put_str(&mut payload, msg);
                FrameKind::Error
            }
            Reply::ShutdownOk => FrameKind::ShutdownOk,
            Reply::MetricsV2(text) => {
                put_str(&mut payload, text);
                FrameKind::MetricsV2Ok
            }
            Reply::FlightDump(json) => {
                put_str(&mut payload, json);
                FrameKind::FlightDumpOk
            }
        };
        Frame { kind, payload }
    }

    /// Decodes a reply from a frame. Request kinds are
    /// [`WireError::Malformed`] here — a client never accepts them.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        let mut cur = Cursor::new(&frame.payload);
        let reply = match frame.kind {
            FrameKind::BatchOk => Reply::Batch(decode_responses(&mut cur)?),
            FrameKind::MetricsOk => Reply::Metrics(cur.str()?),
            FrameKind::InfoOk => Reply::Info(ServeInfo {
                name: cur.str()?,
                version: cur.u32()?,
                n: cur.len_u64()?,
                algo: cur.str()?,
                mem_bytes: cur.u64()?,
                cache_hits: cur.u64()?,
                cache_misses: cur.u64()?,
            }),
            FrameKind::AdminOk => Reply::AdminOk(cur.str()?),
            FrameKind::Overload => Reply::Overload(cur.u64()?),
            FrameKind::Error => Reply::Error(cur.str()?),
            FrameKind::ShutdownOk => Reply::ShutdownOk,
            FrameKind::MetricsV2Ok => Reply::MetricsV2(cur.str()?),
            FrameKind::FlightDumpOk => Reply::FlightDump(cur.str()?),
            k => {
                return Err(WireError::Malformed(format!(
                    "frame kind {:?} is not a reply",
                    k
                )))
            }
        };
        finish(&cur)?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = req.to_frame();
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes, DEFAULT_FRAME_CAP).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
        assert_eq!(Request::from_frame(&decoded).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Batch {
            name: "default".into(),
            queries: vec![Query::Dist(0, 5), Query::Route(3, 4), Query::KNearest(2, 8)],
        });
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Info { name: "x".into() });
        roundtrip_request(Request::ApplyDelta {
            name: "default".into(),
            delta: vec![1, 2, 3],
        });
        roundtrip_request(Request::SwapSnapshot {
            name: "default".into(),
            snapshot: vec![9; 40],
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::MetricsV2);
        roundtrip_request(Request::FlightDump);
    }

    #[test]
    fn replies_roundtrip() {
        for reply in [
            Reply::Batch(vec![
                Response::Dist(17),
                Response::Route(None),
                Response::Route(Some(vec![1, 2, 3])),
                Response::KNearest(vec![(4, 9), (5, 11)]),
            ]),
            Reply::Metrics("== serve metrics ==\n".into()),
            Reply::Info(ServeInfo {
                name: "default".into(),
                version: 3,
                n: 128,
                algo: "thm11".into(),
                mem_bytes: 131072,
                cache_hits: 10,
                cache_misses: 2,
            }),
            Reply::AdminOk("applied".into()),
            Reply::Overload(64),
            Reply::Error("unknown snapshot".into()),
            Reply::ShutdownOk,
            Reply::MetricsV2("# TYPE ccapsp_qps gauge\nccapsp_qps{window=\"1s\"} 42\n".into()),
            Reply::FlightDump("{\"schema\":\"cc-flight/v1\",\"count\":0,\"events\":[]}\n".into()),
        ] {
            let frame = reply.to_frame();
            let (decoded, _) = decode_frame(&frame.encode(), DEFAULT_FRAME_CAP).unwrap();
            assert_eq!(Reply::from_frame(&decoded).unwrap(), reply);
        }
    }

    #[test]
    fn lying_length_is_capped_before_allocation() {
        let mut bytes = Request::Metrics.to_frame().encode();
        // Overwrite the length field (offset 16) with 16 EiB.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        match decode_frame(&bytes, DEFAULT_FRAME_CAP) {
            Err(WireError::Oversized { declared, cap }) => {
                assert_eq!(declared, u64::MAX);
                assert_eq!(cap, DEFAULT_FRAME_CAP);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_in_payload_are_malformed() {
        let mut frame = Request::Metrics.to_frame();
        frame.payload.push(0);
        let (decoded, _) = decode_frame(&frame.encode(), DEFAULT_FRAME_CAP).unwrap();
        assert!(matches!(
            Request::from_frame(&decoded),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_mid_frame_close() {
        let bytes = Request::Metrics.to_frame().encode();
        let mut empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_FRAME_CAP),
            Ok(None)
        ));
        let mut half = &bytes[..bytes.len() / 2];
        assert!(matches!(
            read_frame(&mut half, DEFAULT_FRAME_CAP),
            Err(WireError::Truncated { .. })
        ));
        let mut whole = &bytes[..];
        let frame = read_frame(&mut whole, DEFAULT_FRAME_CAP).unwrap().unwrap();
        assert_eq!(Request::from_frame(&frame).unwrap(), Request::Metrics);
    }
}
