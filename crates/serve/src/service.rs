//! The query engine: a multi-snapshot registry answering typed distance
//! queries, in batches, under any [`ExecPolicy`].
//!
//! An [`OracleService`] holds one or more loaded [`Snapshot`]s (versioned by
//! registration order per name, like a blue/green deploy of a freshly
//! recomputed estimate) and answers three query types:
//!
//! * [`Query::Dist`] — the estimate δ(u, v), a single matrix read;
//! * [`Query::Route`] — the greedy next-hop walk of
//!   [`cc_apsp::oracle::DistanceOracle::route`];
//! * [`Query::KNearest`] — the `k` nodes nearest to `u` under δ, with the
//!   same `(distance, id)` ordering as `cc_graph::sssp::k_nearest` and the
//!   `cc_apsp::knearest` machinery that computes these sets in-clique.
//!
//! Batches run through [`OracleService::run_batch`], which shards the query
//! slice over the workspace's `cc_par` pool and reassembles responses **in
//! query order** — so for a fixed snapshot the responses are bit-identical
//! at every thread count (property-tested in `tests/serve_determinism.rs`).
//! `KNearest` is the only query whose per-call work is superlinear in the
//! row, so the service keeps a bounded LRU cache of fully-sorted hot rows;
//! cache state affects hit-rate statistics and latency only, never a
//! response.

use cc_apsp::oracle::DistanceOracle;
use cc_graph::sssp::k_nearest_from_dists;
use cc_graph::{NodeId, Weight};
use cc_obs::Histogram;
use cc_par::ExecPolicy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::snapshot::{fnv1a, Snapshot, SnapshotMeta};

/// Locks a mutex, recovering from poisoning instead of propagating the
/// panic: a worker that panicked mid-query (out-of-range node id, allocation
/// failure, …) must not take the whole service down with it. Every mutex in
/// this module guards state whose invariants hold at every statement — the
/// row cache never changes an answer and the histograms are append-only —
/// so the contents are valid even when a holder panicked, and a long-lived
/// server (`ccapsp serve`) keeps answering after an isolated crash.
pub(crate) fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle to one registered snapshot inside an [`OracleService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotId(usize);

/// A typed point query against one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The distance estimate δ(u, v).
    Dist(NodeId, NodeId),
    /// The greedy route from `u` to `v` (node sequence, if delivered).
    Route(NodeId, NodeId),
    /// The `k` nodes nearest to `u` under δ, ordered by `(distance, id)`.
    KNearest(NodeId, usize),
}

/// Human-readable names of the query types, indexed by
/// [`Query::type_index`].
pub const QUERY_TYPE_NAMES: [&str; 3] = ["dist", "route", "knearest"];

impl Query {
    /// Index of this query's type into per-type stats arrays (and
    /// [`QUERY_TYPE_NAMES`]).
    pub fn type_index(&self) -> usize {
        match self {
            Query::Dist(..) => 0,
            Query::Route(..) => 1,
            Query::KNearest(..) => 2,
        }
    }

    /// Machine-readable name of this query's type.
    pub fn type_name(&self) -> &'static str {
        QUERY_TYPE_NAMES[self.type_index()]
    }
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Query::Dist`].
    Dist(Weight),
    /// Answer to [`Query::Route`]: the walked node sequence, or `None` when
    /// greedy routing gave up.
    Route(Option<Vec<NodeId>>),
    /// Answer to [`Query::KNearest`].
    KNearest(Vec<(NodeId, Weight)>),
}

/// Content fingerprint of a response sequence: hashes the responses in
/// order, so two runs agree iff they produced the same responses in the
/// same order. Used by the load generator and the CLI to check result
/// determinism across thread counts without shipping the full response log.
pub fn fingerprint(responses: &[Response]) -> u64 {
    let mut bytes = Vec::new();
    for r in responses {
        match r {
            Response::Dist(d) => {
                bytes.push(1);
                bytes.extend_from_slice(&d.to_le_bytes());
            }
            Response::Route(path) => {
                bytes.push(2);
                match path {
                    None => bytes.push(0),
                    Some(nodes) => {
                        bytes.push(1);
                        bytes.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
                        for &x in nodes {
                            bytes.extend_from_slice(&(x as u64).to_le_bytes());
                        }
                    }
                }
            }
            Response::KNearest(rows) => {
                bytes.push(3);
                bytes.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                for &(v, d) in rows {
                    bytes.extend_from_slice(&(v as u64).to_le_bytes());
                    bytes.extend_from_slice(&d.to_le_bytes());
                }
            }
        }
    }
    fnv1a(&bytes)
}

/// Tuning knobs for [`OracleService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Capacity (in rows) of the per-snapshot sorted-row LRU cache backing
    /// `KNearest` queries. `0` disables caching.
    pub cache_rows: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { cache_rows: 64 }
    }
}

/// Cache hit/miss counters for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `KNearest` calls served from the sorted-row cache.
    pub hits: u64,
    /// `KNearest` calls that had to sort the row.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU of fully-sorted estimate rows, keyed by **(snapshot
/// version, row)** — after a blue/green swap ([`OracleService::apply_delta`]
/// bumps the entry's version in place) every lookup misses by construction,
/// so a cached row from the previous estimate can never be served against
/// the new one. Recency is a logical clock stamp; eviction scans for the
/// minimum stamp (caches are small — tens of rows — so the O(capacity)
/// scan is cheaper than maintaining a list).
struct RowCache {
    cap: usize,
    clock: u64,
    rows: HashMap<CacheKey, (u64, SortedRow)>,
}

/// `(snapshot version, source row)` — the cache key; see [`RowCache`].
type CacheKey = (u32, NodeId);

/// A fully-sorted `(node, distance)` estimate row.
type SortedRow = Vec<(NodeId, Weight)>;

impl RowCache {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            clock: 0,
            rows: HashMap::with_capacity(cap),
        }
    }

    fn get(&mut self, version: u32, u: NodeId) -> Option<&SortedRow> {
        self.clock += 1;
        let clock = self.clock;
        self.rows.get_mut(&(version, u)).map(|(stamp, row)| {
            *stamp = clock;
            &*row
        })
    }

    fn insert(&mut self, version: u32, u: NodeId, row: SortedRow) {
        if self.cap == 0 {
            return;
        }
        if self.rows.len() >= self.cap && !self.rows.contains_key(&(version, u)) {
            // Rows from superseded versions age out first: they can never
            // hit again (lookups carry the current version), so their
            // stamps only go stale.
            if let Some(evict) = self
                .rows
                .iter()
                .min_by_key(|(key, (stamp, _))| (*stamp, **key))
                .map(|(key, _)| *key)
            {
                self.rows.remove(&evict);
            }
        }
        self.clock += 1;
        self.rows.insert((version, u), (self.clock, row));
    }
}

/// Everything that can make [`OracleService::apply_delta`] fail.
#[derive(Debug)]
pub enum ApplyDeltaError {
    /// No snapshot is registered under the given name.
    UnknownSnapshot(String),
    /// The delta did not validate against the live state; see
    /// [`cc_dynamic::DeltaError`].
    Delta(cc_dynamic::DeltaError),
}

impl std::fmt::Display for ApplyDeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyDeltaError::UnknownSnapshot(name) => {
                write!(f, "no snapshot registered as {name:?}")
            }
            ApplyDeltaError::Delta(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApplyDeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyDeltaError::Delta(e) => Some(e),
            ApplyDeltaError::UnknownSnapshot(_) => None,
        }
    }
}

/// Per-query-type serving counters of one snapshot: how many queries of
/// the type ran and the latency distribution of the batched ones.
#[derive(Default)]
struct TypeStat {
    count: AtomicU64,
    latency_ns: Mutex<Histogram>,
}

/// Point-in-time summary of one query type's serving stats; see
/// [`OracleService::query_type_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryTypeStats {
    /// Queries of this type answered (batched or direct).
    pub count: u64,
    /// Batched queries of this type with a recorded latency.
    pub timed: u64,
    /// Median batched latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile batched latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile batched latency, microseconds.
    pub p99_us: f64,
}

/// One loaded snapshot: the oracle plus its serving-side state.
struct Entry {
    name: String,
    version: u32,
    meta: SnapshotMeta,
    oracle: DistanceOracle,
    cache: Mutex<RowCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    type_stats: [TypeStat; 3],
}

/// The outcome of one [`OracleService::run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One response per query, in query order.
    pub responses: Vec<Response>,
    /// Per-query service time in nanoseconds, in query order.
    pub latencies_ns: Vec<u64>,
    /// Wall-clock for the whole batch in milliseconds.
    pub wall_ms: f64,
}

/// A registry of loaded snapshots plus the batched query engine over them.
pub struct OracleService {
    cfg: ServiceConfig,
    entries: Vec<Entry>,
    by_name: HashMap<String, Vec<usize>>,
    started: Instant,
}

impl std::fmt::Debug for OracleService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleService")
            .field("snapshots", &self.entries.len())
            .field("cache_rows", &self.cfg.cache_rows)
            .finish()
    }
}

impl Default for OracleService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl OracleService {
    /// An empty service with the given tuning.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self {
            cfg,
            entries: Vec::new(),
            by_name: HashMap::new(),
            started: Instant::now(),
        }
    }

    /// Seconds since this service was constructed — the daemon's uptime,
    /// reported by [`OracleService::metrics_text`] and the Prometheus-style
    /// exposition so a scraper can spot restarts.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Every registered snapshot id (all names, all versions), in
    /// registration order. The exposition renderers iterate this.
    pub fn ids(&self) -> impl Iterator<Item = SnapshotId> + '_ {
        (0..self.entries.len()).map(SnapshotId)
    }

    /// Canonical backend-kind name (`dense` | `landmark`) of a registered
    /// snapshot — lets a scraper tell a dense daemon from a landmark one.
    pub fn backend_kind(&self, id: SnapshotId) -> &'static str {
        self.entries[id.0].oracle.backend().kind().name()
    }

    /// Convenience: a default-tuned service with `snapshot` registered as
    /// `"default"`.
    pub fn single(snapshot: Snapshot) -> (Self, SnapshotId) {
        let mut service = Self::default();
        let id = service.register("default", snapshot);
        (service, id)
    }

    /// Loads a snapshot under `name`. Registering the same name again adds a
    /// new *version*; [`OracleService::resolve`] always answers with the
    /// newest one, so a refreshed estimate can be swapped in while the old
    /// version stays queryable by id.
    pub fn register(&mut self, name: &str, snapshot: Snapshot) -> SnapshotId {
        let idx = self.entries.len();
        let versions = self.by_name.entry(name.to_string()).or_default();
        // Continue numbering from the newest *live* version, not the entry
        // count: `apply_delta` bumps versions in place, and a snapshot swap
        // after a delta must still advance the advertised version (the row
        // cache is keyed by it, so a reused number would serve stale rows).
        let version = versions
            .last()
            .map_or(0, |&prev| self.entries[prev].version)
            + 1;
        versions.push(idx);
        self.entries.push(Entry {
            name: name.to_string(),
            version,
            meta: snapshot.meta,
            oracle: DistanceOracle::with_backend(snapshot.graph, snapshot.backend),
            cache: Mutex::new(RowCache::new(self.cfg.cache_rows)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            type_stats: Default::default(),
        });
        SnapshotId(idx)
    }

    /// Applies a dynamic-update delta to the newest snapshot registered
    /// under `name`, as an in-place blue/green version bump: the successor
    /// oracle is fully constructed (both delta fingerprints verified)
    /// before it replaces the live one, and the bumped version re-keys the
    /// hot-row cache, so no query can ever observe a half-applied update or
    /// a stale cached row. On any error the previous state stays live and
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`ApplyDeltaError::UnknownSnapshot`] when `name` is not registered;
    /// [`ApplyDeltaError::Delta`] for fingerprint/validation failures.
    pub fn apply_delta(
        &mut self,
        name: &str,
        delta: &cc_dynamic::Delta,
    ) -> Result<SnapshotId, ApplyDeltaError> {
        let id = self
            .resolve(name)
            .ok_or_else(|| ApplyDeltaError::UnknownSnapshot(name.to_string()))?;
        let e = &mut self.entries[id.0];
        // Take the state out without cloning; restore it verbatim on error.
        let placeholder = DistanceOracle::new(
            cc_graph::Graph::empty(0, cc_graph::graph::Direction::Undirected),
            cc_graph::DistMatrix::infinite(0),
        );
        let (graph, backend) = std::mem::replace(&mut e.oracle, placeholder).into_backend_parts();
        match delta.apply_backend(&graph, &backend) {
            Ok((new_graph, new_backend)) => {
                e.oracle = DistanceOracle::with_backend(new_graph, new_backend);
                e.version += 1;
                Ok(id)
            }
            Err(err) => {
                e.oracle = DistanceOracle::with_backend(graph, backend);
                Err(ApplyDeltaError::Delta(err))
            }
        }
    }

    /// The newest version registered under `name`.
    pub fn resolve(&self, name: &str) -> Option<SnapshotId> {
        self.by_name
            .get(name)
            .and_then(|v| v.last())
            .map(|&idx| SnapshotId(idx))
    }

    /// How many versions have been registered under `name`.
    pub fn versions(&self, name: &str) -> usize {
        self.by_name.get(name).map_or(0, Vec::len)
    }

    /// Total registered snapshots (all names, all versions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no snapshot has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(name, version)` of a registered snapshot.
    pub fn label(&self, id: SnapshotId) -> (&str, u32) {
        let e = &self.entries[id.0];
        (&e.name, e.version)
    }

    /// Provenance of a registered snapshot.
    pub fn meta(&self, id: SnapshotId) -> &SnapshotMeta {
        &self.entries[id.0].meta
    }

    /// Node count of a registered snapshot.
    pub fn n(&self, id: SnapshotId) -> usize {
        self.entries[id.0].oracle.graph().n()
    }

    /// Clones a registered snapshot's current state back out (graph,
    /// estimate, provenance) — after [`OracleService::apply_delta`] calls,
    /// this is the *live* state, not the originally registered one. Used to
    /// persist a mutated snapshot and to seed the dynamic engine in the
    /// read/write load generator.
    pub fn export(&self, id: SnapshotId) -> Snapshot {
        let e = &self.entries[id.0];
        Snapshot::with_backend(
            e.oracle.graph().clone(),
            e.oracle.backend().clone(),
            e.meta.clone(),
        )
    }

    /// Resident size estimate (bytes) of a registered snapshot's distance
    /// structure — `8n²` for a dense matrix, the sketch footprint for a
    /// landmark backend. Reported in the serve/bench records so memory is
    /// comparable across backends.
    pub fn estimate_mem_bytes(&self, id: SnapshotId) -> u64 {
        self.entries[id.0].oracle.backend().approx_mem_bytes()
    }

    /// Cache counters of a registered snapshot.
    pub fn cache_stats(&self, id: SnapshotId) -> CacheStats {
        let e = &self.entries[id.0];
        CacheStats {
            hits: e.hits.load(Ordering::Relaxed),
            misses: e.misses.load(Ordering::Relaxed),
        }
    }

    /// Answers one query. The response is a pure function of the snapshot
    /// and the query — cache state never changes an answer.
    ///
    /// # Panics
    ///
    /// Panics if a node id in the query is out of range for the snapshot
    /// (callers own validation; the CLI checks before calling).
    pub fn answer(&self, id: SnapshotId, query: &Query) -> Response {
        let e = &self.entries[id.0];
        e.type_stats[query.type_index()]
            .count
            .fetch_add(1, Ordering::Relaxed);
        match *query {
            Query::Dist(u, v) => Response::Dist(e.oracle.query(u, v)),
            Query::Route(u, v) => Response::Route(e.oracle.route(u, v)),
            Query::KNearest(u, k) => Response::KNearest(self.k_nearest(e, u, k)),
        }
    }

    /// The `k` nearest nodes to `u` under the estimate, through the hot-row
    /// cache: a hit truncates the cached sorted row, a miss sorts the row
    /// (the same `(distance, id)` order as `cc_graph::sssp::k_nearest`) and
    /// caches it in full so any later `k` is a truncation.
    fn k_nearest(&self, e: &Entry, u: NodeId, k: usize) -> Vec<(NodeId, Weight)> {
        {
            let mut cache = lock_recovering(&e.cache);
            if let Some(row) = cache.get(e.version, u) {
                e.hits.fetch_add(1, Ordering::Relaxed);
                cc_obs::counter("serve.cache.hit", 1);
                return row.iter().take(k).copied().collect();
            }
        }
        e.misses.fetch_add(1, Ordering::Relaxed);
        cc_obs::counter("serve.cache.miss", 1);
        // Sort outside the lock; concurrent misses may duplicate the work
        // but the row they compute is identical. Dense backends expose the
        // row zero-copy; landmark backends materialize it per miss (which
        // the cache then amortizes).
        let full = match e.oracle.backend().as_dense() {
            Some(matrix) => k_nearest_from_dists(matrix.row(u), matrix.n()),
            None => {
                let row = e.oracle.backend().dist_row(u);
                k_nearest_from_dists(&row, row.len())
            }
        };
        let answer = full.iter().take(k).copied().collect();
        lock_recovering(&e.cache).insert(e.version, u, full);
        answer
    }

    /// Executes a batch of queries, sharded over the `cc_par` pool selected
    /// by `exec`, timing each query individually. Responses come back in
    /// query order regardless of the thread count, so batch results are
    /// bit-identical across policies.
    pub fn run_batch(&self, id: SnapshotId, queries: &[Query], exec: ExecPolicy) -> BatchOutcome {
        let start = Instant::now();
        let timed: Vec<(Response, u64)> = exec.map_shards_collect(queries.len(), |range| {
            range
                .map(|i| {
                    let t = Instant::now();
                    let response = self.answer(id, &queries[i]);
                    (response, t.elapsed().as_nanos() as u64)
                })
                .collect()
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut responses = Vec::with_capacity(timed.len());
        let mut latencies_ns = Vec::with_capacity(timed.len());
        for (r, ns) in timed {
            responses.push(r);
            latencies_ns.push(ns);
        }
        // Per-type latency accounting happens as a post-pass in query order
        // (not inside the shards), so the histograms' contents don't depend
        // on the thread interleaving.
        const LATENCY_HISTS: [&str; 3] = [
            "serve.latency.dist",
            "serve.latency.route",
            "serve.latency.knearest",
        ];
        let e = &self.entries[id.0];
        for (ti, hist_name) in LATENCY_HISTS.iter().enumerate() {
            let mut hist = lock_recovering(&e.type_stats[ti].latency_ns);
            for (q, &ns) in queries.iter().zip(&latencies_ns) {
                if q.type_index() == ti {
                    hist.record(ns);
                    cc_obs::record_hist(hist_name, ns);
                }
            }
        }
        BatchOutcome {
            responses,
            latencies_ns,
            wall_ms,
        }
    }

    /// Per-query-type serving stats of a registered snapshot, indexed like
    /// [`QUERY_TYPE_NAMES`]. Percentiles cover the batched queries
    /// ([`OracleService::run_batch`] records each query's service time into
    /// a per-type [`cc_obs::Histogram`]); `count` also includes direct
    /// [`OracleService::answer`] calls.
    pub fn query_type_stats(&self, id: SnapshotId) -> [QueryTypeStats; 3] {
        let e = &self.entries[id.0];
        std::array::from_fn(|ti| {
            let stat = &e.type_stats[ti];
            let hist = lock_recovering(&stat.latency_ns);
            QueryTypeStats {
                count: stat.count.load(Ordering::Relaxed),
                timed: hist.count(),
                p50_us: hist.percentile(0.50) / 1e3,
                p95_us: hist.percentile(0.95) / 1e3,
                p99_us: hist.percentile(0.99) / 1e3,
            }
        })
    }

    /// The text metrics report over every registered snapshot: per-type
    /// query counts and latency percentiles plus cache hit rates. This is
    /// the body a future networked `ccapsp serve` exposes on its metrics
    /// endpoint (ROADMAP item 1).
    pub fn metrics_text(&self) -> String {
        let mut out = String::from("== serve metrics ==\n");
        out.push_str(&format!("uptime    {:.1}s\n", self.uptime_secs()));
        for (idx, e) in self.entries.iter().enumerate() {
            let id = SnapshotId(idx);
            out.push_str(&format!(
                "snapshot {name} v{version} n={n} algo={algo} backend={backend} mem_bytes={mem}\n",
                name = e.name,
                version = e.version,
                n = e.oracle.graph().n(),
                algo = e.meta.algo,
                backend = self.backend_kind(id),
                mem = self.estimate_mem_bytes(id),
            ));
            for (ti, stats) in self.query_type_stats(id).iter().enumerate() {
                out.push_str(&format!(
                    "  {ty:<9} count={count:<8} timed={timed:<8} p50={p50:.1}us p95={p95:.1}us p99={p99:.1}us\n",
                    ty = QUERY_TYPE_NAMES[ti],
                    count = stats.count,
                    timed = stats.timed,
                    p50 = stats.p50_us,
                    p95 = stats.p95_us,
                    p99 = stats.p99_us,
                ));
            }
            let cache = self.cache_stats(id);
            out.push_str(&format!(
                "  cache     hits={hits} misses={misses} hit_rate={rate:.3}\n",
                hits = cache.hits,
                misses = cache.misses,
                rate = cache.hit_rate(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::graph::{Direction, Graph};
    use cc_graph::{apsp, generators, sssp, INF};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_snapshot(n: usize, seed: u64) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.15, 1..=30, &mut rng);
        let exact = apsp::exact_apsp(&g);
        Snapshot::new(
            g,
            exact,
            SnapshotMeta {
                algo: "exact".into(),
                seed,
                stretch_bound: 1.0,
                rounds: 0,
                source: "test".into(),
            },
        )
    }

    #[test]
    fn dist_matches_the_estimate_matrix() {
        let snap = exact_snapshot(24, 1);
        let expect = snap.dense_estimate().expect("dense snapshot").clone();
        let (service, id) = OracleService::single(snap);
        for u in 0..24 {
            for v in 0..24 {
                assert_eq!(
                    service.answer(id, &Query::Dist(u, v)),
                    Response::Dist(expect.get(u, v))
                );
            }
        }
    }

    #[test]
    fn knearest_matches_sssp_on_exact_snapshot() {
        let snap = exact_snapshot(30, 2);
        let g = snap.graph.clone();
        let (service, id) = OracleService::single(snap);
        for u in 0..g.n() {
            let expect = sssp::k_nearest(&g, u, 5);
            assert_eq!(
                service.answer(id, &Query::KNearest(u, 5)),
                Response::KNearest(expect),
                "node {u}"
            );
        }
    }

    #[test]
    fn route_delivers_on_exact_snapshot() {
        let snap = exact_snapshot(20, 3);
        let (service, id) = OracleService::single(snap);
        match service.answer(id, &Query::Route(0, 11)) {
            Response::Route(Some(path)) => {
                assert_eq!(path.first(), Some(&0));
                assert_eq!(path.last(), Some(&11));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cache_serves_repeats_and_counts_hits() {
        let snap = exact_snapshot(26, 4);
        let (service, id) = OracleService::single(snap);
        let first = service.answer(id, &Query::KNearest(3, 4));
        let again = service.answer(id, &Query::KNearest(3, 4));
        let wider = service.answer(id, &Query::KNearest(3, 9));
        assert_eq!(first, again);
        if let (Response::KNearest(narrow), Response::KNearest(wide)) = (&first, &wider) {
            assert_eq!(&wide[..4], &narrow[..]);
        } else {
            panic!("wrong response kinds");
        }
        let stats = service.cache_stats(id);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_row() {
        let mut cache = RowCache::new(2);
        cache.insert(1, 0, vec![(0, 0)]);
        cache.insert(1, 1, vec![(1, 0)]);
        assert!(cache.get(1, 0).is_some()); // 0 is now more recent than 1
        cache.insert(1, 2, vec![(2, 0)]); // evicts 1
        assert!(cache.get(1, 1).is_none());
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(1, 2).is_some());
    }

    #[test]
    fn zero_capacity_cache_disables_caching() {
        let snap = exact_snapshot(16, 5);
        let mut service = OracleService::new(ServiceConfig { cache_rows: 0 });
        let id = service.register("default", snap);
        let a = service.answer(id, &Query::KNearest(2, 3));
        let b = service.answer(id, &Query::KNearest(2, 3));
        assert_eq!(a, b);
        let stats = service.cache_stats(id);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn registry_versions_resolve_to_newest() {
        let mut service = OracleService::default();
        let v1 = service.register("g", exact_snapshot(12, 6));
        let v2 = service.register("g", exact_snapshot(14, 7));
        let other = service.register("h", exact_snapshot(10, 8));
        assert_eq!(service.resolve("g"), Some(v2));
        assert_eq!(service.resolve("h"), Some(other));
        assert_eq!(service.resolve("missing"), None);
        assert_eq!(service.versions("g"), 2);
        assert_eq!(service.len(), 3);
        assert!(!service.is_empty());
        assert_eq!(service.label(v1), ("g", 1));
        assert_eq!(service.label(v2), ("g", 2));
        // The old version stays queryable by id.
        assert_eq!(service.n(v1), 12);
        assert_eq!(service.n(v2), 14);
    }

    #[test]
    fn apply_delta_swap_never_serves_a_stale_cached_row() {
        use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
        use cc_dynamic::update::{EdgeOp, UpdateBatch};

        // A path graph: reweighting an edge incident to node 0 changes
        // node 0's whole distance row, so a stale k-nearest cache row is
        // observable.
        let g = Graph::from_edges(
            5,
            Direction::Undirected,
            &[(0, 1, 5), (1, 2, 5), (2, 3, 5), (3, 4, 5)],
        );
        let exact = apsp::exact_apsp(&g);
        let snap = Snapshot::new(
            g.clone(),
            exact.clone(),
            SnapshotMeta {
                algo: "exact".into(),
                seed: 0,
                stretch_bound: 1.0,
                rounds: 0,
                source: "test".into(),
            },
        );
        let mut service = OracleService::default();
        let id = service.register("g", snap);
        let (_, v_before) = service.label(id);

        // Warm the cache for node 0, twice, so the second is a hit.
        let before = service.answer(id, &Query::KNearest(0, 5));
        assert_eq!(service.answer(id, &Query::KNearest(0, 5)), before);
        assert_eq!(service.cache_stats(id).hits, 1);

        // Produce a verified delta with the dynamic engine and swap it in.
        let mut engine = IncrementalOracle::new(g, exact, "exact", 0, DynamicConfig::default());
        let outcome = engine
            .apply(&UpdateBatch::new(vec![EdgeOp::Reweight(0, 1, 1)]))
            .expect("valid batch");
        let swapped = service.apply_delta("g", &outcome.delta).expect("applies");
        assert_eq!(swapped, id, "in-place bump keeps the id");
        let (_, v_after) = service.label(id);
        assert_eq!(v_after, v_before + 1);

        // The same query must now answer from the new estimate — a stale
        // cache hit would still show distance 5 to node 1.
        let after = service.answer(id, &Query::KNearest(0, 5));
        assert_ne!(after, before);
        assert_eq!(
            after,
            Response::KNearest(sssp::k_nearest(engine.graph(), 0, 5))
        );
        // And replaying the delta (now against the wrong base) fails
        // cleanly with the old state... gone, the new one intact.
        assert!(matches!(
            service.apply_delta("g", &outcome.delta),
            Err(ApplyDeltaError::Delta(
                cc_dynamic::DeltaError::BaseMismatch { .. }
            ))
        ));
        assert_eq!(service.answer(id, &Query::KNearest(0, 5)), after);
        assert!(matches!(
            service.apply_delta("missing", &outcome.delta),
            Err(ApplyDeltaError::UnknownSnapshot(_))
        ));
    }

    #[test]
    fn row_cache_is_keyed_by_version() {
        let mut cache = RowCache::new(4);
        cache.insert(1, 0, vec![(0, 0), (1, 5)]);
        assert!(cache.get(1, 0).is_some());
        // Same row, newer version: miss by construction.
        assert!(cache.get(2, 0).is_none());
        cache.insert(2, 0, vec![(0, 0), (1, 1)]);
        assert_eq!(cache.get(2, 0).unwrap()[1], (1, 1));
        assert_eq!(cache.get(1, 0).unwrap()[1], (1, 5));
    }

    #[test]
    fn batch_preserves_query_order_across_policies() {
        let snap = exact_snapshot(32, 9);
        let (service, id) = OracleService::single(snap);
        let queries: Vec<Query> = (0..200)
            .map(|i| match i % 3 {
                0 => Query::Dist(i % 32, (i * 7) % 32),
                1 => Query::Route(i % 32, (i * 5) % 32),
                _ => Query::KNearest(i % 32, 1 + i % 6),
            })
            .collect();
        let seq = service.run_batch(id, &queries, ExecPolicy::Seq);
        assert_eq!(seq.responses.len(), queries.len());
        assert_eq!(seq.latencies_ns.len(), queries.len());
        for threads in [2, 4] {
            let par = service.run_batch(id, &queries, ExecPolicy::with_threads(threads));
            assert_eq!(par.responses, seq.responses, "threads={threads}");
        }
        // Spot-check one response against a direct answer.
        assert_eq!(seq.responses[0], service.answer(id, &queries[0]));
    }

    #[test]
    fn landmark_snapshots_serve_all_query_kinds_and_accept_deltas() {
        use cc_apsp::landmark::LandmarkSketch;
        use cc_apsp::oracle::OracleBackend;
        use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
        use cc_dynamic::update::{EdgeOp, UpdateBatch};

        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::gnp_connected(24, 0.2, 1..=9, &mut rng);
        let sketch = LandmarkSketch::build(&g, 31, ExecPolicy::Seq);
        let snap = Snapshot::with_backend(
            g.clone(),
            OracleBackend::Landmark(sketch.clone()),
            SnapshotMeta {
                algo: "landmark".into(),
                seed: 31,
                stretch_bound: 3.0,
                rounds: 0,
                source: "test".into(),
            },
        );
        let mem = snap.backend.approx_mem_bytes();
        let (mut service, id) = {
            let mut service = OracleService::default();
            let id = service.register("lm", snap);
            (service, id)
        };
        assert_eq!(service.estimate_mem_bytes(id), mem);

        // Dist answers come straight from the sketch; k-nearest agrees with
        // sorting the materialized row; routes that deliver are real walks.
        assert_eq!(
            service.answer(id, &Query::Dist(0, 5)),
            Response::Dist(sketch.query(0, 5))
        );
        let row = sketch.dist_row(3);
        assert_eq!(
            service.answer(id, &Query::KNearest(3, 4)),
            Response::KNearest(
                k_nearest_from_dists(&row, row.len())
                    .into_iter()
                    .take(4)
                    .collect()
            )
        );
        // Cache hit on repeat, same answer.
        let first = service.answer(id, &Query::KNearest(3, 4));
        assert_eq!(first, service.answer(id, &Query::KNearest(3, 4)));
        assert!(service.cache_stats(id).hits >= 1);

        // A delta produced by a landmark engine applies through the service
        // and swaps the backend in place.
        let mut engine = IncrementalOracle::with_backend(
            g,
            OracleBackend::Landmark(sketch),
            "landmark",
            31,
            DynamicConfig::default(),
        );
        let outcome = engine
            .apply(&UpdateBatch::new(vec![EdgeOp::Insert(0, 23, 1)]))
            .expect("valid batch");
        service.apply_delta("lm", &outcome.delta).expect("applies");
        let exported = service.export(id);
        assert_eq!(&exported.backend, engine.backend());
        assert_eq!(
            service.answer(id, &Query::Dist(0, 23)),
            Response::Dist(engine.backend().query(0, 23))
        );
    }

    #[test]
    fn poisoned_cache_mutex_does_not_kill_the_service() {
        // A panicking worker used to poison the row-cache (and latency)
        // mutexes, making every later query panic in `.lock().unwrap()`.
        // The cache contents stay valid across a holder's panic (it never
        // changes answers), so the service must recover and keep serving.
        let snap = exact_snapshot(20, 6);
        let (service, id) = OracleService::single(snap);
        let before = service.answer(id, &Query::KNearest(3, 5));
        let entry = &service.entries[id.0];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = entry.cache.lock().unwrap();
            panic!("worker dies while holding the cache lock");
        }));
        assert!(caught.is_err());
        assert!(entry.cache.is_poisoned(), "the panic must have poisoned it");
        let hist_caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = entry.type_stats[0].latency_ns.lock().unwrap();
            panic!("and another one holding a latency histogram");
        }));
        assert!(hist_caught.is_err());
        // Every query path that touches a poisoned mutex must still answer.
        assert_eq!(service.answer(id, &Query::KNearest(3, 5)), before);
        let outcome = service.run_batch(
            id,
            &[Query::Dist(0, 1), Query::KNearest(3, 5), Query::Route(0, 2)],
            ExecPolicy::Seq,
        );
        assert_eq!(outcome.responses.len(), 3);
        assert_eq!(outcome.responses[1], before);
        let stats = service.query_type_stats(id);
        assert!(stats[0].count >= 1);
        assert!(!service.metrics_text().is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_different_responses() {
        let a = vec![Response::Dist(4), Response::Route(None)];
        let b = vec![Response::Dist(5), Response::Route(None)];
        let c = vec![Response::Dist(4), Response::Route(Some(vec![0, 1]))];
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_ne!(
            fingerprint(&[Response::KNearest(vec![(1, 2)])]),
            fingerprint(&[Response::KNearest(vec![(2, 1)])])
        );
    }

    #[test]
    fn unreachable_pairs_answer_inf_and_no_route() {
        let g = Graph::from_edges(4, Direction::Undirected, &[(0, 1, 1), (2, 3, 1)]);
        let exact = apsp::exact_apsp(&g);
        let snap = Snapshot::new(
            g,
            exact,
            SnapshotMeta {
                algo: "exact".into(),
                seed: 0,
                stretch_bound: 1.0,
                rounds: 0,
                source: "test".into(),
            },
        );
        let (service, id) = OracleService::single(snap);
        assert_eq!(service.answer(id, &Query::Dist(0, 3)), Response::Dist(INF));
        assert_eq!(
            service.answer(id, &Query::Route(0, 3)),
            Response::Route(None)
        );
        // k-nearest only sees the reachable component.
        assert_eq!(
            service.answer(id, &Query::KNearest(0, 4)),
            Response::KNearest(vec![(0, 0), (1, 1)])
        );
    }
}
