//! End-to-end tests for the `ccapsp serve` daemon: real TCP sockets on
//! 127.0.0.1, multiple concurrent connections, chaos clients, and blue/green
//! snapshot swaps under live query load.
//!
//! The headline invariant is the networked extension of the repo-wide
//! determinism contract: for a fixed snapshot and [`LoadSpec`], the
//! fingerprint reduced from TCP responses is **bit-identical** to the
//! in-process [`drive`] fingerprint, at every server thread policy and any
//! number of client connections.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
use cc_dynamic::update::{random_batch, MutationProfile};
use cc_par::ExecPolicy;
use cc_serve::client::{chaos, drive_network, Client};
use cc_serve::loadgen::{drive, LoadSpec};
use cc_serve::server::{Server, ServerConfig};
use cc_serve::service::{OracleService, Query};
use cc_serve::snapshot::{Snapshot, SnapshotMeta};
use cc_serve::wire::Request;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 48;
const SEED: u64 = 0xE2E;

fn make_snapshot(seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = cc_graph::generators::gnp_connected(N, 0.15, 1..=20, &mut rng);
    let exact = cc_graph::apsp::exact_apsp(&g);
    let meta = SnapshotMeta {
        algo: "exact".into(),
        seed,
        stretch_bound: 1.0,
        rounds: 0,
        source: "server_e2e".into(),
    };
    Snapshot::new(g, exact, meta)
}

fn spawn_server(exec: ExecPolicy) -> cc_serve::server::ServerHandle {
    let (service, _) = OracleService::single(make_snapshot(SEED));
    let cfg = ServerConfig {
        exec,
        ..ServerConfig::default()
    };
    Server::spawn(service, "127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// The tentpole invariant: serving over TCP with 4 concurrent connections
/// produces the exact fingerprint of the in-process loadgen, for both a
/// sequential and a threaded server execution policy.
#[test]
fn networked_fingerprint_matches_in_process() {
    let spec = LoadSpec {
        queries: 4_000,
        batch: 128,
        ..Default::default()
    };
    for exec in [ExecPolicy::Seq, ExecPolicy::with_threads(4)] {
        let (service, id) = OracleService::single(make_snapshot(SEED));
        let reference = drive(&service, id, &spec, exec);

        let handle = spawn_server(exec);
        let addr = handle.local_addr();
        let net = drive_network(addr, "default", &spec, 4).expect("networked loadgen");
        handle.shutdown();

        assert_eq!(net.queries, reference.queries);
        assert_eq!(
            net.fingerprint, reference.fingerprint,
            "networked fingerprint diverged from in-process at exec {exec:?}"
        );
    }
}

/// Every chaos scenario — random bytes, lying lengths, checksum flips,
/// mid-frame half-closes, slow readers — must leave the daemon alive and
/// serving; well-behaved clients on the same server keep getting answers.
#[test]
fn chaos_clients_cannot_kill_the_server() {
    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let report = chaos(addr);
    assert!(report.ok(), "chaos scenarios failed: {:?}", report.failed);

    // A normal client still works after the abuse.
    let mut client = Client::connect(addr).expect("connect after chaos");
    let metrics = client.metrics().expect("metrics after chaos");
    assert!(metrics.contains("server"), "metrics text: {metrics}");
    let responses = client
        .batch("default", &[Query::Dist(0, 1), Query::Route(0, N - 1)])
        .expect("batch after chaos");
    assert_eq!(responses.len(), 2);
    handle.shutdown();
}

/// Blue/green under fire: while several connections hammer the server with
/// query batches, an admin connection applies a dynamic-update delta and
/// then swaps in a whole replacement snapshot. No in-flight query may be
/// dropped or answered with an error, and the advertised version must bump
/// for each admin action.
#[test]
fn swap_and_delta_under_live_load() {
    // Build the delta offline against an engine seeded from the same
    // snapshot the server will serve.
    let base = make_snapshot(SEED);
    let mut engine = IncrementalOracle::with_backend(
        base.graph.clone(),
        base.backend.clone(),
        "exact",
        SEED,
        DynamicConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD17A);
    let mutation = random_batch(engine.graph(), 4, MutationProfile::ReweightHeavy, &mut rng);
    let outcome = engine.apply(&mutation).expect("valid generated batch");
    let delta_bytes = outcome.delta.to_bytes();
    let replacement_bytes = make_snapshot(SEED + 1).to_bytes();

    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                let queries: Vec<Query> = (0..64)
                    .map(|i| Query::Dist((w * 7 + i) % N, (i * 13) % N))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let responses = client
                        .batch("default", &queries)
                        .expect("query batch during swap");
                    assert_eq!(responses.len(), queries.len());
                    answered.fetch_add(responses.len(), Ordering::Relaxed);
                }
            })
        })
        .collect();

    let mut admin = Client::connect(addr).expect("admin connect");
    let v0 = admin.info("default").expect("info").version;

    // Let the workers get some load in flight, then mutate live.
    while answered.load(Ordering::Relaxed) < 256 {
        std::thread::yield_now();
    }
    admin
        .admin(&Request::ApplyDelta {
            name: "default".into(),
            delta: delta_bytes,
        })
        .expect("apply delta while serving");
    let v1 = admin.info("default").expect("info").version;
    assert_eq!(v1, v0 + 1, "delta must bump the served version");

    admin
        .admin(&Request::SwapSnapshot {
            name: "default".into(),
            snapshot: replacement_bytes,
        })
        .expect("swap snapshot while serving");
    let v2 = admin.info("default").expect("info").version;
    assert!(v2 > v1, "swap must advance the served version");

    // Drain a little more load against the swapped-in snapshot.
    let mark = answered.load(Ordering::Relaxed);
    while answered.load(Ordering::Relaxed) < mark + 256 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker thread");
    }
    handle.shutdown();
}

/// A client-initiated shutdown frame stops the daemon; `wait` returns and
/// in-flight work is answered first.
#[test]
fn shutdown_frame_stops_the_daemon() {
    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let responses = client
        .batch("default", &[Query::KNearest(3, 4)])
        .expect("batch before shutdown");
    assert_eq!(responses.len(), 1);
    client.shutdown().expect("shutdown acknowledged");
    handle.wait();
}
