//! End-to-end tests for the `ccapsp serve` daemon: real TCP sockets on
//! 127.0.0.1, multiple concurrent connections, chaos clients, and blue/green
//! snapshot swaps under live query load.
//!
//! The headline invariant is the networked extension of the repo-wide
//! determinism contract: for a fixed snapshot and [`LoadSpec`], the
//! fingerprint reduced from TCP responses is **bit-identical** to the
//! in-process [`drive`] fingerprint, at every server thread policy and any
//! number of client connections.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use cc_dynamic::incremental::{DynamicConfig, IncrementalOracle};
use cc_dynamic::update::{random_batch, MutationProfile};
use cc_par::ExecPolicy;
use cc_serve::client::{chaos, drive_network, scrape_http_metrics, Client};
use cc_serve::loadgen::{drive, LoadSpec};
use cc_serve::server::{Server, ServerConfig};
use cc_serve::service::{OracleService, Query};
use cc_serve::snapshot::{Snapshot, SnapshotMeta};
use cc_serve::wire::Request;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 48;
const SEED: u64 = 0xE2E;

fn make_snapshot(seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = cc_graph::generators::gnp_connected(N, 0.15, 1..=20, &mut rng);
    let exact = cc_graph::apsp::exact_apsp(&g);
    let meta = SnapshotMeta {
        algo: "exact".into(),
        seed,
        stretch_bound: 1.0,
        rounds: 0,
        source: "server_e2e".into(),
    };
    Snapshot::new(g, exact, meta)
}

fn spawn_server(exec: ExecPolicy) -> cc_serve::server::ServerHandle {
    let (service, _) = OracleService::single(make_snapshot(SEED));
    let cfg = ServerConfig {
        exec,
        ..ServerConfig::default()
    };
    Server::spawn(service, "127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// The tentpole invariant: serving over TCP with 4 concurrent connections
/// produces the exact fingerprint of the in-process loadgen, for both a
/// sequential and a threaded server execution policy.
#[test]
fn networked_fingerprint_matches_in_process() {
    let spec = LoadSpec {
        queries: 4_000,
        batch: 128,
        ..Default::default()
    };
    for exec in [ExecPolicy::Seq, ExecPolicy::with_threads(4)] {
        let (service, id) = OracleService::single(make_snapshot(SEED));
        let reference = drive(&service, id, &spec, exec);

        let handle = spawn_server(exec);
        let addr = handle.local_addr();
        let net = drive_network(addr, "default", &spec, 4).expect("networked loadgen");
        handle.shutdown();

        assert_eq!(net.queries, reference.queries);
        assert_eq!(
            net.fingerprint, reference.fingerprint,
            "networked fingerprint diverged from in-process at exec {exec:?}"
        );
    }
}

/// Every chaos scenario — random bytes, lying lengths, checksum flips,
/// mid-frame half-closes, slow readers — must leave the daemon alive and
/// serving; well-behaved clients on the same server keep getting answers.
#[test]
fn chaos_clients_cannot_kill_the_server() {
    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let report = chaos(addr);
    assert!(report.ok(), "chaos scenarios failed: {:?}", report.failed);

    // A normal client still works after the abuse.
    let mut client = Client::connect(addr).expect("connect after chaos");
    let metrics = client.metrics().expect("metrics after chaos");
    assert!(metrics.contains("server"), "metrics text: {metrics}");
    let responses = client
        .batch("default", &[Query::Dist(0, 1), Query::Route(0, N - 1)])
        .expect("batch after chaos");
    assert_eq!(responses.len(), 2);
    handle.shutdown();
}

/// Blue/green under fire: while several connections hammer the server with
/// query batches, an admin connection applies a dynamic-update delta and
/// then swaps in a whole replacement snapshot. No in-flight query may be
/// dropped or answered with an error, and the advertised version must bump
/// for each admin action.
#[test]
fn swap_and_delta_under_live_load() {
    // Build the delta offline against an engine seeded from the same
    // snapshot the server will serve.
    let base = make_snapshot(SEED);
    let mut engine = IncrementalOracle::with_backend(
        base.graph.clone(),
        base.backend.clone(),
        "exact",
        SEED,
        DynamicConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD17A);
    let mutation = random_batch(engine.graph(), 4, MutationProfile::ReweightHeavy, &mut rng);
    let outcome = engine.apply(&mutation).expect("valid generated batch");
    let delta_bytes = outcome.delta.to_bytes();
    let replacement_bytes = make_snapshot(SEED + 1).to_bytes();

    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                let queries: Vec<Query> = (0..64)
                    .map(|i| Query::Dist((w * 7 + i) % N, (i * 13) % N))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let responses = client
                        .batch("default", &queries)
                        .expect("query batch during swap");
                    assert_eq!(responses.len(), queries.len());
                    answered.fetch_add(responses.len(), Ordering::Relaxed);
                }
            })
        })
        .collect();

    let mut admin = Client::connect(addr).expect("admin connect");
    let v0 = admin.info("default").expect("info").version;

    // Let the workers get some load in flight, then mutate live.
    while answered.load(Ordering::Relaxed) < 256 {
        std::thread::yield_now();
    }
    admin
        .admin(&Request::ApplyDelta {
            name: "default".into(),
            delta: delta_bytes,
        })
        .expect("apply delta while serving");
    let v1 = admin.info("default").expect("info").version;
    assert_eq!(v1, v0 + 1, "delta must bump the served version");

    admin
        .admin(&Request::SwapSnapshot {
            name: "default".into(),
            snapshot: replacement_bytes,
        })
        .expect("swap snapshot while serving");
    let v2 = admin.info("default").expect("info").version;
    assert!(v2 > v1, "swap must advance the served version");

    // Drain a little more load against the swapped-in snapshot.
    let mark = answered.load(Ordering::Relaxed);
    while answered.load(Ordering::Relaxed) < mark + 256 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker thread");
    }
    handle.shutdown();
}

/// Validates Prometheus text-exposition grammar line by line: every line
/// is a comment (`# ...`) or a sample `name[{label="value",...}] number`,
/// and every sample's family was declared by a preceding `# TYPE` line.
fn assert_exposition_grammar(text: &str) {
    let mut declared: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family name after # TYPE");
            let kind = parts.next().expect("kind after family");
            assert!(
                matches!(kind, "counter" | "gauge"),
                "unknown metric kind in {line:?}"
            );
            declared.push(family);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment form: {line:?}");
        assert!(!line.is_empty(), "blank line in exposition");
        let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = name_part.split('{').next().unwrap();
        assert!(
            declared.contains(&name),
            "sample {name:?} has no preceding # TYPE declaration"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value not a number: {line:?}"
        );
        if let Some((_, labels)) = name_part.split_once('{') {
            let labels = labels
                .strip_suffix("\"}")
                .expect("label list ends with a quoted value");
            for pair in labels.split("\",") {
                let (key, val) = pair.split_once("=\"").expect("label key=\"value\"");
                assert!(
                    !key.is_empty() && !key.contains('"'),
                    "bad label in {line:?}"
                );
                assert!(!val.contains('"'), "unescaped quote in {line:?}");
            }
        }
    }
    assert!(!declared.is_empty(), "exposition declared no families");
}

/// The live-telemetry acceptance path end to end: a daemon with the
/// metrics side-listener bound and a 1 µs slow-query threshold serves
/// load, then answers `GET /metrics` over plain HTTP with a
/// grammar-valid exposition carrying rolling QPS, per-type latency
/// quantiles, and the snapshot-identity family; the Metrics-v2 wire frame
/// returns the same document shape; the flight dump is valid JSON holding
/// the expected event kinds; and a wrong HTTP path gets a 404.
#[test]
fn live_metrics_scrape_and_flight_dump() {
    let (service, _) = OracleService::single(make_snapshot(SEED));
    let cfg = ServerConfig {
        exec: ExecPolicy::Seq,
        slow_query_us: 1,
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(service, "127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = handle.local_addr();
    let metrics_addr = handle.metrics_addr().expect("metrics listener bound");

    let spec = LoadSpec {
        queries: 2_000,
        batch: 128,
        ..Default::default()
    };
    drive_network(addr, "default", &spec, 3).expect("networked loadgen");

    // Plain-HTTP scrape: valid grammar plus the required families.
    let text = scrape_http_metrics(metrics_addr).expect("GET /metrics");
    assert_exposition_grammar(&text);
    for family in [
        "ccapsp_uptime_seconds",
        "ccapsp_qps",
        "ccapsp_qps_1s_peak",
        "ccapsp_latency_us",
        "ccapsp_snapshot_info",
        "ccapsp_estimate_mem_bytes",
        "ccapsp_connections_total",
        "ccapsp_cache_hits_total",
        "ccapsp_slow_queries_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "scrape missing family {family}:\n{text}"
        );
    }
    use cc_serve::telemetry::{prom_label, prom_sum, prom_value};
    for window in ["1s", "10s", "60s"] {
        let qps = prom_value(&text, "ccapsp_qps", &[("window", window)]);
        assert!(qps.is_some_and(|q| q >= 0.0), "qps window {window}");
    }
    assert!(prom_value(&text, "ccapsp_qps", &[("window", "1s")]).unwrap() > 0.0);
    for quantile in ["0.5", "0.95", "0.99"] {
        let p = prom_value(
            &text,
            "ccapsp_latency_us",
            &[("type", "dist"), ("quantile", quantile)],
        );
        assert!(p.is_some_and(|v| v > 0.0), "dist latency q{quantile}");
    }
    assert_eq!(
        prom_label(&text, "ccapsp_snapshot_info", "backend").as_deref(),
        Some("dense")
    );
    assert!(prom_sum(&text, "ccapsp_slow_queries_total") > 0.0);

    // The wire Metrics-v2 frame carries the same exposition shape.
    let mut client = Client::connect(addr).expect("connect");
    let wire_text = client.metrics_v2().expect("metrics-v2 frame");
    assert_exposition_grammar(&wire_text);
    assert!(prom_value(&wire_text, "ccapsp_qps_1s_peak", &[]).unwrap() > 0.0);

    // Flight dump: valid JSON, expected event kinds, bounded ring.
    let flight = client.flight_dump().expect("flight-dump frame");
    cc_bench::envelope::validate_json(&flight).expect("flight dump is valid JSON");
    assert!(flight.contains("\"kind\":\"conn-accept\""), "{flight}");
    assert!(flight.contains("\"kind\":\"slow-query\""), "{flight}");

    // Wrong path → 404; the daemon keeps serving afterwards.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(metrics_addr).expect("connect http");
        s.write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut reply = String::new();
        s.read_to_string(&mut reply).expect("read");
        assert!(reply.starts_with("HTTP/1.1 404"), "got: {reply}");
    }
    let text2 = scrape_http_metrics(metrics_addr).expect("scrape after 404");
    assert!(text2.contains("ccapsp_uptime_seconds"));

    handle.shutdown();
}

/// A client-initiated shutdown frame stops the daemon; `wait` returns and
/// in-flight work is answered first.
#[test]
fn shutdown_frame_stops_the_daemon() {
    let handle = spawn_server(ExecPolicy::Seq);
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let responses = client
        .batch("default", &[Query::KNearest(3, 4)])
        .expect("batch before shutdown");
    assert_eq!(responses.len(), 1);
    client.shutdown().expect("shutdown acknowledged");
    handle.wait();
}
