//! Property tests for the snapshot format: `save → load` is bit-identical
//! for arbitrary graphs and estimates, and every class of corruption maps
//! to a typed error instead of a panic or a silently wrong artifact.

use cc_graph::graph::{Direction, Graph};
use cc_graph::{DistMatrix, NodeId, Weight, INF};
use cc_serve::snapshot::{
    Snapshot, SnapshotError, SnapshotMeta, FORMAT_VERSION, LEGACY_VERSION, MAGIC,
};
use proptest::prelude::*;

/// Strategy: an arbitrary weighted graph — possibly disconnected, directed
/// or undirected, with isolated nodes.
fn arb_graph(max_n: usize, max_w: Weight) -> impl Strategy<Value = Graph> {
    (1usize..max_n, any::<bool>()).prop_flat_map(move |(n, directed)| {
        let edges = proptest::collection::vec((0..n, 0..n, 1..=max_w), 0..4 * n);
        (Just(n), Just(directed), edges).prop_map(|(n, directed, edges)| {
            let direction = if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let edges: Vec<(NodeId, NodeId, Weight)> =
                edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            Graph::from_edges(n, direction, &edges)
        })
    })
}

/// Strategy: an arbitrary estimate for `n` nodes (INF entries included).
fn arb_estimate(n: usize, max_w: Weight) -> impl Strategy<Value = DistMatrix> {
    proptest::collection::vec((0u8..4, 0..=max_w), n * n..=n * n).prop_map(move |cells| {
        let data = cells
            .into_iter()
            .map(|(sel, w)| if sel == 0 { INF } else { w })
            .collect();
        DistMatrix::from_raw(n, data)
    })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (arb_graph(24, 50), any::<u64>(), 0u32..4).prop_flat_map(|(g, seed, algo_sel)| {
        let n = g.n();
        (Just(g), arb_estimate(n, 200), Just(seed), Just(algo_sel)).prop_map(
            |(g, est, seed, algo_sel)| {
                let algo = ["thm11", "thm81", "exact", "spanner"][algo_sel as usize];
                Snapshot::new(
                    g,
                    est,
                    SnapshotMeta {
                        algo: algo.into(),
                        seed,
                        stretch_bound: 1.0 + (seed % 100) as f64 / 10.0,
                        rounds: seed % 1000,
                        source: format!("prop(seed={seed})"),
                    },
                )
            },
        )
    })
}

/// Strategy: a snapshot whose backend is a landmark sketch built from an
/// arbitrary undirected graph (sketches assume symmetric distances).
fn arb_landmark_snapshot() -> impl Strategy<Value = Snapshot> {
    (1usize..20, any::<u64>()).prop_flat_map(|(n, seed)| {
        let edges = proptest::collection::vec((0..n, 0..n, 1..=50 as Weight), 0..4 * n);
        (Just(n), Just(seed), edges).prop_map(|(n, seed, edges)| {
            let edges: Vec<(NodeId, NodeId, Weight)> =
                edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            let g = Graph::from_edges(n, Direction::Undirected, &edges);
            let sketch =
                cc_apsp::landmark::LandmarkSketch::build(&g, seed, cc_par::ExecPolicy::Seq);
            Snapshot::with_backend(
                g,
                cc_apsp::oracle::OracleBackend::Landmark(sketch),
                SnapshotMeta {
                    algo: "landmark".into(),
                    seed,
                    stretch_bound: 3.0,
                    rounds: 0,
                    source: format!("prop(seed={seed})"),
                },
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The round-trip law: decode(encode(s)) == s and the canonical bytes
    /// are stable — encode(decode(encode(s))) == encode(s).
    #[test]
    fn save_load_round_trip_is_bit_identical(snap in arb_snapshot()) {
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("decode of freshly encoded snapshot");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// The same round-trip law for landmark-backed snapshots.
    #[test]
    fn landmark_save_load_round_trip_is_bit_identical(snap in arb_landmark_snapshot()) {
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("decode of freshly encoded snapshot");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Truncating a landmark snapshot anywhere is Truncated, and flipping a
    /// payload byte is a checksum mismatch — the corruption guarantees hold
    /// for the new estimate-section layout too.
    #[test]
    fn landmark_corruption_is_detected(snap in arb_landmark_snapshot(), cut in 0u64..1000, off in 0usize..8, flip in 1u8..=255) {
        let bytes = snap.to_bytes();
        let len = (bytes.len() - 1) * cut as usize / 1000;
        let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
        prop_assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "prefix {} of {} gave {:?}", len, bytes.len(), err
        );
        let payload_start = MAGIC.len() + 4 + 4 + (4 + 8 + 8);
        let mut corrupt = bytes.clone();
        corrupt[payload_start + off] ^= flip;
        prop_assert!(matches!(
            Snapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    /// Every strict prefix of a valid snapshot is Truncated — never a panic,
    /// never a success.
    #[test]
    fn any_truncation_is_detected(snap in arb_snapshot(), cut in 0u64..1000) {
        let bytes = snap.to_bytes();
        let len = (bytes.len() - 1) * cut as usize / 1000;
        let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
        prop_assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "prefix {} of {} gave {:?}", len, bytes.len(), err
        );
    }

    /// Flipping any byte of the magic is BadMagic.
    #[test]
    fn bad_magic_is_detected(snap in arb_snapshot(), pos in 0usize..MAGIC.len(), flip in 1u8..=255) {
        let mut bytes = snap.to_bytes();
        bytes[pos] ^= flip;
        prop_assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    /// Flipping any payload byte is a checksum mismatch in *some* section
    /// (payloads start after the 16-byte header + three 20-byte section
    /// headers; we flip within the first section's payload to keep the
    /// framing intact).
    #[test]
    fn payload_corruption_is_a_checksum_mismatch(snap in arb_snapshot(), off in 0usize..8, flip in 1u8..=255) {
        let bytes = snap.to_bytes();
        // First section header sits at 16; its payload starts at 16 + 20.
        let payload_start = MAGIC.len() + 4 + 4 + (4 + 8 + 8);
        let mut corrupt = bytes.clone();
        corrupt[payload_start + off] ^= flip;
        prop_assert!(matches!(
            Snapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    /// Any version other than FORMAT_VERSION is rejected as unsupported.
    #[test]
    fn other_versions_are_rejected(snap in arb_snapshot(), version in any::<u32>()) {
        // The vendored proptest has no prop_assume; dodge the accepted
        // versions (current and legacy) deterministically instead.
        let version = if version == FORMAT_VERSION || version == LEGACY_VERSION {
            FORMAT_VERSION + 1 + version
        } else {
            version
        };
        let mut bytes = snap.to_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(v)) if v == version
        ));
    }
}

/// Random byte soup (non-empty, wrong magic with overwhelming probability)
/// never panics the decoder.
#[test]
fn fuzz_soup_never_panics() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..500 {
        let len = rng.gen_range(0..600usize);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
        let _ = Snapshot::from_bytes(&soup);
    }
}

/// A snapshot with a valid frame but mismatched graph/estimate dimensions
/// must decode to Malformed, not panic.
#[test]
fn dimension_mismatch_decodes_to_malformed() {
    let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 1)]);
    let good = Snapshot::new(
        g,
        DistMatrix::infinite(3),
        SnapshotMeta {
            algo: "exact".into(),
            seed: 0,
            stretch_bound: 1.0,
            rounds: 0,
            source: "t".into(),
        },
    );
    let bytes = good.to_bytes();
    // Surgically rebuild the estimate section with n=2 (valid checksum, bad
    // dimension): easiest is to re-encode a 2-node estimate and splice.
    let small = Snapshot::new(
        Graph::from_edges(2, Direction::Undirected, &[(0, 1, 1)]),
        DistMatrix::infinite(2),
        good.meta.clone(),
    );
    let small_bytes = small.to_bytes();
    // Graph section from `good`, estimate + meta sections from `small`.
    let header = 16;
    let sec = |buf: &[u8], idx: usize| -> (usize, usize) {
        // Returns (start, end) of the idx-th section including its header.
        let mut pos = header;
        for _ in 0..idx {
            let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
            pos += 20 + len;
        }
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap()) as usize;
        (pos, pos + 20 + len)
    };
    let (g0, g1) = sec(&bytes, 0);
    let (e0, e1) = sec(&small_bytes, 1);
    let (m0, m1) = sec(&small_bytes, 2);
    let mut spliced = bytes[..header].to_vec();
    spliced.extend_from_slice(&bytes[g0..g1]);
    spliced.extend_from_slice(&small_bytes[e0..e1]);
    spliced.extend_from_slice(&small_bytes[m0..m1]);
    match Snapshot::from_bytes(&spliced) {
        Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("estimate"), "{msg}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}
