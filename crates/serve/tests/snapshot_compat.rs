//! Cross-version compatibility: a version-1 `.ccsnap` file written by the
//! pre-backend (dense-only, untagged estimate section) format must keep
//! loading bit-for-bit after the version-2 bump.
//!
//! The fixture was produced by the v1 writer via
//! `ccapsp snapshot --n 12 --family gnp --algo exact --seed 5` and is
//! checked in as an opaque byte blob; every expectation below was pinned
//! from the run that wrote it.

use cc_serve::snapshot::{Snapshot, FORMAT_VERSION, LEGACY_VERSION, MAGIC};

fn fixture_bytes() -> Vec<u8> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/v1_dense_gnp12.ccsnap"
    );
    std::fs::read(path).expect("pinned v1 fixture present")
}

#[test]
fn pinned_v1_dense_snapshot_still_loads() {
    let bytes = fixture_bytes();
    // It really is a v1 file, not a re-encoded one.
    assert_eq!(&bytes[..MAGIC.len()], &MAGIC);
    let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    assert_eq!(version, LEGACY_VERSION);
    assert_ne!(version, FORMAT_VERSION, "fixture must predate the bump");

    let snap = Snapshot::from_bytes(&bytes).expect("legacy decode");
    assert_eq!(snap.n(), 12);
    assert_eq!(snap.meta.algo, "exact");
    assert_eq!(snap.meta.seed, 5);
    assert_eq!(snap.meta.stretch_bound, 1.0);
    assert_eq!(snap.meta.rounds, 9);
    assert_eq!(snap.meta.source, "gnp(n=12,seed=5)");

    // Spot-pinned distances from the producing run.
    let est = snap.dense_estimate().expect("v1 snapshots are dense");
    assert_eq!(est.get(0, 11), 12);
    assert_eq!(est.get(3, 7), 5);

    // Re-encoding upgrades to the current version and stays loadable.
    let upgraded = snap.to_bytes();
    let v2 = u32::from_le_bytes(upgraded[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    assert_eq!(v2, FORMAT_VERSION);
    assert_eq!(Snapshot::from_bytes(&upgraded).expect("re-decode"), snap);
}
