//! Property tests for the `ccapsp serve` wire protocol, mirroring
//! `snapshot_props.rs`: encode → decode is lossless for arbitrary requests
//! and replies, and every class of corruption — truncation at any point, a
//! bit-flip anywhere, a lying length, random soup — maps to a typed
//! [`WireError`] instead of a panic or a silently different message.

use cc_serve::service::{Query, Response};
use cc_serve::wire::{
    decode_frame, Reply, Request, ServeInfo, WireError, DEFAULT_FRAME_CAP, HEADER_LEN, WIRE_MAGIC,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(0u8..26, 0..12)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

fn arb_text() -> impl Strategy<Value = String> {
    collection::vec(0x20u8..0x7f, 0..60).prop_map(|v| v.into_iter().map(char::from).collect())
}

fn arb_query() -> impl Strategy<Value = Query> {
    (0u8..3, 0usize..1000, 0usize..1000).prop_map(|(sel, a, b)| match sel {
        0 => Query::Dist(a, b),
        1 => Query::Route(a, b),
        _ => Query::KNearest(a, b % 64),
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..4,
        any::<u64>(),
        collection::vec((0usize..1000, any::<u64>()), 0..12),
    )
        .prop_map(|(sel, d, rows)| match sel {
            0 => Response::Dist(d),
            1 => Response::Route(None),
            2 => Response::Route(Some(rows.into_iter().map(|(v, _)| v).collect())),
            _ => Response::KNearest(rows),
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..6,
        arb_name(),
        collection::vec(arb_query(), 0..40),
        collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(sel, name, queries, bytes)| match sel {
            0 => Request::Batch { name, queries },
            1 => Request::Metrics,
            2 => Request::Info { name },
            3 => Request::ApplyDelta { name, delta: bytes },
            4 => Request::SwapSnapshot {
                name,
                snapshot: bytes,
            },
            _ => Request::Shutdown,
        })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        0u8..7,
        arb_name(),
        arb_text(),
        collection::vec(arb_response(), 0..40),
        (any::<u64>(), any::<u32>(), 0usize..10_000),
    )
        .prop_map(|(sel, name, text, responses, (x, version, n))| match sel {
            0 => Reply::Batch(responses),
            1 => Reply::Metrics(text),
            2 => Reply::Info(ServeInfo {
                name,
                version,
                n,
                algo: text,
                mem_bytes: x,
                cache_hits: x ^ 0xff,
                cache_misses: x >> 7,
            }),
            3 => Reply::AdminOk(text),
            4 => Reply::Overload(x),
            5 => Reply::Error(text),
            _ => Reply::ShutdownOk,
        })
}

/// Wire bytes of an arbitrary message (requests and replies share one frame
/// grammar, so the corruption properties quantify over both).
fn arb_frame_bytes() -> impl Strategy<Value = Vec<u8>> {
    (any::<bool>(), arb_request(), arb_reply()).prop_map(|(is_req, req, reply)| {
        if is_req {
            req.to_frame().encode()
        } else {
            reply.to_frame().encode()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The round-trip law for requests: decode(encode(r)) == r and the
    /// canonical bytes are stable.
    #[test]
    fn request_round_trip_is_bit_identical(req in arb_request()) {
        let frame = req.to_frame();
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes, DEFAULT_FRAME_CAP)
            .expect("decode of freshly encoded frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(Request::from_frame(&decoded).expect("payload decode"), req);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// The round-trip law for replies.
    #[test]
    fn reply_round_trip_is_bit_identical(reply in arb_reply()) {
        let frame = reply.to_frame();
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes, DEFAULT_FRAME_CAP)
            .expect("decode of freshly encoded frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(Reply::from_frame(&decoded).expect("payload decode"), reply);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Every strict prefix of a valid frame is Truncated — never a panic,
    /// never a success, never a misdiagnosis.
    #[test]
    fn every_truncation_point_is_detected(bytes in arb_frame_bytes(), cut in 0u64..1000) {
        let len = (bytes.len() - 1) * cut as usize / 1000;
        let err = decode_frame(&bytes[..len], DEFAULT_FRAME_CAP).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Truncated { .. }),
            "prefix {} of {} gave {:?}", len, bytes.len(), err
        );
    }

    /// A single bit-flip ANYWHERE in a frame yields a typed error — the
    /// checksum covers the kind and length fields as well as the payload,
    /// so no flip can smuggle through a quietly different message.
    #[test]
    fn any_bit_flip_is_detected(bytes in arb_frame_bytes(), pos in 0usize..4096, bit in 0u8..8) {
        let mut corrupt = bytes.clone();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        match decode_frame(&corrupt, DEFAULT_FRAME_CAP) {
            Err(
                WireError::BadMagic
                | WireError::UnsupportedVersion(_)
                | WireError::UnknownKind(_)
                | WireError::Truncated { .. }
                | WireError::ChecksumMismatch
                | WireError::Oversized { .. },
            ) => {}
            other => prop_assert!(false, "flip at {} bit {} gave {:?}", pos, bit, other),
        }
    }

    /// Flipping a payload byte specifically is always a checksum mismatch
    /// (framing intact, content corrupt — the precise diagnosis).
    #[test]
    fn payload_corruption_is_a_checksum_mismatch(req in arb_request(), off in 0usize..4096, flip in 1u8..=255) {
        let frame = req.to_frame();
        if frame.payload.is_empty() {
            return;
        }
        let mut bytes = frame.encode();
        let off = HEADER_LEN + off % frame.payload.len();
        bytes[off] ^= flip;
        prop_assert!(matches!(
            decode_frame(&bytes, DEFAULT_FRAME_CAP),
            Err(WireError::ChecksumMismatch)
        ));
    }

    /// A header that lies about its length is capped before any allocation:
    /// a declared size past the cap is Oversized no matter how big.
    #[test]
    fn lying_length_is_capped(bytes in arb_frame_bytes(), declared in (DEFAULT_FRAME_CAP + 1)..u64::MAX) {
        let mut corrupt = bytes.clone();
        corrupt[16..24].copy_from_slice(&declared.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&corrupt, DEFAULT_FRAME_CAP),
            Err(WireError::Oversized { declared: d, cap: DEFAULT_FRAME_CAP }) if d == declared
        ));
    }

    /// Any version other than WIRE_VERSION (1) is rejected as unsupported.
    #[test]
    fn other_versions_are_rejected(bytes in arb_frame_bytes(), version in 2u32..u32::MAX) {
        let mut corrupt = bytes.clone();
        corrupt[WIRE_MAGIC.len()..WIRE_MAGIC.len() + 4].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&corrupt, DEFAULT_FRAME_CAP),
            Err(WireError::UnsupportedVersion(v)) if v == version
        ));
    }
}

/// Random byte soup (wrong magic with overwhelming probability) never
/// panics the decoder.
#[test]
fn fuzz_soup_never_panics() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..500 {
        let len = rng.gen_range(0..300usize);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = decode_frame(&soup, DEFAULT_FRAME_CAP);
    }
    // Soup that keeps the magic intact exercises the header paths too.
    for _ in 0..500 {
        let len = rng.gen_range(0..300usize);
        let mut soup: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let keep = soup.len().min(WIRE_MAGIC.len());
        soup[..keep].copy_from_slice(&WIRE_MAGIC[..keep]);
        let _ = decode_frame(&soup, DEFAULT_FRAME_CAP);
    }
}
