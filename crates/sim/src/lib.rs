#![warn(missing_docs)]

//! A round-accurate simulator for the Congested Clique model.
//!
//! # The model
//!
//! The Congested Clique consists of `n` nodes on a fully connected
//! communication network. Computation proceeds in synchronous rounds; in each
//! round every node may send one `O(B)`-bit message over each of its `n - 1`
//! links (the standard model has `B = log n`; `Congested-Clique[B]` is the
//! bandwidth-parameterized variant of \[DKO14\]). The complexity measure is the
//! number of rounds.
//!
//! # What the simulator does
//!
//! Algorithms in this workspace are written as *phase procedures*: they own
//! their per-node states and may only move information between nodes through
//! a [`Clique`]'s communication primitives. Each primitive
//!
//! 1. **delivers** the data (so node-local knowledge evolves exactly as it
//!    would in a real execution), and
//! 2. **charges rounds** to the [`RoundLedger`] as a function of the *actual
//!    measured* per-node loads, using the routing theorems the paper relies
//!    on (Lenzen's routing \[Len13\] = Lemma 2.1, and the redundancy-aware
//!    variant \[CFG+20\] = Lemma 2.2).
//!
//! The charge for a routing instance with maximum per-node load of `L` words
//! (max over nodes of words sent and words received) is
//! `ROUTE_CONSTANT * ceil(L / (n * f))` rounds, where `f` is the bandwidth
//! factor (words per message, see [`Bandwidth`]) and
//! [`ROUTE_CONSTANT`] `= 2` reflects the two phases of balanced relay
//! routing. Lenzen's deterministic algorithm achieves a (larger) constant;
//! all algorithms in this workspace — the paper's and the baselines — are
//! charged through the same model, so comparisons are apples-to-apples.
//!
//! A *scheduled* routing mode ([`routing::schedule_route`]) actually places
//! messages into rounds under per-link capacity constraints and is used by
//! tests and experiment E15 to validate the closed-form charge.
//!
//! # Example
//!
//! ```
//! use clique_sim::{Bandwidth, Clique, Msg};
//!
//! let mut clique = Clique::new(8, Bandwidth::standard(8));
//! // Every node sends its ID to node 0.
//! let msgs: Vec<Msg<u64>> = (0..8).map(|v| Msg::new(v, 0, v as u64)).collect();
//! let inboxes = clique.route("gather-ids", msgs);
//! assert_eq!(inboxes[0].len(), 8);
//! assert!(clique.rounds() >= 1);
//! ```

pub mod bandwidth;
pub mod clique;
pub mod ledger;
pub mod message;
pub mod routing;
pub mod stats;

pub use bandwidth::Bandwidth;
pub use clique::Clique;
pub use ledger::{RoundLedger, RouteReport};
pub use message::{Msg, Words};
pub use stats::TrafficStats;

/// Node identifier within the clique: `0..n`.
pub type NodeId = usize;

/// Constant factor applied to every routing charge: the two phases
/// (scatter to relays, deliver from relays) of balanced relay routing.
pub const ROUTE_CONSTANT: u64 = 2;
