//! Cumulative traffic statistics, aggregated per primitive label.
//!
//! Complements the [`crate::RoundLedger`] (which answers *how many rounds*)
//! with *how much data moved and how skewed it was* — the quantities the
//! paper's routing lemmas constrain (e.g. "every node is the target of O(n)
//! messages"). Experiments read these to verify load preconditions held.

use std::collections::HashMap;

/// Aggregated traffic for one primitive label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelTraffic {
    /// Number of invocations of the primitive under this label.
    pub invocations: usize,
    /// Total words moved across all invocations.
    pub total_words: usize,
    /// Largest single-node load (words) seen in any invocation.
    pub max_node_load: usize,
    /// Total rounds charged under this label.
    pub rounds: u64,
}

/// Per-label traffic table, in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    order: Vec<String>,
    by_label: HashMap<String, LabelTraffic>,
}

impl TrafficStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one primitive invocation.
    pub fn record(&mut self, label: &str, total_words: usize, max_node_load: usize, rounds: u64) {
        let entry = self.entry_mut(label);
        entry.invocations += 1;
        entry.total_words += total_words;
        entry.max_node_load = entry.max_node_load.max(max_node_load);
        entry.rounds += rounds;
    }

    /// Merges another stats table into this one (label by label, in
    /// `other`'s first-seen order). Used when parallel sub-computations run
    /// on their own [`crate::Clique`] instances and their traffic is folded
    /// back into the parent deterministically.
    pub fn absorb(&mut self, other: &TrafficStats) {
        for (label, t) in other.rows() {
            let entry = self.entry_mut(label);
            entry.invocations += t.invocations;
            entry.total_words += t.total_words;
            entry.max_node_load = entry.max_node_load.max(t.max_node_load);
            entry.rounds += t.rounds;
        }
    }

    fn entry_mut(&mut self, label: &str) -> &mut LabelTraffic {
        if !self.by_label.contains_key(label) {
            self.order.push(label.to_string());
        }
        self.by_label.entry(label.to_string()).or_default()
    }

    /// Traffic for a label, if any was recorded.
    pub fn get(&self, label: &str) -> Option<LabelTraffic> {
        self.by_label.get(label).copied()
    }

    /// All `(label, traffic)` rows in first-seen order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, LabelTraffic)> + '_ {
        self.order
            .iter()
            .map(move |l| (l.as_str(), self.by_label[l]))
    }

    /// Total words moved across all labels.
    pub fn total_words(&self) -> usize {
        self.by_label.values().map(|t| t.total_words).sum()
    }

    /// The largest single-node load observed anywhere.
    pub fn worst_node_load(&self) -> usize {
        self.by_label
            .values()
            .map(|t| t.max_node_load)
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<44} {:>6} {:>12} {:>10} {:>8}",
            "label", "calls", "words", "max load", "rounds"
        )?;
        for (label, t) in self.rows() {
            writeln!(
                f,
                "{:<44} {:>6} {:>12} {:>10} {:>8}",
                label, t.invocations, t.total_words, t.max_node_load, t.rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_per_label() {
        let mut s = TrafficStats::new();
        s.record("a", 100, 10, 2);
        s.record("a", 50, 25, 2);
        s.record("b", 7, 7, 1);
        let a = s.get("a").unwrap();
        assert_eq!(a.invocations, 2);
        assert_eq!(a.total_words, 150);
        assert_eq!(a.max_node_load, 25);
        assert_eq!(a.rounds, 4);
        assert_eq!(s.total_words(), 157);
        assert_eq!(s.worst_node_load(), 25);
    }

    #[test]
    fn rows_preserve_first_seen_order() {
        let mut s = TrafficStats::new();
        s.record("z", 1, 1, 1);
        s.record("a", 1, 1, 1);
        s.record("z", 1, 1, 1);
        let labels: Vec<&str> = s.rows().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["z", "a"]);
    }

    #[test]
    fn display_includes_labels() {
        let mut s = TrafficStats::new();
        s.record("hopset-edge-transfer", 1000, 64, 2);
        let text = s.to_string();
        assert!(text.contains("hopset-edge-transfer"));
    }
}
