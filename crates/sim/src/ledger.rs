//! Round accounting.
//!
//! Every communication primitive charges rounds into a [`RoundLedger`], which
//! records an event stream tagged with the current *phase path* (a slash-
//! separated stack of phase names, e.g. `"theorem-1.1/hopset/collect"`).
//! Experiments print per-phase breakdowns from the ledger; the ledger's total
//! is the measured round complexity of a run.

/// Per-routing-instance load report; returned alongside deliveries so tests
/// and experiments can check the load preconditions of the paper's routing
/// lemmas (e.g. "each node is the target of O(n) messages", Lemma 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteReport {
    /// Maximum over nodes of words sent in this instance.
    pub max_send_words: usize,
    /// Maximum over nodes of words received in this instance.
    pub max_recv_words: usize,
    /// Total words moved.
    pub total_words: usize,
    /// Number of messages.
    pub messages: usize,
    /// Rounds charged for this instance.
    pub rounds: u64,
}

/// A single charge in the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Slash-separated phase path at the time of the charge.
    pub phase: String,
    /// Primitive-level label (e.g. `"route:hopset-edges"`).
    pub label: String,
    /// Rounds charged.
    pub rounds: u64,
}

/// Ordered log of round charges with a phase stack.
#[derive(Debug, Clone, Default)]
pub struct RoundLedger {
    events: Vec<Event>,
    phase_stack: Vec<String>,
    total: u64,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rounds charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All events, in charge order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Charges `rounds` under the current phase.
    pub fn charge(&mut self, label: &str, rounds: u64) {
        self.total += rounds;
        self.events.push(Event {
            phase: self.phase_path(),
            label: label.to_string(),
            rounds,
        });
    }

    /// Pushes a phase name; charges until the matching [`Self::pop_phase`]
    /// are tagged with it.
    pub fn push_phase(&mut self, name: &str) {
        self.phase_stack.push(name.to_string());
    }

    /// Pops the innermost phase.
    pub fn pop_phase(&mut self) {
        self.phase_stack.pop();
    }

    /// Current phase path (empty string at top level).
    pub fn phase_path(&self) -> String {
        self.phase_stack.join("/")
    }

    /// Aggregates rounds by *top-level* phase name, in first-seen order.
    pub fn breakdown(&self) -> Vec<(String, u64)> {
        self.breakdown_depth(1)
    }

    /// Aggregates rounds by phase path truncated to `depth` components, in
    /// first-seen order. `depth = 0` aggregates everything under `""`.
    pub fn breakdown_depth(&self, depth: usize) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for ev in &self.events {
            let key: String = if depth == 0 {
                String::new()
            } else {
                ev.phase
                    .split('/')
                    .filter(|s| !s.is_empty())
                    .take(depth)
                    .collect::<Vec<_>>()
                    .join("/")
            };
            if !totals.contains_key(&key) {
                order.push(key.clone());
            }
            *totals.entry(key).or_insert(0) += ev.rounds;
        }
        order
            .into_iter()
            .map(|k| {
                let t = totals[&k];
                (k, t)
            })
            .collect()
    }

    /// Absorbs another ledger's events (used by parallel groups to keep child
    /// details for auditing without double-charging: the events are appended
    /// with zero-cost markers, and the caller charges the max separately).
    pub fn absorb_as_info(&mut self, child: &RoundLedger, prefix: &str) {
        for ev in child.events() {
            let phase = if ev.phase.is_empty() {
                prefix.to_string()
            } else {
                format!("{prefix}/{}", ev.phase)
            };
            self.events.push(Event {
                phase,
                label: format!("[parallel-instance] {}", ev.label),
                rounds: 0,
            });
        }
    }
}

impl std::fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total rounds: {}", self.total)?;
        for (phase, rounds) in self.breakdown() {
            let name = if phase.is_empty() { "(top)" } else { &phase };
            writeln!(f, "  {name:<28} {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = RoundLedger::new();
        l.charge("a", 2);
        l.charge("b", 3);
        assert_eq!(l.total(), 5);
        assert_eq!(l.events().len(), 2);
    }

    #[test]
    fn phase_paths_nest() {
        let mut l = RoundLedger::new();
        l.push_phase("outer");
        l.charge("x", 1);
        l.push_phase("inner");
        l.charge("y", 2);
        l.pop_phase();
        l.charge("z", 4);
        l.pop_phase();
        assert_eq!(l.events()[0].phase, "outer");
        assert_eq!(l.events()[1].phase, "outer/inner");
        assert_eq!(l.events()[2].phase, "outer");
    }

    #[test]
    fn breakdown_aggregates_by_top_phase() {
        let mut l = RoundLedger::new();
        l.push_phase("p1");
        l.charge("a", 1);
        l.push_phase("sub");
        l.charge("b", 2);
        l.pop_phase();
        l.pop_phase();
        l.push_phase("p2");
        l.charge("c", 5);
        l.pop_phase();
        assert_eq!(l.breakdown(), vec![("p1".into(), 3), ("p2".into(), 5)]);
        assert_eq!(
            l.breakdown_depth(2),
            vec![("p1".into(), 1), ("p1/sub".into(), 2), ("p2".into(), 5)]
        );
    }

    #[test]
    fn absorb_as_info_is_free() {
        let mut parent = RoundLedger::new();
        let mut child = RoundLedger::new();
        child.charge("inner", 7);
        parent.absorb_as_info(&child, "instance-0");
        assert_eq!(parent.total(), 0);
        assert_eq!(parent.events().len(), 1);
    }
}
