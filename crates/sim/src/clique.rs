//! The [`Clique`]: the simulated network handle every algorithm runs against.

use crate::bandwidth::Bandwidth;
use crate::ledger::{RoundLedger, RouteReport};
use crate::message::{Msg, Words};
use crate::stats::TrafficStats;
use crate::{NodeId, ROUTE_CONSTANT};
use cc_par::ExecPolicy;

/// A simulated `n`-node Congested Clique with bandwidth accounting.
///
/// All communication primitives deliver data *and* charge rounds computed
/// from the actual loads (see the [crate docs](crate) for the charge model).
/// Algorithms should scope their work with [`Clique::phase`] so the ledger
/// can report per-phase breakdowns.
#[derive(Debug)]
pub struct Clique {
    n: usize,
    bandwidth: Bandwidth,
    ledger: RoundLedger,
    stats: TrafficStats,
    load_guard: Option<usize>,
}

impl Clique {
    /// A fresh clique of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, bandwidth: Bandwidth) -> Self {
        assert!(n >= 1, "clique needs at least one node");
        Self {
            n,
            bandwidth,
            ledger: RoundLedger::new(),
            stats: TrafficStats::new(),
            load_guard: None,
        }
    }

    /// Installs a load guard: any single routing instance whose max per-node
    /// load exceeds `factor · n · f` words **panics** with a diagnostic.
    ///
    /// The paper's `O(1)`-round claims all rest on per-step loads of `O(n)`
    /// words; running a pipeline under a guard turns a violated load
    /// precondition into a loud failure instead of a silently larger round
    /// charge. Used by tests as model-assertion failure injection.
    pub fn guard_loads(&mut self, factor: usize) -> &mut Self {
        self.load_guard = Some(factor);
        self
    }

    /// Cumulative per-label traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Link bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Total rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.ledger.total()
    }

    /// Read access to the ledger.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Runs `f` inside a named phase (nested phases build slash-paths).
    ///
    /// Each phase also opens a `cc_obs` span carrying the rounds charged and
    /// words moved while it ran, so `--trace` exports per-phase round and
    /// bandwidth budgets without any per-algorithm instrumentation. The
    /// ledger deltas are only read when tracing is on; recording never feeds
    /// back into the computation.
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        let mut sp = cc_obs::span(name);
        let (rounds0, words0) = if sp.is_active() {
            (self.ledger.total(), self.stats.total_words())
        } else {
            (0, 0)
        };
        self.ledger.push_phase(name);
        let out = f(self);
        self.ledger.pop_phase();
        if sp.is_active() {
            sp.attr("rounds", (self.ledger.total() - rounds0) as f64);
            sp.attr("words", (self.stats.total_words() - words0) as f64);
        }
        out
    }

    /// Directly charges `rounds` (used for costs established by citation,
    /// e.g. the CZ22 spanner's O(1) rounds; each call site documents which
    /// theorem it charges).
    pub fn charge(&mut self, label: &str, rounds: u64) {
        self.ledger.charge(label, rounds);
    }

    /// Rounds needed to route an instance whose max per-node load is
    /// `load_words`: `ROUTE_CONSTANT · ceil(load / (n · f))`, and at least 1
    /// when any data moves.
    pub fn rounds_for_load(&self, load_words: usize) -> u64 {
        if load_words == 0 {
            return 0;
        }
        let cap = self.n * self.bandwidth.words_per_message();
        ROUTE_CONSTANT * (load_words.div_ceil(cap) as u64)
    }

    /// Routes a batch of point-to-point messages (Lemma 2.1 / Lemma 2.2
    /// style), delivering every message and charging rounds from the measured
    /// loads. Returns per-node inboxes ordered by `(src, arrival order)`.
    pub fn route<P: Words>(&mut self, label: &str, msgs: Vec<Msg<P>>) -> Vec<Vec<Msg<P>>> {
        let (inboxes, _) = self.route_with_report(label, msgs);
        inboxes
    }

    /// [`Clique::route`], also returning the load report.
    pub fn route_with_report<P: Words>(
        &mut self,
        label: &str,
        msgs: Vec<Msg<P>>,
    ) -> (Vec<Vec<Msg<P>>>, RouteReport) {
        let mut send = vec![0usize; self.n];
        let mut recv = vec![0usize; self.n];
        let mut total = 0usize;
        let count = msgs.len();
        for m in &msgs {
            assert!(
                m.src < self.n && m.dst < self.n,
                "message endpoint out of range"
            );
            let w = m.payload.words();
            send[m.src] += w;
            recv[m.dst] += w;
            total += w;
        }
        let report = self.charge_loads(label, &send, &recv, total, count);
        let mut inboxes: Vec<Vec<Msg<P>>> = (0..self.n).map(|_| Vec::new()).collect();
        let mut ordered = msgs;
        // Deterministic arrival order regardless of caller construction order.
        ordered.sort_by_key(|m| (m.dst, m.src));
        for m in ordered {
            inboxes[m.dst].push(m);
        }
        (inboxes, report)
    }

    /// Charges a routing instance described only by its per-node loads (in
    /// words), without materializing messages. Algorithms use this when the
    /// payload movement is performed directly on their state for simulation
    /// efficiency; the loads passed must be the loads the real instance
    /// would have.
    pub fn charge_route_by_loads(
        &mut self,
        label: &str,
        send_loads: &[usize],
        recv_loads: &[usize],
    ) -> RouteReport {
        assert_eq!(send_loads.len(), self.n);
        assert_eq!(recv_loads.len(), self.n);
        let total = send_loads.iter().sum::<usize>();
        self.charge_loads(label, send_loads, recv_loads, total, 0)
    }

    fn charge_loads(
        &mut self,
        label: &str,
        send: &[usize],
        recv: &[usize],
        total_words: usize,
        messages: usize,
    ) -> RouteReport {
        let max_send = send.iter().copied().max().unwrap_or(0);
        let max_recv = recv.iter().copied().max().unwrap_or(0);
        let load = max_send.max(max_recv);
        if let Some(factor) = self.load_guard {
            let limit = factor * self.n * self.bandwidth.words_per_message();
            assert!(
                load <= limit,
                "load guard tripped in `{label}`: per-node load {load} words > \
                 {factor}·n·f = {limit} (the O(n)-load precondition of the \
                 routing lemmas does not hold for this step)"
            );
        }
        let rounds = self.rounds_for_load(load);
        self.ledger.charge(label, rounds);
        self.stats.record(label, total_words, load, rounds);
        RouteReport {
            max_send_words: max_send,
            max_recv_words: max_recv,
            total_words,
            messages,
            rounds,
        }
    }

    /// One node sends the same `words`-word blob to every node (e.g.
    /// broadcasting a spanner). Charge: distribute the blob in chunks across
    /// the clique, then all-to-all share — `ROUTE_CONSTANT · ceil(words /
    /// (n·f))`, at least 1.
    pub fn broadcast_from(&mut self, label: &str, src: NodeId, words: usize) -> u64 {
        assert!(src < self.n, "broadcast source out of range");
        let rounds = self.rounds_for_load(words).max(1);
        self.ledger.charge(label, rounds);
        rounds
    }

    /// Every node broadcasts a blob to every node; `per_node_words[v]` is the
    /// size of `v`'s blob. Each node must receive the concatenation, so the
    /// receive load is the total size.
    pub fn broadcast_all(&mut self, label: &str, per_node_words: &[usize]) -> RouteReport {
        assert_eq!(per_node_words.len(), self.n);
        let total: usize = per_node_words.iter().sum();
        let recv = vec![total; self.n];
        // Each node sends its blob once; the relay fan-out is captured by the
        // receive side of the load formula.
        self.charge_loads(label, per_node_words, &recv, total, 0)
    }

    /// Makes a dataset of `total_words` words, held in pieces across the
    /// clique (e.g. a spanner's edges, each known to its endpoints), known to
    /// **every** node: the receive load is `total_words` per node, so the
    /// charge is `rounds_for_load(total_words)` (min 1). This is the standard
    /// "broadcast a sparse graph" pattern of Corollary 7.1.
    pub fn broadcast_volume(&mut self, label: &str, total_words: usize) -> u64 {
        let rounds = self.rounds_for_load(total_words).max(1);
        self.ledger.charge(label, rounds);
        rounds
    }

    /// Runs `count` independent sub-computations that execute *in parallel*
    /// on the same clique, each with `per_instance` bandwidth. The group
    /// charges `max(instance rounds) · overcommit`, where `overcommit =
    /// ceil(count · per_instance / available)` accounts for running more
    /// parallel bandwidth than the links provide (this is how Section 8.2's
    /// "O(log n) instances need an extra O(log n) bandwidth factor"
    /// materializes when run in the standard model).
    ///
    /// Each instance runs on its own sub-clique (same `n`, `per_instance`
    /// bandwidth, inherited load guard); the sub-ledgers and traffic tables
    /// are merged back **in instance order**, so the parent's accounting is
    /// a pure function of the instances' outputs. [`Clique::parallel_exec`]
    /// is the same primitive with the instances actually executed on worker
    /// threads.
    pub fn parallel<T>(
        &mut self,
        label: &str,
        count: usize,
        per_instance: Bandwidth,
        mut f: impl FnMut(&mut Clique, usize) -> T,
    ) -> Vec<T> {
        let runs: Vec<(RoundLedger, TrafficStats, T)> = (0..count)
            .map(|i| {
                let mut sub = self.sub_instance(per_instance);
                let out = f(&mut sub, i);
                (sub.ledger, sub.stats, out)
            })
            .collect();
        self.merge_parallel_runs(label, per_instance, runs)
    }

    /// [`Clique::parallel`] with the instances executed under `exec`: truly
    /// concurrent when the policy is `Par(k)`. Because the sub-ledgers are
    /// merged deterministically in instance order, the parent's rounds,
    /// ledger events, and traffic tables are **identical** to a
    /// [`ExecPolicy::Seq`] run — the thread count never changes any
    /// simulated quantity.
    pub fn parallel_exec<T: Send>(
        &mut self,
        label: &str,
        count: usize,
        per_instance: Bandwidth,
        exec: ExecPolicy,
        f: impl Fn(&mut Clique, usize) -> T + Sync,
    ) -> Vec<T> {
        // Copies (not &self) so the closure can be Sync across workers.
        let n = self.n;
        let load_guard = self.load_guard;
        let runs: Vec<(RoundLedger, TrafficStats, T)> = exec.map_collect(count, |i| {
            let mut sub = Self::sub_instance_from(n, per_instance, load_guard);
            let out = f(&mut sub, i);
            (sub.ledger, sub.stats, out)
        });
        self.merge_parallel_runs(label, per_instance, runs)
    }

    /// A fresh clique representing one instance of a parallel group: same
    /// node set, the instance's bandwidth share, inherited load guard.
    fn sub_instance(&self, per_instance: Bandwidth) -> Clique {
        Self::sub_instance_from(self.n, per_instance, self.load_guard)
    }

    /// [`Clique::sub_instance`] from the parent's copied-out fields; the
    /// single place sub-instance construction lives, so the sequential and
    /// threaded parallel primitives cannot drift apart.
    fn sub_instance_from(n: usize, per_instance: Bandwidth, load_guard: Option<usize>) -> Clique {
        let mut sub = Clique::new(n, per_instance);
        sub.load_guard = load_guard;
        sub
    }

    /// Folds parallel instances' ledgers/stats back into this clique in
    /// instance order and applies the group's overcommit charge.
    fn merge_parallel_runs<T>(
        &mut self,
        label: &str,
        per_instance: Bandwidth,
        runs: Vec<(RoundLedger, TrafficStats, T)>,
    ) -> Vec<T> {
        let count = runs.len();
        let mut results = Vec::with_capacity(count);
        let mut max_rounds = 0u64;
        for (i, (ledger, stats, out)) in runs.into_iter().enumerate() {
            max_rounds = max_rounds.max(ledger.total());
            self.ledger
                .absorb_as_info(&ledger, &format!("{label}[{i}]"));
            self.stats.absorb(&stats);
            results.push(out);
        }
        let needed = count * per_instance.words_per_message();
        let available = self.bandwidth.words_per_message();
        let overcommit = (needed.div_ceil(available).max(1)) as u64;
        self.ledger.charge(label, max_rounds * overcommit);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize) -> Clique {
        Clique::new(n, Bandwidth::standard(n))
    }

    #[test]
    fn route_delivers_all_messages_in_order() {
        let mut c = clique(4);
        let msgs = vec![
            Msg::new(2, 0, 20u64),
            Msg::new(1, 0, 10u64),
            Msg::new(3, 1, 31u64),
        ];
        let inboxes = c.route("t", msgs);
        assert_eq!(
            inboxes[0].iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![10, 20]
        );
        assert_eq!(inboxes[1][0].payload, 31);
        assert!(inboxes[2].is_empty());
    }

    #[test]
    fn route_charges_by_max_load() {
        let mut c = clique(4);
        // Node 0 receives 8 words: load 8, capacity n*f = 4 → 2 units → 4 rounds.
        let msgs: Vec<Msg<u64>> = (0..8).map(|i| Msg::new(i % 4, 0, i as u64)).collect();
        let (_, report) = c.route_with_report("t", msgs);
        assert_eq!(report.max_recv_words, 8);
        assert_eq!(report.rounds, ROUTE_CONSTANT * 2);
    }

    #[test]
    fn balanced_all_to_all_is_cheap() {
        let n = 16;
        let mut c = clique(n);
        let msgs: Vec<Msg<u64>> = (0..n)
            .flat_map(|u| (0..n).map(move |v| Msg::new(u, v, 1u64)))
            .collect();
        c.route("t", msgs);
        assert_eq!(c.rounds(), ROUTE_CONSTANT);
    }

    #[test]
    fn bandwidth_reduces_rounds() {
        let n = 8;
        let heavy: Vec<Msg<u64>> = (0..n)
            .flat_map(|u| (0..n).flat_map(move |v| (0..4).map(move |i| Msg::new(u, v, i as u64))))
            .collect();
        let mut std_c = Clique::new(n, Bandwidth::standard(n));
        std_c.route("t", heavy.clone());
        let mut fat_c = Clique::new(n, Bandwidth::words(4));
        fat_c.route("t", heavy);
        assert!(fat_c.rounds() < std_c.rounds());
    }

    #[test]
    fn broadcast_from_scales_with_size() {
        let mut c = clique(8);
        let r_small = c.broadcast_from("small", 0, 8);
        let r_big = c.broadcast_from("big", 0, 64);
        assert!(r_big > r_small);
    }

    #[test]
    fn broadcast_all_charges_total_on_receive() {
        let mut c = clique(4);
        let report = c.broadcast_all("t", &[4, 4, 4, 4]);
        assert_eq!(report.max_recv_words, 16);
        assert_eq!(report.rounds, ROUTE_CONSTANT * 4); // 16 words / (4*1) cap
    }

    #[test]
    fn phases_tag_ledger() {
        let mut c = clique(4);
        c.phase("alpha", |c| c.charge("x", 3));
        assert_eq!(c.ledger().breakdown(), vec![("alpha".to_string(), 3)]);
    }

    #[test]
    fn parallel_charges_max_not_sum() {
        let mut c = clique(4);
        c.parallel("par", 3, Bandwidth::standard(4), |c, i| {
            c.charge("work", (i as u64) + 1);
        });
        // max instance cost = 3; overcommit = ceil(3*1/1) = 3 → 9.
        assert_eq!(c.rounds(), 9);
    }

    #[test]
    fn parallel_exec_accounting_is_thread_count_invariant() {
        let run = |exec: ExecPolicy| {
            let mut c = clique(6);
            c.guard_loads(8);
            let outs = c.parallel_exec("par", 5, Bandwidth::words(1), exec, |sub, i| {
                sub.charge("work", (i as u64) + 1);
                sub.broadcast_from("blob", 0, 4 * (i + 1));
                i * 10
            });
            (outs, c.rounds(), c.ledger().events().to_vec())
        };
        let seq = run(ExecPolicy::Seq);
        for threads in [2usize, 4] {
            let par = run(ExecPolicy::Par(threads));
            assert_eq!(par, seq, "threads={threads}");
        }
        // And the sequential FnMut primitive agrees with parallel_exec(Seq).
        let mut c = clique(6);
        c.guard_loads(8);
        let outs = c.parallel("par", 5, Bandwidth::words(1), |sub, i| {
            sub.charge("work", (i as u64) + 1);
            sub.broadcast_from("blob", 0, 4 * (i + 1));
            i * 10
        });
        assert_eq!((outs, c.rounds(), c.ledger().events().to_vec()), seq);
    }

    #[test]
    fn parallel_no_overcommit_when_bandwidth_suffices() {
        let mut c = Clique::new(4, Bandwidth::words(8));
        c.parallel("par", 4, Bandwidth::words(2), |c, _| {
            c.charge("work", 5);
        });
        assert_eq!(c.rounds(), 5);
    }

    #[test]
    fn charge_route_by_loads_matches_route() {
        let n = 4;
        let mut c1 = clique(n);
        let msgs: Vec<Msg<u64>> = (0..8)
            .map(|i| Msg::new(i % n, (i + 1) % n, i as u64))
            .collect();
        let mut send = vec![0usize; n];
        let mut recv = vec![0usize; n];
        for m in &msgs {
            send[m.src] += 1;
            recv[m.dst] += 1;
        }
        let (_, rep1) = c1.route_with_report("t", msgs);
        let mut c2 = clique(n);
        let rep2 = c2.charge_route_by_loads("t", &send, &recv);
        assert_eq!(rep1.rounds, rep2.rounds);
        assert_eq!(c1.rounds(), c2.rounds());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_rejects_bad_destination() {
        let mut c = clique(2);
        c.route("t", vec![Msg::new(0, 7, 1u64)]);
    }

    #[test]
    fn traffic_stats_accumulate_per_label() {
        let mut c = clique(4);
        c.route("alpha", vec![Msg::new(0, 1, 1u64), Msg::new(2, 1, 2u64)]);
        c.route("alpha", vec![Msg::new(3, 0, 9u64)]);
        c.broadcast_all("beta", &[1, 1, 1, 1]);
        let alpha = c.traffic().get("alpha").unwrap();
        assert_eq!(alpha.invocations, 2);
        assert_eq!(alpha.total_words, 3);
        assert!(c.traffic().get("beta").is_some());
        assert!(c.traffic().get("gamma").is_none());
    }

    #[test]
    #[should_panic(expected = "load guard tripped")]
    fn load_guard_fires_on_hotspot() {
        let mut c = clique(4);
        c.guard_loads(2);
        // Node 0 receives 4·n = 16 words: above the 2·n·f = 8 limit.
        let msgs: Vec<Msg<u64>> = (0..16).map(|i| Msg::new(i % 4, 0, i as u64)).collect();
        c.route("hot", msgs);
    }

    #[test]
    fn load_guard_allows_balanced_instances() {
        let mut c = clique(8);
        c.guard_loads(2);
        let msgs: Vec<Msg<u64>> = (0..8)
            .flat_map(|u| (0..8).map(move |v| Msg::new(u, v, 1u64)))
            .collect();
        c.route("balanced", msgs); // load = n = 8 ≤ 2·n·f
        assert_eq!(c.rounds(), ROUTE_CONSTANT);
    }
}
