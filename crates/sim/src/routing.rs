//! A concrete round-by-round routing scheduler.
//!
//! [`schedule_route`] places messages into rounds under the model's per-link
//! capacity constraint (one message of `f` words per ordered node pair per
//! round), using the classic two-phase balanced relay scheme that underlies
//! Lenzen's routing theorem \[Len13\]:
//!
//! * **Phase 1 (scatter):** source `u` splits its traffic into `f`-word units
//!   and hands unit `j` to relay `(u + j) mod n` — one unit per link per
//!   round.
//! * **Phase 2 (deliver):** each relay forwards its held units to their
//!   destinations — again one unit per link per round.
//!
//! The scheduler reports the *exact* number of rounds this schedule takes.
//! Experiment E15 and the tests compare it against the closed-form charge
//! `ROUTE_CONSTANT · ceil(L / (n·f))` used by [`crate::Clique::route`]; on
//! balanced instances (the only ones the paper's lemmas invoke) the two agree
//! up to a small additive constant. This is a validation tool, not Lenzen's
//! exact algorithm — his sorting-based scheme achieves a fixed constant on
//! *all* instances, which we cite rather than re-derive.

use crate::NodeId;

/// Outcome of scheduling one routing instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Rounds used by the scatter phase.
    pub phase1_rounds: u64,
    /// Rounds used by the delivery phase.
    pub phase2_rounds: u64,
    /// Total rounds.
    pub total_rounds: u64,
    /// Number of `f`-word units moved.
    pub units: usize,
}

/// Schedules the instance `msgs` (entries `(src, dst, words)`) on an
/// `n`-node clique with `f` words per message, and returns the exact round
/// counts of the two-phase relay schedule.
///
/// Messages are split into `ceil(words / f)` units. Units destined to their
/// own source still travel through a relay (keeping the schedule oblivious).
///
/// # Panics
///
/// Panics if any endpoint is out of range or `f == 0`.
pub fn schedule_route(n: usize, f: usize, msgs: &[(NodeId, NodeId, usize)]) -> Schedule {
    assert!(f >= 1, "bandwidth must be at least one word");
    assert!(n >= 1, "empty clique");
    // Unit counts per (src, relay) link for phase 1, and per relay a list of
    // destination unit counts for phase 2.
    let mut phase1 = vec![0u64; n * n]; // [src * n + relay]
    let mut phase2 = vec![0u64; n * n]; // [relay * n + dst]
    let mut next_relay = vec![0usize; n];
    let mut units_total = 0usize;
    for &(src, dst, words) in msgs {
        assert!(src < n && dst < n, "message endpoint out of range");
        let units = words.div_ceil(f).max(1);
        units_total += units;
        for _ in 0..units {
            let relay = (src + next_relay[src]) % n;
            next_relay[src] += 1;
            phase1[src * n + relay] += 1;
            phase2[relay * n + dst] += 1;
        }
    }
    let phase1_rounds = phase1.iter().copied().max().unwrap_or(0);
    let phase2_rounds = phase2.iter().copied().max().unwrap_or(0);
    Schedule {
        phase1_rounds,
        phase2_rounds,
        total_rounds: phase1_rounds + phase2_rounds,
        units: units_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_takes_zero_rounds() {
        let s = schedule_route(4, 1, &[]);
        assert_eq!(s.total_rounds, 0);
    }

    #[test]
    fn single_message_takes_two_rounds() {
        let s = schedule_route(4, 1, &[(0, 1, 1)]);
        assert_eq!(s.phase1_rounds, 1);
        assert_eq!(s.phase2_rounds, 1);
    }

    #[test]
    fn balanced_all_to_all_is_constant_rounds() {
        // Every node sends one word to every node: L = n. The relay schedule
        // should finish in O(1) rounds.
        let n = 16;
        let msgs: Vec<_> = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v, 1usize)))
            .collect();
        let s = schedule_route(n, 1, &msgs);
        assert!(s.total_rounds <= 4, "rounds = {}", s.total_rounds);
    }

    #[test]
    fn load_l_times_n_scales_linearly() {
        // Each node sends c*n words spread over all destinations.
        let n = 8;
        for c in 1..4usize {
            let msgs: Vec<_> = (0..n)
                .flat_map(|u| (0..n).flat_map(move |v| (0..c).map(move |_| (u, v, 1usize))))
                .collect();
            let s = schedule_route(n, 1, &msgs);
            assert!(
                s.total_rounds as usize <= 2 * c + 2,
                "c = {c}, rounds = {}",
                s.total_rounds
            );
        }
    }

    #[test]
    fn wide_messages_split_into_units() {
        let s = schedule_route(4, 2, &[(0, 1, 10)]);
        assert_eq!(s.units, 5);
    }

    #[test]
    fn bigger_bandwidth_fewer_rounds() {
        let msgs: Vec<_> = (0..8).map(|v| (0usize, v, 8usize)).collect();
        let s1 = schedule_route(8, 1, &msgs);
        let s4 = schedule_route(8, 4, &msgs);
        assert!(s4.total_rounds < s1.total_rounds);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoints() {
        schedule_route(4, 1, &[(0, 9, 1)]);
    }
}
