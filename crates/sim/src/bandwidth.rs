//! Bandwidth parameterization: `Congested-Clique[B]`.
//!
//! We measure message sizes in **words**, where one word is `Θ(log n)` bits —
//! enough for a node ID or a (polynomially bounded) edge weight. The standard
//! model (`B = log n`) carries one word per message per link per round;
//! `Congested-Clique[log^p n]` carries `log^(p-1) n` words.

/// Link bandwidth: how many words fit in one message.
///
/// ```
/// use clique_sim::Bandwidth;
/// assert_eq!(Bandwidth::standard(1024).words_per_message(), 1);
/// // Congested-Clique[log^3 n] at n = 1024: log n = 10 bits-words factor ⇒
/// // each message carries log^2 n = 100 words.
/// assert_eq!(Bandwidth::polylog(3, 1024).words_per_message(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bandwidth {
    words: usize,
}

impl Bandwidth {
    /// The standard model: one word (`O(log n)` bits) per message.
    pub fn standard(_n: usize) -> Self {
        Self { words: 1 }
    }

    /// `Congested-Clique[log^power n]`: each message carries
    /// `log^(power-1) n` words. `power = 1` is the standard model.
    ///
    /// # Panics
    ///
    /// Panics if `power == 0`.
    pub fn polylog(power: u32, n: usize) -> Self {
        assert!(power >= 1, "bandwidth exponent must be >= 1");
        let log_n = log2_ceil(n) as usize;
        Self {
            words: log_n.pow(power - 1).max(1),
        }
    }

    /// An explicit number of words per message.
    pub fn words(words: usize) -> Self {
        assert!(words >= 1, "bandwidth must be at least one word");
        Self { words }
    }

    /// Words carried by one message.
    pub fn words_per_message(self) -> usize {
        self.words
    }
}

fn log2_ceil(n: usize) -> u32 {
    let n = n.max(2);
    usize::BITS - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_one_word() {
        assert_eq!(Bandwidth::standard(4096).words_per_message(), 1);
    }

    #[test]
    fn polylog_powers() {
        assert_eq!(Bandwidth::polylog(1, 1024).words_per_message(), 1);
        assert_eq!(Bandwidth::polylog(2, 1024).words_per_message(), 10);
        assert_eq!(Bandwidth::polylog(4, 1024).words_per_message(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_rejected() {
        Bandwidth::words(0);
    }
}
