//! Messages and payload sizing.
//!
//! Payload sizes are measured in words (see [`crate::bandwidth`]). The
//! [`Words`] trait reports how many words a payload occupies; routing charges
//! are computed from these sizes.

use crate::NodeId;

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg<P> {
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// Payload; its size in words is given by [`Words::words`].
    pub payload: P,
}

impl<P> Msg<P> {
    /// Creates a message.
    pub fn new(src: NodeId, dst: NodeId, payload: P) -> Self {
        Self { src, dst, payload }
    }
}

/// Size of a payload in `Θ(log n)`-bit words.
///
/// A node ID or an edge weight is one word (weights are polynomially bounded,
/// Section 2.1 of the paper). Tuples add their components; vectors sum their
/// elements.
pub trait Words {
    /// Number of words this payload occupies on the wire.
    fn words(&self) -> usize;
}

impl Words for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl Words for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl Words for usize {
    fn words(&self) -> usize {
        1
    }
}

impl Words for bool {
    fn words(&self) -> usize {
        1
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Words, B: Words, C: Words> Words for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: Words, B: Words, C: Words, D: Words> Words for (A, B, C, D) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: Words> Words for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(Words::words).sum()
    }
}

impl<T: Words> Words for Option<T> {
    fn words(&self) -> usize {
        self.as_ref().map_or(1, |t| t.words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!(7usize.words(), 1);
        assert_eq!(true.words(), 1);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!((1u64, 2u64, 3u64).words(), 3);
        assert_eq!(vec![(1u64, 2u64); 5].words(), 10);
        assert_eq!(Some((1u64, 2u64)).words(), 2);
        assert_eq!(None::<u64>.words(), 1);
    }

    #[test]
    fn msg_construction() {
        let m = Msg::new(3, 4, (9u64, 1u64));
        assert_eq!(m.src, 3);
        assert_eq!(m.dst, 4);
        assert_eq!(m.payload.words(), 2);
    }
}
