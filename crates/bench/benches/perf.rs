//! `perf` — thread-scaling wall-clock benchmark emitting `BENCH_kernels.json`.
//!
//! Times the parallel hot kernels (per-source Dijkstra APSP, dense min-plus
//! product, the full Theorem 1.1 pipeline) at thread counts 1/2/4 and writes
//! the records machine-readably (see [`cc_bench::report`]) so the perf
//! trajectory is tracked from this PR onward.
//!
//! ```sh
//! cargo bench -p cc-bench --bench perf            # full sizes
//! FAST=1 cargo bench -p cc-bench --bench perf     # smoke sizes
//! ```
//!
//! Every record is produced from the *same* inputs; the kernels' outputs are
//! cross-checked against the sequential run, so a scheduling bug that broke
//! determinism would fail the bench rather than skew the numbers.

use cc_apsp::pipeline::{approximate_apsp, PipelineConfig};
use cc_bench::experiments::fast;
use cc_bench::report::{time_best_of, write_report, BenchRecord};
use cc_graph::generators::Family;
use cc_graph::{apsp, DistMatrix};
use cc_matrix::dense::{adjacency_matrix, distance_product_with};
use cc_par::ExecPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Written at the workspace root regardless of cargo's bench CWD.
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
const THREADS: [usize; 3] = [1, 2, 4];

fn workload(n: usize, seed: u64) -> cc_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    Family::Gnp.generate(n, n as u64, &mut rng)
}

fn main() {
    let reps = if fast() { 2 } else { 3 };
    let mut records: Vec<BenchRecord> = Vec::new();

    // Kernel 1: exact APSP (per-source Dijkstra row blocks).
    let n_apsp = if fast() { 192 } else { 512 };
    let g = workload(n_apsp, 7);
    let mut reference: Option<DistMatrix> = None;
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let (wall_ms, out) = time_best_of(reps, || apsp::exact_apsp_with(&g, exec));
        match &reference {
            None => reference = Some(out),
            Some(seq) => assert_eq!(&out, seq, "exact_apsp diverged at {threads} threads"),
        }
        println!("exact_apsp        n={n_apsp:>4} threads={threads}  {wall_ms:>9.2} ms");
        records.push(BenchRecord {
            experiment: "exact_apsp".into(),
            n: n_apsp,
            threads,
            wall_ms,
            rounds: 0,
            extras: Vec::new(),
        });
    }

    // Kernel 2: dense min-plus product (row-blocked O(n³)).
    let n_prod = if fast() { 160 } else { 384 };
    let a = adjacency_matrix(&workload(n_prod, 8));
    let b = adjacency_matrix(&workload(n_prod, 9));
    let mut reference: Option<DistMatrix> = None;
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let (wall_ms, out) = time_best_of(reps, || distance_product_with(&a, &b, exec));
        match &reference {
            None => reference = Some(out),
            Some(seq) => assert_eq!(&out, seq, "distance_product diverged at {threads} threads"),
        }
        println!("distance_product  n={n_prod:>4} threads={threads}  {wall_ms:>9.2} ms");
        records.push(BenchRecord {
            experiment: "distance_product".into(),
            n: n_prod,
            threads,
            wall_ms,
            rounds: 0,
            extras: Vec::new(),
        });
    }

    // Kernel 3: the full Theorem 1.1 pipeline (rounds come from the run).
    let n_pipe = if fast() { 96 } else { 192 };
    let g = workload(n_pipe, 10);
    let mut reference = None;
    for threads in THREADS {
        let cfg = PipelineConfig {
            seed: 3,
            exec: ExecPolicy::with_threads(threads),
            ..Default::default()
        };
        let (wall_ms, result) = time_best_of(reps, || approximate_apsp(&g, &cfg));
        match &reference {
            None => reference = Some((result.estimate.clone(), result.rounds)),
            Some((est, rounds)) => {
                assert_eq!(
                    &result.estimate, est,
                    "pipeline diverged at {threads} threads"
                );
                assert_eq!(result.rounds, *rounds);
            }
        }
        println!(
            "theorem_1_1       n={n_pipe:>4} threads={threads}  {wall_ms:>9.2} ms  rounds={}",
            result.rounds
        );
        records.push(BenchRecord {
            experiment: "theorem_1_1".into(),
            n: n_pipe,
            threads,
            wall_ms,
            rounds: result.rounds,
            extras: Vec::new(),
        });
    }

    write_report(OUT_PATH, &records).expect("write BENCH_kernels.json");
    println!("\nwrote {OUT_PATH} ({} records)", records.len());
}
