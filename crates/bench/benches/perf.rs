//! `perf` — thread-scaling wall-clock benchmark emitting `BENCH_kernels.json`.
//!
//! Times the parallel hot kernels (per-source Dijkstra APSP, dense min-plus
//! product, the full Theorem 1.1 pipeline, and the min-plus **kernel
//! engine** — naive vs tiled vs sparse vs auto-dispatch, plus per-family
//! auto rows on power-law/grid/geometric workloads) at thread counts 1/2/4
//! and writes the records machine-readably (see [`cc_bench::report`]) so the
//! perf trajectory is tracked from this PR onward.
//!
//! ```sh
//! cargo bench -p cc-bench --bench perf            # full sizes
//! FAST=1 cargo bench -p cc-bench --bench perf     # smoke sizes
//! ```
//!
//! Every record is produced from the *same* inputs; the kernels' outputs are
//! cross-checked against the sequential run, so a scheduling bug that broke
//! determinism would fail the bench rather than skew the numbers.

use cc_apsp::pipeline::{approximate_apsp, PipelineConfig};
use cc_bench::experiments::fast;
use cc_bench::report::{time_best_of, write_report, BenchRecord};
use cc_graph::generators::Family;
use cc_graph::{apsp, DistMatrix, INF};
use cc_matrix::dense::{
    adjacency_matrix, distance_product_lanes_with, distance_product_tiled_with,
    distance_product_with,
};
use cc_matrix::engine::{self, KernelChoice, KernelMode, KernelPlan, ULTRA_MAX_ENTRY};
use cc_par::ExecPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Written at the workspace root regardless of cargo's bench CWD.
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
const THREADS: [usize; 3] = [1, 2, 4];

fn workload(n: usize, seed: u64) -> cc_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    Family::Gnp.generate(n, n as u64, &mut rng)
}

fn main() {
    let reps = if fast() { 2 } else { 3 };
    let mut records: Vec<BenchRecord> = Vec::new();

    // Kernel 1: exact APSP (per-source Dijkstra row blocks).
    let n_apsp = if fast() { 192 } else { 512 };
    let g = workload(n_apsp, 7);
    let mut reference: Option<DistMatrix> = None;
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let (wall_ms, out) = time_best_of(reps, || apsp::exact_apsp_with(&g, exec));
        match &reference {
            None => reference = Some(out),
            Some(seq) => assert_eq!(&out, seq, "exact_apsp diverged at {threads} threads"),
        }
        println!("exact_apsp        n={n_apsp:>4} threads={threads}  {wall_ms:>9.2} ms");
        records.push(BenchRecord {
            experiment: "exact_apsp".into(),
            n: n_apsp,
            threads,
            wall_ms,
            rounds: 0,
            extras: Vec::new(),
        });
    }

    // Kernel 2: dense min-plus product (row-blocked O(n³)).
    let n_prod = if fast() { 160 } else { 384 };
    let a = adjacency_matrix(&workload(n_prod, 8));
    let b = adjacency_matrix(&workload(n_prod, 9));
    let mut reference: Option<DistMatrix> = None;
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let (wall_ms, out) = time_best_of(reps, || distance_product_with(&a, &b, exec));
        match &reference {
            None => reference = Some(out),
            Some(seq) => assert_eq!(&out, seq, "distance_product diverged at {threads} threads"),
        }
        println!("distance_product  n={n_prod:>4} threads={threads}  {wall_ms:>9.2} ms");
        records.push(BenchRecord {
            experiment: "distance_product".into(),
            n: n_prod,
            threads,
            wall_ms,
            rounds: 0,
            extras: Vec::new(),
        });
    }

    // Kernel 3: the full Theorem 1.1 pipeline (rounds come from the run).
    let n_pipe = if fast() { 96 } else { 192 };
    let g = workload(n_pipe, 10);
    let mut reference = None;
    for threads in THREADS {
        let cfg = PipelineConfig {
            seed: 3,
            exec: ExecPolicy::with_threads(threads),
            ..Default::default()
        };
        let (wall_ms, result) = time_best_of(reps, || approximate_apsp(&g, &cfg));
        match &reference {
            None => reference = Some((result.estimate.clone(), result.rounds)),
            Some((est, rounds)) => {
                assert_eq!(
                    &result.estimate, est,
                    "pipeline diverged at {threads} threads"
                );
                assert_eq!(result.rounds, *rounds);
            }
        }
        // One traced repetition breaks the wall-clock down per phase (the
        // timed best-of reps above ran untraced); tracing must not change
        // the output, so the traced run is also cross-checked.
        cc_obs::reset();
        cc_obs::enable();
        let traced = approximate_apsp(&g, &cfg);
        cc_obs::disable();
        let span_snapshot = cc_obs::capture();
        assert_eq!(
            traced.estimate,
            reference.as_ref().expect("set above").0,
            "tracing changed the pipeline output at {threads} threads"
        );
        println!(
            "theorem_1_1       n={n_pipe:>4} threads={threads}  {wall_ms:>9.2} ms  rounds={}",
            result.rounds
        );
        records.push(BenchRecord {
            experiment: "theorem_1_1".into(),
            n: n_pipe,
            threads,
            wall_ms,
            rounds: result.rounds,
            extras: cc_bench::report::phase_extras(&span_snapshot),
        });
    }

    // Kernel 4: the min-plus kernel engine at n = 512 — always full size,
    // so BENCH_kernels.json records the tiled-vs-naive comparison the
    // engine exists for. Operands: a fully dense distance matrix (the shape
    // of skeleton/closure products; the engine's auto path dispatches it to
    // the compact tiled kernel) and the sparse adjacency matrix itself
    // (auto dispatches it to the sparse kernel).
    let n_kern = 512;
    let kern_reps = if fast() { 1 } else { 3 };
    let adj = adjacency_matrix(&workload(n_kern, 11));
    let (dense_mat, _) = engine::closure(&adj, KernelMode::Auto, ExecPolicy::from_env());
    let kernel_code = |c: KernelChoice| match c {
        KernelChoice::DenseLanes => 0.0,
        KernelChoice::DenseCompact => 1.0,
        KernelChoice::SparseSharded => 2.0,
        KernelChoice::DenseUltra => 3.0,
    };
    let lane_code = |c: KernelChoice| c.lane_width().map_or(-1.0, |w| w as f64);
    // The same closure matrix with every finite entry clamped to the u16
    // ultra bound — the weight-scaled-instance shape; auto dispatch must
    // send its self-product to the ultra kernel.
    let ultra_mat = {
        let mut m = dense_mat.clone();
        for i in 0..n_kern {
            for j in 0..n_kern {
                let v = m.get(i, j);
                if v < INF {
                    m.set(i, j, v.min(ULTRA_MAX_ENTRY));
                }
            }
        }
        m
    };
    let ultra_choice = KernelPlan::choose(&ultra_mat, &ultra_mat, KernelMode::Auto).choice;
    assert_eq!(
        ultra_choice,
        KernelChoice::DenseUltra,
        "clamped matrix must dispatch to the u16 kernel"
    );
    let auto_choice = KernelPlan::choose(&dense_mat, &dense_mat, KernelMode::Auto).choice;
    let dense_reference = distance_product_with(&dense_mat, &dense_mat, ExecPolicy::Seq);
    let ultra_reference = distance_product_with(&ultra_mat, &ultra_mat, ExecPolicy::Seq);
    let sparse_reference = distance_product_with(&adj, &adj, ExecPolicy::Seq);
    type KernelRun<'a> = (
        &'a str,
        Box<dyn Fn() -> DistMatrix + 'a>,
        &'a DistMatrix,
        f64,
        f64,
    );
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let runs: [KernelRun<'_>; 7] = [
            (
                "minplus_naive",
                Box::new(|| distance_product_with(&dense_mat, &dense_mat, exec)),
                &dense_reference,
                -1.0,
                -1.0,
            ),
            (
                "minplus_tiled",
                Box::new(|| distance_product_tiled_with(&dense_mat, &dense_mat, exec)),
                &dense_reference,
                -1.0,
                -1.0,
            ),
            (
                "minplus_lanes",
                Box::new(|| distance_product_lanes_with(&dense_mat, &dense_mat, exec)),
                &dense_reference,
                0.0,
                lane_code(KernelChoice::DenseLanes),
            ),
            (
                "minplus_auto",
                Box::new(|| engine::min_plus(&dense_mat, &dense_mat, KernelMode::Auto, exec)),
                &dense_reference,
                kernel_code(auto_choice),
                lane_code(auto_choice),
            ),
            (
                "minplus_u16",
                Box::new(|| engine::min_plus(&ultra_mat, &ultra_mat, KernelMode::Auto, exec)),
                &ultra_reference,
                kernel_code(ultra_choice),
                lane_code(ultra_choice),
            ),
            (
                "closure_ktiled",
                Box::new(|| engine::square(&dense_mat, KernelMode::Auto, exec)),
                &dense_reference,
                kernel_code(auto_choice),
                lane_code(auto_choice),
            ),
            (
                "minplus_sparse",
                Box::new(|| engine::min_plus(&adj, &adj, KernelMode::Sparse, exec)),
                &sparse_reference,
                2.0,
                -1.0,
            ),
        ];
        for (name, run, reference, code, lanes) in runs {
            let (wall_ms, out) = time_best_of(kern_reps, &*run);
            assert_eq!(&out, reference, "{name} diverged at {threads} threads");
            println!("{name:<17} n={n_kern:>4} threads={threads}  {wall_ms:>9.2} ms");
            records.push(BenchRecord {
                experiment: name.into(),
                n: n_kern,
                threads,
                wall_ms,
                rounds: 0,
                extras: vec![("kernel_code".into(), code), ("lane_width".into(), lanes)],
            });
        }
    }

    // Kernel 5: engine auto-dispatch across realistic topologies — one
    // adjacency self-product per family (power-law, grid, geometric), with
    // the measured fill and the kernel the plan picked recorded alongside.
    let n_fam = if fast() { 160 } else { 256 };
    for family in [Family::PowerLaw, Family::Grid, Family::Geometric] {
        let mut rng = StdRng::seed_from_u64(n_fam as u64);
        let g = family.generate(n_fam, n_fam as u64, &mut rng);
        let a = adjacency_matrix(&g);
        let reference = distance_product_with(&a, &a, ExecPolicy::Seq);
        let plan = KernelPlan::choose(&a, &a, KernelMode::Auto);
        let exec = ExecPolicy::with_threads(2);
        let (wall_ms, out) = time_best_of(kern_reps, || {
            engine::min_plus(&a, &a, KernelMode::Auto, exec)
        });
        assert_eq!(out, reference, "engine diverged on {}", family.name());
        let name = format!("minplus_auto_{}", family.name());
        println!(
            "{name:<17} n={:>4} threads=2  {wall_ms:>9.2} ms  ({}, fill {:.3})",
            g.n(),
            plan.choice,
            plan.fill_a
        );
        records.push(BenchRecord {
            experiment: name,
            n: g.n(),
            threads: 2,
            wall_ms,
            rounds: 0,
            extras: vec![
                ("kernel_code".into(), kernel_code(plan.choice)),
                ("fill".into(), plan.fill_a),
            ],
        });
    }

    // Kernel 6: the doubling baseline's filtered-squaring recurrence run
    // locally through the engine (k-sparse rows → sparse kernel), the
    // serving-side counterpart of `cc_baselines::doubling` — cross-checked
    // against the dense reference power.
    {
        let g = workload(n_fam, 12);
        let (k, hops) = (16usize, 16usize);
        let reference = cc_matrix::filtered::filtered_power_reference(
            &cc_matrix::filtered::FilteredMatrix::from_graph(&g, k).to_dense(),
            k,
            hops as u64,
        );
        let exec = ExecPolicy::with_threads(2);
        let (wall_ms, out) = time_best_of(kern_reps, || {
            cc_baselines::doubling::doubling_k_nearest_central(&g, k, hops, KernelMode::Auto, exec)
        });
        assert_eq!(out, reference, "central doubling diverged");
        println!(
            "doubling_central  n={:>4} threads=2  {wall_ms:>9.2} ms  (k={k}, {hops} hops)",
            g.n()
        );
        records.push(BenchRecord {
            experiment: "doubling_central".into(),
            n: g.n(),
            threads: 2,
            wall_ms,
            rounds: 0,
            extras: vec![("k".into(), k as f64)],
        });
    }

    write_report(OUT_PATH, &records).expect("write BENCH_kernels.json");
    println!("\nwrote {OUT_PATH} ({} records)", records.len());
}
