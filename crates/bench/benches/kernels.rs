//! Criterion wall-clock benchmarks for the core kernels: the *simulation
//! cost* of each building block (rounds are measured by the `tables` bench;
//! these measure how fast the simulator itself runs them).

use cc_apsp::pipeline::{approximate_apsp, PipelineConfig};
use cc_apsp::{hopset, knearest, skeleton, spanner};
use cc_graph::generators::Family;
use cc_graph::{apsp, sssp, NodeId, Weight};
use cc_matrix::filtered::FilteredMatrix;
use cc_matrix::sparse::{sparse_product, SparseMatrix};
use clique_sim::routing::schedule_route;
use clique_sim::{Bandwidth, Clique};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn workload(n: usize) -> cc_graph::Graph {
    let mut rng = StdRng::seed_from_u64(n as u64);
    Family::Gnp.generate(n, n as u64, &mut rng)
}

fn bench_spanner(c: &mut Criterion) {
    let g = workload(256);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("spanner/baswana_sen_k3_n256", |b| {
        b.iter(|| black_box(spanner::baswana_sen(&g, 3, &mut rng)))
    });
}

fn bench_hopset(c: &mut Criterion) {
    let g = workload(256);
    let delta = apsp::exact_apsp(&g);
    c.bench_function("hopset/build_n256_k16", |b| {
        b.iter(|| {
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            black_box(hopset::build_hopset(&mut clique, &g, &delta, 16))
        })
    });
}

fn bench_knearest(c: &mut Criterion) {
    let g = workload(256);
    c.bench_function("knearest/one_round_n256_k16_h2", |b| {
        let abar = FilteredMatrix::from_graph(&g, 16);
        b.iter(|| {
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            black_box(knearest::one_round(&mut clique, &abar, 2))
        })
    });
}

fn bench_skeleton(c: &mut Criterion) {
    let g = workload(256);
    let k = 16;
    let rows: Vec<Vec<(NodeId, Weight)>> = (0..g.n()).map(|u| sssp::k_nearest(&g, u, k)).collect();
    let tilde = FilteredMatrix::from_rows(g.n(), k, rows);
    c.bench_function("skeleton/build_n256_k16", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut clique = Clique::new(g.n(), Bandwidth::standard(g.n()));
            black_box(skeleton::build_skeleton(&mut clique, &g, &tilde, &mut rng))
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let n = 512;
    let mut rng = StdRng::seed_from_u64(3);
    let mk = |rng: &mut StdRng, per_row: usize| {
        let rows = (0..n)
            .map(|_| {
                (0..per_row)
                    .map(|_| (rng.gen_range(0..n), rng.gen_range(0..1000u64)))
                    .collect()
            })
            .collect();
        SparseMatrix::from_rows(n, rows)
    };
    let s = mk(&mut rng, 22);
    let t = mk(&mut rng, 60);
    c.bench_function("matmul/sparse_512_rho22x60", |b| {
        b.iter(|| black_box(sparse_product(&s, &t, None)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(4);
    let msgs: Vec<(usize, usize, usize)> = (0..n)
        .flat_map(|u| {
            let mut rng = StdRng::seed_from_u64(u as u64);
            (0..2 * n)
                .map(move |_| (u, rng.gen_range(0..n), 1usize))
                .collect::<Vec<_>>()
        })
        .collect();
    let _ = &mut rng;
    c.bench_function("routing/schedule_n128_load2n", |b| {
        b.iter(|| black_box(schedule_route(n, 1, &msgs)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let g = workload(128);
    c.bench_function("pipeline/theorem_1_1_n128", |b| {
        b.iter(|| black_box(approximate_apsp(&g, &PipelineConfig::default())))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_spanner, bench_hopset, bench_knearest, bench_skeleton,
              bench_matmul, bench_routing, bench_pipeline
}
criterion_main!(kernels);
