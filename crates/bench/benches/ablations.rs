//! `cargo bench -p cc-bench --bench ablations` — design-choice ablations
//! (A1–A4), quantifying the alternatives DESIGN.md documents. Set `FAST=1`
//! for a smoke run.

use cc_apsp::ablation;
use cc_apsp::pipeline::{approximate_apsp, PipelineConfig};
use cc_apsp::scaling;
use cc_apsp::skeleton::hitting_set;
use cc_bench::{bench_workload, header, okmark, stretch};
use cc_graph::generators::Family;
use cc_graph::{apsp, sssp, NodeId, Weight};
use cc_matrix::filtered::FilteredMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast() -> bool {
    std::env::var("FAST").is_ok_and(|v| v == "1")
}

/// A1 — hitting set: sampled (Lemma 6.2, O(1) rounds) vs greedy set cover
/// (smaller, but Θ(|S|) rounds).
fn a1_hitting_set() {
    header(
        "A1 · hitting set — sampled (paper) vs greedy set-cover",
        &format!(
            "{:>6} {:>4} {:>10} {:>10} {:>16}",
            "n", "k", "sampled", "greedy", "bound 4n·lnk/k"
        ),
    );
    let n = if fast() { 128 } else { 384 };
    let w = bench_workload(Family::Gnp, n, 42);
    let mut rng = StdRng::seed_from_u64(9);
    for k in [4usize, 8, 16, 32] {
        let rows: Vec<Vec<(NodeId, Weight)>> =
            (0..n).map(|u| sssp::k_nearest(&w.graph, u, k)).collect();
        let tilde = FilteredMatrix::from_rows(n, k, rows);
        let sampled = hitting_set(&tilde, &mut rng).len();
        let greedy = ablation::greedy_hitting_set(&tilde).len();
        let bound = 4.0 * n as f64 * (k as f64).ln().max(1.0) / k as f64;
        println!(
            "{:>6} {:>4} {:>10} {:>10} {:>16.0}",
            n, k, sampled, greedy, bound
        );
    }
}

/// A2 — weight scaling: hub-star substitution vs the paper's clique cap.
fn a2_scaling_variants() {
    header(
        "A2 · weight scaling — hub-star (ours) vs clique-cap (paper literal)",
        &format!(
            "{:>6} {:>8} {:>14} {:>14} {:>12} {:>10}",
            "n", "scales", "star edges/Gi", "cap edges/Gi", "star diam", "both valid"
        ),
    );
    let n = if fast() { 32 } else { 64 };
    let mut rng = StdRng::seed_from_u64(11);
    let g = cc_graph::generators::wide_weight_gnp(n, (10.0 / n as f64).min(0.5), 12, &mut rng);
    let exact = apsp::exact_apsp(&g);
    let h = 4u64;
    let eps = 0.5;
    // h-approximation input.
    let mut delta = exact.clone();
    for u in 0..n {
        for v in 0..n {
            let d = exact.get(u, v);
            if u != v && d < cc_graph::INF {
                delta.set(u, v, d.saturating_mul(1 + ((u + v) as u64) % h));
            }
        }
    }
    delta.symmetrize_min();
    let dmax = cc_apsp::reduction::estimate_diameter(&delta);
    let star = scaling::weight_scaling(&g, dmax, h, eps);
    let cap = ablation::weight_scaling_clique_cap(&g, dmax, h, eps);
    let star_gis: Vec<_> = star.graphs.iter().map(apsp::exact_apsp).collect();
    let cap_gis: Vec<_> = cap.graphs.iter().map(apsp::exact_apsp).collect();
    let eta_star = scaling::combine(&star, &star_gis, &delta);
    let eta_cap = scaling::combine(&cap, &cap_gis, &delta);
    let bound = scaling::combined_bound(1.0, eps);
    let mut both_valid = true;
    for u in 0..n {
        let hh = sssp::bellman_ford_hops(&g, u, h as usize);
        for (v, &hv) in hh.iter().enumerate() {
            let d = exact.get(u, v);
            if u == v || d >= cc_graph::INF {
                continue;
            }
            for eta in [&eta_star, &eta_cap] {
                let e = eta.get(u, v);
                if e < d || (hv == d && (e as f64) > bound * d as f64 + 1e-9) {
                    both_valid = false;
                }
            }
        }
    }
    let star_diam = star
        .graphs
        .iter()
        .map(sssp::weighted_diameter)
        .max()
        .unwrap_or(0);
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>12} {:>10}",
        n,
        star.len(),
        star.graphs[0].m(),
        cap.graphs[0].m(),
        star_diam,
        okmark(both_valid)
    );
    println!(
        "(clique-cap stores {}× more edges per scale; both satisfy Lemma 8.1's guarantees)",
        cap.graphs[0].m() / star.graphs[0].m().max(1)
    );
}

/// A3 — Theorem 1.1's k₀ (bandwidth-reduction skeleton parameter).
fn a3_k0_sensitivity() {
    header(
        "A3 · Theorem 1.1 k₀ sensitivity — skeleton size vs simulation cost",
        &format!(
            "{:>6} {:>5} {:>8} {:>12} {:>10}",
            "n", "k0", "rounds", "max stretch", "valid"
        ),
    );
    let n = if fast() { 96 } else { 256 };
    let w = bench_workload(Family::Gnp, n, 77);
    for k0 in [4usize, 8, 16, (n as f64).sqrt() as usize] {
        let cfg = PipelineConfig {
            seed: 3,
            k0: Some(k0),
            ..Default::default()
        };
        let result = approximate_apsp(&w.graph, &cfg);
        let s = stretch(&w, &result.estimate);
        println!(
            "{:>6} {:>5} {:>8} {:>12.3} {:>10}",
            n,
            k0,
            result.rounds,
            s.max_stretch,
            okmark(s.is_valid_approximation(result.stretch_bound))
        );
    }
}

/// A4 — ε sensitivity: guarantee vs rounds.
fn a4_eps_sensitivity() {
    header(
        "A4 · ε sensitivity — weight-scaling slack vs bound",
        &format!(
            "{:>6} {:>6} {:>8} {:>12} {:>12} {:>10}",
            "n", "ε", "rounds", "bound", "max stretch", "valid"
        ),
    );
    let n = if fast() { 96 } else { 192 };
    let w = bench_workload(Family::WideWeights, n, 88);
    for eps in [0.05f64, 0.1, 0.5, 1.0] {
        let cfg = PipelineConfig {
            seed: 5,
            eps,
            ..Default::default()
        };
        let result = approximate_apsp(&w.graph, &cfg);
        let s = stretch(&w, &result.estimate);
        println!(
            "{:>6} {:>6} {:>8} {:>12.1} {:>12.3} {:>10}",
            n,
            eps,
            result.rounds,
            result.stretch_bound,
            s.max_stretch,
            okmark(s.is_valid_approximation(result.stretch_bound))
        );
    }
}

fn main() {
    println!(
        "== Design-choice ablations (A1–A4) ==  fast mode: {}",
        fast()
    );
    a1_hitting_set();
    a2_scaling_variants();
    a3_k0_sensitivity();
    a4_eps_sensitivity();
}
