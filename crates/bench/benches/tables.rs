//! `cargo bench -p cc-bench --bench tables` — regenerates every experiment
//! table and figure rendering (E1–E15). Set `FAST=1` for a quick smoke run.

fn main() {
    cc_bench::experiments::run_all();
}
