//! `dynamic` — wall-clock benchmark of the dynamic update engine, emitting
//! `BENCH_dynamic.json`.
//!
//! Times, on one servable exact state, the three write-path operations:
//!
//! * `dynamic_repair` — an [`IncrementalOracle`] applying a reweight-heavy
//!   batch by affected-row repair;
//! * `dynamic_rebuild` — the honest from-scratch alternative: per-source
//!   Dijkstra over the whole post-update graph (the cheapest way to rebuild
//!   an exact estimate, i.e. a *conservative* baseline — the engine's real
//!   fallback, pipeline re-entry via min-plus squaring, is far slower and
//!   reported as `dynamic_rebuild_pipeline`);
//! * `dynamic_delta_apply` — replaying the repair's delta (fingerprint
//!   checks included) onto a copy of the base state, the `apply_delta`
//!   serving path.
//!
//! The repair and rebuild estimates are asserted bit-identical before any
//! number is reported, so the speedup can never come from computing
//! something different. The workload is a dense-ish `G(n, p)` (each edge
//! carries few shortest paths, the regime bounded-drift reweights target)
//! at ≤ 5% edge churn.
//!
//! ```sh
//! cargo bench -p cc-bench --bench dynamic            # n = 512
//! FAST=1 cargo bench -p cc-bench --bench dynamic     # smoke size
//! ```

use cc_bench::experiments::fast;
use cc_bench::report::{time_best_of, write_report, BenchRecord};
use cc_dynamic::incremental::{ApplyStrategy, DynamicConfig, IncrementalOracle};
use cc_dynamic::update::{random_batch, MutationProfile};
use cc_graph::{apsp, generators};
use cc_matrix::engine::KernelMode;
use cc_par::ExecPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Written at the workspace root regardless of cargo's bench CWD.
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dynamic.json");
const THREADS: [usize; 2] = [1, 4];

fn main() {
    let reps = if fast() { 2 } else { 3 };
    let n = if fast() { 192 } else { 512 };
    let ops = if fast() { 4 } else { 8 };
    // Dense-ish G(n, p): average degree ≈ 30, so single edges carry few
    // shortest paths and bounded-drift reweights stay local.
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::gnp_connected(n, (30.0 / n as f64).min(1.0), 1..=100, &mut rng);
    let m = g.m();
    let estimate = apsp::exact_apsp(&g);
    let mut batch_rng = StdRng::seed_from_u64(11);
    let batch = random_batch(&g, ops, MutationProfile::ReweightHeavy, &mut batch_rng);
    let churn_pct = 100.0 * batch.len() as f64 / m as f64;
    println!(
        "workload          n={n} m={m} batch={} ops ({churn_pct:.2}% edge churn)",
        batch.len()
    );
    assert!(churn_pct <= 5.0, "bench must stay at ≤ 5% edge churn");

    let mut records: Vec<BenchRecord> = Vec::new();
    for threads in THREADS {
        let exec = ExecPolicy::with_threads(threads);
        let cfg = DynamicConfig {
            exec,
            kernel: KernelMode::Auto,
            ..Default::default()
        };

        // Repair: fresh engine per repetition (apply mutates the state).
        let (repair_ms, outcome) = time_best_of(reps, || {
            let mut engine = IncrementalOracle::new(g.clone(), estimate.clone(), "exact", 7, cfg);
            let outcome = engine.apply(&batch).expect("valid batch");
            (engine, outcome)
        });
        let (engine, outcome) = outcome;
        let affected = match outcome.strategy {
            ApplyStrategy::Repaired { affected } => affected,
            ApplyStrategy::Rebuilt { reason } => {
                panic!("bench batch unexpectedly exceeded the repair threshold: {reason:?}")
            }
        };

        // Rebuild baseline: per-source Dijkstra on the post-update graph.
        let (rebuild_ms, rebuilt) =
            time_best_of(reps, || apsp::exact_apsp_with(engine.graph(), exec));
        assert_eq!(
            engine.estimate(),
            &rebuilt,
            "repair must be bit-identical to the rebuild"
        );

        // Delta replay (the serving-side apply path, fingerprints verified).
        let (delta_ms, replayed) = time_best_of(reps, || {
            outcome.delta.apply(&g, &estimate).expect("delta applies")
        });
        assert_eq!(&replayed.1, engine.estimate());

        let speedup = rebuild_ms / repair_ms.max(1e-9);
        println!(
            "repair            n={n:>4} threads={threads}  {repair_ms:>9.2} ms  \
             affected={affected}  ({speedup:.1}x vs rebuild {rebuild_ms:.2} ms)"
        );
        records.push(BenchRecord {
            experiment: "dynamic_repair".into(),
            n,
            threads,
            wall_ms: repair_ms,
            rounds: 0,
            extras: vec![
                ("affected_rows".into(), affected as f64),
                ("changed_edges".into(), outcome.changed_edges as f64),
                ("churn_pct".into(), churn_pct),
                ("speedup_vs_rebuild".into(), speedup),
            ],
        });
        records.push(BenchRecord {
            experiment: "dynamic_rebuild".into(),
            n,
            threads,
            wall_ms: rebuild_ms,
            rounds: 0,
            extras: Vec::new(),
        });
        records.push(BenchRecord {
            experiment: "dynamic_delta_apply".into(),
            n,
            threads,
            wall_ms: delta_ms,
            rounds: 0,
            extras: vec![("rows".into(), outcome.delta.rows.len() as f64)],
        });
    }

    // The engine's actual fallback (pipeline re-entry through the exact
    // min-plus squaring baseline) at one thread count, for scale.
    let exec = ExecPolicy::with_threads(THREADS[THREADS.len() - 1]);
    let forced = DynamicConfig {
        repair_fraction: 0.0,
        exec,
        kernel: KernelMode::Auto,
    };
    let (pipeline_ms, _) = time_best_of(1, || {
        let mut engine = IncrementalOracle::new(g.clone(), estimate.clone(), "exact", 7, forced);
        engine.apply(&batch).expect("valid batch")
    });
    println!(
        "rebuild_pipeline  n={n:>4} threads={}  {pipeline_ms:>9.2} ms",
        exec.threads()
    );
    records.push(BenchRecord {
        experiment: "dynamic_rebuild_pipeline".into(),
        n,
        threads: exec.threads(),
        wall_ms: pipeline_ms,
        rounds: 0,
        extras: Vec::new(),
    });

    write_report(OUT_PATH, &records).expect("write BENCH_dynamic.json");
    println!("wrote {OUT_PATH}");
}
