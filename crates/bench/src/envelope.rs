//! Perf-regression envelopes: parse `BENCH_*.json` reports and diff fresh
//! rows against checked-in reference bounds.
//!
//! The report files are written by [`crate::report`]'s hand-rolled
//! serializer, so this module only needs to read back that one flat shape —
//! a `cc-apsp-bench/v1` document whose records hold string and number
//! fields. The gate (`tests/envelope_gate.rs` at the workspace root, also
//! run by CI's kernel-matrix job) compares a fresh FAST-mode
//! `BENCH_kernels.json` against `tests/fixtures/kernel_envelopes.json` and
//! fails on any row slower than [`DEFAULT_FACTOR`]× its envelope.
//!
//! Envelopes are deliberately generous: they are regenerated from a real
//! run (`UPDATE_ENVELOPES=1`), carry the `cores_detected` stamp of the
//! machine that produced them, and only `threads == 1` rows are gated so a
//! faster or more parallel runner can never fail the gate — only a genuine
//! slowdown can.

use std::fmt;

/// Gate threshold: a fresh row fails when `wall_ms > factor × envelope`.
/// 2x on top of measured-on-this-box envelopes absorbs CI runner noise
/// while still catching the regressions worth catching (a kernel silently
/// falling back to naive is >2x on every dense row).
pub const DEFAULT_FACTOR: f64 = 2.0;

/// One parsed report row (the fields the gate needs; unknown numeric
/// extras are kept verbatim).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Experiment id, e.g. `"minplus_lanes"`.
    pub experiment: String,
    /// Problem size.
    pub n: usize,
    /// Thread count of the run.
    pub threads: usize,
    /// Wall-clock milliseconds (best-of-reps).
    pub wall_ms: f64,
    /// Every other numeric field, e.g. `kernel_code`, `cores_detected`.
    pub extras: Vec<(String, f64)>,
}

impl ReportRow {
    /// The numeric extra named `key`, if present.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extras.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One gate failure: a fresh row slower than `factor ×` its envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id of the offending row.
    pub experiment: String,
    /// Problem size of the matched pair.
    pub n: usize,
    /// Thread count of the matched pair.
    pub threads: usize,
    /// Fresh measurement (ms).
    pub fresh_ms: f64,
    /// Checked-in envelope (ms).
    pub envelope_ms: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n={} threads={}: {:.2} ms vs envelope {:.2} ms ({:.2}x)",
            self.experiment,
            self.n,
            self.threads,
            self.fresh_ms,
            self.envelope_ms,
            self.fresh_ms / self.envelope_ms.max(f64::MIN_POSITIVE)
        )
    }
}

/// Parses a `cc-apsp-bench/v1` document into its rows.
///
/// Rejects other schemas and malformed documents with a message naming the
/// byte offset, so a truncated or hand-mangled fixture fails loudly rather
/// than gating nothing.
pub fn parse_report(doc: &str) -> Result<Vec<ReportRow>, String> {
    let mut s = Scanner::new(doc);
    s.skip_ws();
    s.expect(b'{')?;
    let mut schema_ok = false;
    let mut rows: Option<Vec<ReportRow>> = None;
    loop {
        s.skip_ws();
        let key = s.parse_string()?;
        s.skip_ws();
        s.expect(b':')?;
        s.skip_ws();
        match key.as_str() {
            "schema" => {
                let v = s.parse_string()?;
                if v != "cc-apsp-bench/v1" {
                    return Err(format!("unsupported schema {v:?}"));
                }
                schema_ok = true;
            }
            "records" => rows = Some(parse_records(&mut s)?),
            other => return Err(format!("unexpected top-level key {other:?}")),
        }
        s.skip_ws();
        if !s.eat(b',') {
            break;
        }
    }
    s.expect(b'}')?;
    if !schema_ok {
        return Err("missing schema field".into());
    }
    rows.ok_or_else(|| "missing records field".into())
}

fn parse_records(s: &mut Scanner) -> Result<Vec<ReportRow>, String> {
    s.expect(b'[')?;
    let mut rows = Vec::new();
    s.skip_ws();
    if s.eat(b']') {
        return Ok(rows);
    }
    loop {
        s.skip_ws();
        rows.push(parse_row(s)?);
        s.skip_ws();
        if !s.eat(b',') {
            break;
        }
    }
    s.expect(b']')?;
    Ok(rows)
}

fn parse_row(s: &mut Scanner) -> Result<ReportRow, String> {
    s.expect(b'{')?;
    let mut experiment = None;
    let (mut n, mut threads, mut wall_ms) = (None, None, None);
    let mut extras = Vec::new();
    loop {
        s.skip_ws();
        let key = s.parse_string()?;
        s.skip_ws();
        s.expect(b':')?;
        s.skip_ws();
        match key.as_str() {
            "experiment" => experiment = Some(s.parse_string()?),
            "n" => n = Some(s.parse_number()? as usize),
            "threads" => threads = Some(s.parse_number()? as usize),
            "wall_ms" => wall_ms = Some(s.parse_number()?),
            _ => extras.push((key, s.parse_number()?)),
        }
        s.skip_ws();
        if !s.eat(b',') {
            break;
        }
    }
    s.expect(b'}')?;
    Ok(ReportRow {
        experiment: experiment.ok_or("record missing experiment")?,
        n: n.ok_or("record missing n")?,
        threads: threads.ok_or("record missing threads")?,
        wall_ms: wall_ms.ok_or("record missing wall_ms")?,
        extras,
    })
}

/// Diffs `fresh` rows against `envelopes`, gating only `threads == 1`
/// envelope rows (multi-thread timings on an unknown runner are not
/// upper-boundable). A fresh row regresses when
/// `fresh.wall_ms > factor × envelope.wall_ms` for the matching
/// `(experiment, n, threads)`.
///
/// An envelope row with no matching fresh row is also reported (as a
/// regression with `fresh_ms = +∞`): a silently dropped bench row must not
/// silently drop its gate.
pub fn check_against_envelopes(
    fresh: &[ReportRow],
    envelopes: &[ReportRow],
    factor: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for env in envelopes.iter().filter(|e| e.threads == 1) {
        let matched = fresh
            .iter()
            .find(|f| f.experiment == env.experiment && f.n == env.n && f.threads == env.threads);
        let fresh_ms = matched.map_or(f64::INFINITY, |f| f.wall_ms);
        if fresh_ms > factor * env.wall_ms {
            out.push(Regression {
                experiment: env.experiment.clone(),
                n: env.n,
                threads: env.threads,
                fresh_ms,
                envelope_ms: env.wall_ms,
            });
        }
    }
    out
}

/// Validates that `doc` is one well-formed JSON value (any shape — objects,
/// arrays, strings, numbers, booleans, null) with nothing trailing.
///
/// This is the same byte [`Scanner`] the report parser runs on, opened up
/// to generic JSON so the trace files `ccapsp --trace` writes (the
/// `cc-obs/v1` span dump and the Chrome-trace event file) can be smoke-
/// checked by CI without a serde dependency. Errors name the byte offset.
pub fn validate_json(doc: &str) -> Result<(), String> {
    let mut s = Scanner::new(doc);
    s.skip_ws();
    s.parse_value()?;
    s.skip_ws();
    if s.i < s.s.len() {
        return Err(format!("trailing content at byte {}", s.i));
    }
    Ok(())
}

/// Byte-level scanner over the report document.
struct Scanner<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(doc: &'a str) -> Self {
        Self {
            s: doc.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.i < self.s.len() && self.s[self.i] == b {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                b as char,
                self.i,
                self.s.get(self.i).map(|&c| c as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| format!("dangling escape at byte {}", self.i))?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            char::from_u32(code).ok_or("invalid \\u escape")?
                        }
                        other => return Err(format!("unknown escape {:?}", other as char)),
                    });
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 is copied through byte-wise; the
                    // input is a &str so the bytes are valid.
                    let start = self.i;
                    while self.i < self.s.len() && !matches!(self.s[self.i], b'"' | b'\\') {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
        Err("unterminated string".into())
    }

    /// Recursive-descent over one generic JSON value (for
    /// [`validate_json`]; the report parser keeps its schema-directed
    /// entry points).
    fn parse_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.s.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.parse_value()?;
                    self.skip_ws();
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b'}')
            }
            Some(b'[') => {
                self.i += 1;
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.parse_value()?;
                    self.skip_ws();
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b']')
            }
            Some(b'"') => self.parse_string().map(|_| ()),
            Some(b't') => self.parse_literal("true"),
            Some(b'f') => self.parse_literal("false"),
            Some(b'n') => self.parse_literal("null"),
            Some(_) => self.parse_number().map(|_| ()),
            None => Err(format!("expected a value at byte {}", self.i)),
        }
    }

    fn parse_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.i))
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|_| format!("expected number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{render_report, BenchRecord};

    fn record(experiment: &str, threads: usize, wall_ms: f64) -> BenchRecord {
        BenchRecord {
            experiment: experiment.into(),
            n: 512,
            threads,
            wall_ms,
            rounds: 0,
            extras: vec![("kernel_code".into(), 0.0)],
        }
    }

    #[test]
    fn parse_round_trips_the_report_serializer() {
        let records = vec![
            record("minplus_lanes", 1, 12.5),
            record("minplus_u16", 2, 8.25),
        ];
        let rows = parse_report(&render_report(&records)).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].experiment, "minplus_lanes");
        assert_eq!(rows[0].n, 512);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[0].wall_ms, 12.5);
        assert_eq!(rows[0].extra("kernel_code"), Some(0.0));
        // The serializer stamps cores_detected; the parser keeps it.
        assert!(rows[0].extra("cores_detected").is_some());
        assert_eq!(rows[1].threads, 2);
    }

    #[test]
    fn parse_handles_escaped_strings() {
        let records = vec![record("quo\"te\\slash", 1, 1.0)];
        let rows = parse_report(&render_report(&records)).unwrap();
        assert_eq!(rows[0].experiment, "quo\"te\\slash");
    }

    #[test]
    fn parse_rejects_other_schemas_and_garbage() {
        assert!(parse_report("{\"schema\": \"other/v9\", \"records\": []}").is_err());
        assert!(parse_report("{\"records\": []}").is_err());
        assert!(parse_report("{\"schema\": \"cc-apsp-bench/v1\"}").is_err());
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{\"schema\": \"cc-apsp-bench/v1\", \"records\": [").is_err());
    }

    #[test]
    fn gate_passes_within_factor_and_fails_beyond() {
        let envelopes = [report_row("minplus_lanes", 1, 10.0)];
        let ok = [report_row("minplus_lanes", 1, 19.9)];
        assert!(check_against_envelopes(&ok, &envelopes, 2.0).is_empty());
        let slow = [report_row("minplus_lanes", 1, 20.1)];
        let regs = check_against_envelopes(&slow, &envelopes, 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].experiment, "minplus_lanes");
        assert!(regs[0].to_string().contains("2.01x"));
    }

    #[test]
    fn gate_ignores_multithread_envelope_rows() {
        let envelopes = [report_row("minplus_lanes", 4, 10.0)];
        let slow = [report_row("minplus_lanes", 4, 1000.0)];
        assert!(check_against_envelopes(&slow, &envelopes, 2.0).is_empty());
    }

    #[test]
    fn gate_reports_missing_fresh_rows() {
        let envelopes = [report_row("minplus_lanes", 1, 10.0)];
        let regs = check_against_envelopes(&[], &envelopes, 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].fresh_ms, f64::INFINITY);
    }

    #[test]
    fn validate_json_accepts_generic_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"str\\u0041\"",
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0.5,\"dur\":1,\"pid\":1,\"tid\":0}]}",
            "{\"spans\":[{\"children\":[],\"attrs\":{\"rounds\":3}}],\"counters\":{}}",
            "  [1, [2, {\"a\": null}], false]  ",
        ] {
            assert!(validate_json(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn validate_json_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "{} {}",
            "truth",
            "\"unterminated",
            "[1] trailing",
        ] {
            assert!(validate_json(doc).is_err(), "{doc}");
        }
    }

    fn report_row(experiment: &str, threads: usize, wall_ms: f64) -> ReportRow {
        ReportRow {
            experiment: experiment.into(),
            n: 512,
            threads,
            wall_ms,
            extras: Vec::new(),
        }
    }
}
