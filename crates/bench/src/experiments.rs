//! The per-claim experiments (E1–E15). See DESIGN.md §4 for the index and
//! EXPERIMENTS.md for archived output with commentary.

use cc_apsp::params::{self, hopset_beta_bound};
use cc_apsp::pipeline::{approximate_apsp, apsp_large_bandwidth, apsp_tradeoff, PipelineConfig};
use cc_apsp::smalldiam::{small_diameter_apsp, SmallDiamConfig};
use cc_apsp::spanner::{baswana_sen, measure_spanner_stretch};
use cc_apsp::zeroweight::apsp_with_zero_weights;
use cc_apsp::{hopset, knearest, reduction, scaling, skeleton};
use cc_baselines::{doubling, exact as exact_baseline, spanner_only};
use cc_graph::generators::{self, Family};
use cc_graph::graph::Graph;
use cc_graph::{apsp, log2_ceil, sssp, DistMatrix, NodeId, Weight, INF};
use cc_matrix::sparse::cdkl_rounds;
use clique_sim::routing::schedule_route;
use clique_sim::{Bandwidth, Clique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{bench_workload, header, okmark, stretch};

/// Scales every experiment down for smoke runs (`FAST=1 cargo bench`).
pub fn fast() -> bool {
    std::env::var("FAST").is_ok_and(|v| v == "1")
}

/// E1 — Theorem 1.1: `(7⁴+ε)`-approximate APSP, round counts ~flat in n.
pub fn e01_theorem_1_1() {
    header(
        "E1 · Theorem 1.1 — (7⁴+ε)-approximation in O(log log log n) rounds",
        &format!(
            "{:>6} {:>6} {:>8} {:>12} {:>12} {:>12} {:>10}",
            "n", "family", "rounds", "max stretch", "mean", "bound", "valid"
        ),
    );
    let sizes: &[usize] = if fast() {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    for &n in sizes {
        for family in [Family::Gnp, Family::Geometric, Family::PowerLaw] {
            let w = bench_workload(family, n, 100 + n as u64);
            let result = approximate_apsp(
                &w.graph,
                &PipelineConfig {
                    seed: 1,
                    ..Default::default()
                },
            );
            let s = stretch(&w, &result.estimate);
            println!(
                "{:>6} {:>6} {:>8} {:>12.3} {:>12.3} {:>12.1} {:>10}",
                n,
                w.family,
                result.rounds,
                s.max_stretch,
                s.mean_stretch,
                result.stretch_bound,
                okmark(s.is_valid_approximation(result.stretch_bound))
            );
        }
    }
    if !fast() {
        let w = bench_workload(Family::Gnp, 1024, 1124);
        let result = approximate_apsp(
            &w.graph,
            &PipelineConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let s = stretch(&w, &result.estimate);
        println!(
            "{:>6} {:>6} {:>8} {:>12.3} {:>12.3} {:>12.1} {:>10}",
            1024,
            w.family,
            result.rounds,
            s.max_stretch,
            s.mean_stretch,
            result.stretch_bound,
            okmark(s.is_valid_approximation(result.stretch_bound))
        );
    }
}

/// E2 — Theorem 1.2: the round/approximation tradeoff.
pub fn e02_tradeoff() {
    header(
        "E2 · Theorem 1.2 — O(t) rounds for O(log^(2^-t) n) approximation",
        &format!(
            "{:>3} {:>16} {:>14} {:>12} {:>8}",
            "t", "paper bound", "run guarantee", "max stretch", "rounds"
        ),
    );
    let n = if fast() { 96 } else { 256 };
    let w = bench_workload(Family::Gnp, n, 202);
    for t in 0..=4usize {
        let result = apsp_tradeoff(
            &w.graph,
            t,
            &PipelineConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let s = stretch(&w, &result.estimate);
        println!(
            "{:>3} {:>16.2} {:>14.1} {:>12.3} {:>8}  {}",
            t,
            params::tradeoff_bound(n, t),
            result.stretch_bound,
            s.max_stretch,
            result.rounds,
            okmark(s.is_valid_approximation(result.stretch_bound))
        );
    }
}

/// E3 — Theorem 7.1: small-weighted-diameter graphs; 21 (standard) vs 7
/// (`CC[log³n]`).
pub fn e03_small_diameter() {
    header(
        "E3 · Theorem 7.1 — small weighted diameter: 21-approx (std) / 7-approx (CC[log³n])",
        &format!(
            "{:>6} {:>10} {:>8} {:>12} {:>8} {:>8}",
            "n", "model", "rounds", "max stretch", "bound", "valid"
        ),
    );
    let sizes: &[usize] = if fast() { &[96] } else { &[128, 256] };
    for &n in sizes {
        // Small weights keep the weighted diameter polylog-flavored.
        let mut rng = StdRng::seed_from_u64(300 + n as u64);
        let g = generators::gnp_connected(n, (8.0 / n as f64).min(0.5), 1..=8, &mut rng);
        let exact = apsp::exact_apsp(&g);
        for wide in [false, true] {
            let bw = if wide {
                Bandwidth::polylog(3, n)
            } else {
                Bandwidth::standard(n)
            };
            let mut clique = Clique::new(n, bw);
            let cfg = SmallDiamConfig {
                wide_bandwidth: wide,
                ..Default::default()
            };
            let mut arng = StdRng::seed_from_u64(7);
            let (est, bound) = small_diameter_apsp(&mut clique, &g, &cfg, &mut arng);
            let s = est.stretch_vs(&exact);
            println!(
                "{:>6} {:>10} {:>8} {:>12.3} {:>8.0} {:>8}",
                n,
                if wide { "log³n" } else { "standard" },
                clique.rounds(),
                s.max_stretch,
                bound,
                okmark(s.is_valid_approximation(bound))
            );
        }
    }
}

/// A degraded a-approximation for hopset experiments: exact distances with
/// deterministic multiplicative noise in `[1, a]`.
fn degraded(exact: &DistMatrix, a: u64) -> DistMatrix {
    let n = exact.n();
    let mut m = exact.clone();
    for u in 0..n {
        for v in 0..n {
            let d = exact.get(u, v);
            if u != v && d < INF {
                m.set(u, v, d * (1 + (u * 31 + v * 17) as u64 % a.max(1)));
            }
        }
    }
    m.symmetrize_min();
    m
}

/// E4 — Lemma 3.2: hopset hop bound β vs `O(a·log d)`.
pub fn e04_hopset() {
    header(
        "E4 · Lemma 3.2 — √n-nearest β-hopsets from an a-approximation",
        &format!(
            "{:>6} {:>6} {:>4} {:>8} {:>10} {:>12} {:>10} {:>10}",
            "n",
            "family",
            "a",
            "diam d",
            "β measured",
            "bound 2(⌈a·ln d⌉+1)+1",
            "preserved",
            "rounds"
        ),
    );
    let n = if fast() { 64 } else { 144 };
    for family in [Family::Gnp, Family::PathChords] {
        let w = bench_workload(family, n, 400 + n as u64);
        let d = reduction::estimate_diameter(&w.exact);
        for a in [1u64, 2, 4, 8] {
            let delta = degraded(&w.exact, a);
            let k = (n as f64).sqrt() as usize;
            let mut clique = Clique::new(n, Bandwidth::standard(n));
            let hs = hopset::build_hopset(&mut clique, &w.graph, &delta, k);
            let (beta, preserved) = hopset::measure_hop_bound(&w.graph, &hs, k);
            let bound = hopset_beta_bound(a as f64, d);
            println!(
                "{:>6} {:>6} {:>4} {:>8} {:>10} {:>21} {:>10} {:>10}",
                n,
                w.family,
                a,
                d,
                beta,
                format!("{bound} {}", okmark(beta <= bound)),
                preserved,
                clique.rounds()
            );
        }
    }
}

/// E5 — Lemmas 5.1/5.2/3.3: k-nearest rounds, vs the doubling baseline.
pub fn e05_knearest() {
    header(
        "E5 · Lemmas 5.1/5.2 — k-nearest: i iterations at hop-radius h vs doubling (h=2)",
        &format!(
            "{:>6} {:>4} {:>3} {:>8} {:>12} {:>12} {:>14} {:>16} {:>8}",
            "n",
            "k",
            "h",
            "hops h^i",
            "iters(paper)",
            "iters(2x)",
            "rounds (paper)",
            "rounds (doubling)",
            "exact"
        ),
    );
    let n = if fast() { 128 } else { 256 };
    let w = bench_workload(Family::Gnp, n, 500);
    for (k, h, i) in [
        (4usize, 2usize, 2usize),
        (8, 2, 3),
        (6, 3, 2),
        (4, 4, 1),
        (4, 3, 2),
    ] {
        let mut c1 = Clique::new(n, Bandwidth::standard(n));
        let rows = knearest::k_nearest_exact(&mut c1, &w.graph, k, h, i);
        let hops = h.pow(i as u32);
        let mut c2 = Clique::new(n, Bandwidth::standard(n));
        let base = doubling::doubling_k_nearest(&mut c2, &w.graph, k, hops);
        // Exactness: if h^i ≥ k, rows are exact k-nearest sets.
        let exact_ok = if hops >= k {
            (0..n).all(|u| rows.row(u) == &sssp::k_nearest(&w.graph, u, k)[..])
        } else {
            rows == base
        };
        println!(
            "{:>6} {:>4} {:>3} {:>8} {:>12} {:>12} {:>14} {:>16} {:>8}",
            n,
            k,
            h,
            hops,
            i,
            doubling::doubling_iterations(hops),
            c1.rounds(),
            c2.rounds(),
            okmark(exact_ok)
        );
    }
}

/// E6 — Lemmas 3.4/6.1: skeleton size and extension stretch.
pub fn e06_skeleton() {
    header(
        "E6 · Lemmas 3.4/6.1 — skeleton graphs: |V_S| ≤ O(n·ln k/k), extension ≤ 7·l·a²",
        &format!(
            "{:>6} {:>4} {:>6} {:>14} {:>6} {:>12} {:>10}",
            "n", "k", "|V_S|", "bound 4n·lnk/k", "l", "max stretch", "≤7l?"
        ),
    );
    let n = if fast() { 128 } else { 400 };
    let w = bench_workload(Family::Gnp, n, 600);
    let mut rng = StdRng::seed_from_u64(66);
    for k in [4usize, 8, 16, 32] {
        let rows: Vec<Vec<(NodeId, Weight)>> =
            (0..n).map(|u| sssp::k_nearest(&w.graph, u, k)).collect();
        let tilde = cc_matrix::filtered::FilteredMatrix::from_rows(n, k, rows);
        let mut clique = Clique::new(n, Bandwidth::standard(n));
        let sk = skeleton::build_skeleton(&mut clique, &w.graph, &tilde, &mut rng);
        let delta_gs = apsp::exact_apsp(&sk.graph);
        let eta = skeleton::extend_estimate(&mut clique, &sk, &tilde, &delta_gs);
        let s = stretch(&w, &eta);
        let size_bound = 4.0 * n as f64 * (k as f64).ln().max(1.0) / k as f64;
        println!(
            "{:>6} {:>4} {:>6} {:>14.0} {:>6} {:>12.3} {:>10}",
            n,
            k,
            sk.size(),
            size_bound,
            1,
            s.max_stretch,
            okmark(s.is_valid_approximation(7.0) && (sk.size() as f64) < size_bound)
        );
    }
}

/// E7 — Lemma 7.1 / Corollary 7.2: spanner stretch and size.
pub fn e07_spanner() {
    header(
        "E7 · Lemma 7.1 — (2k−1)-spanners (Baswana–Sen standing in for CZ22)",
        &format!(
            "{:>6} {:>3} {:>8} {:>12} {:>8} {:>16}",
            "n", "k", "stretch", "bound 2k−1", "edges", "bound 4k·n^(1+1/k)"
        ),
    );
    let n = if fast() { 96 } else { 192 };
    let mut rng = StdRng::seed_from_u64(700);
    let g = generators::complete_graph(n, 1..=100, &mut rng);
    for k in [2usize, 3, 4, 5] {
        let s = baswana_sen(&g, k, &mut rng);
        let measured = measure_spanner_stretch(&g, &s);
        let size_bound = 4.0 * k as f64 * (n as f64).powf(1.0 + 1.0 / k as f64) + n as f64;
        println!(
            "{:>6} {:>3} {:>8.3} {:>12} {:>8} {:>16.0}  {}",
            n,
            k,
            measured,
            2 * k - 1,
            s.m(),
            size_bound,
            okmark(measured <= (2 * k - 1) as f64 && (s.m() as f64) < size_bound)
        );
    }
}

/// E8 — Lemma 8.1: weight scaling.
pub fn e08_scaling() {
    header(
        "E8 · Lemma 8.1 — weight scaling: O(log n) graphs of diameter ≤ 2⌈2/ε⌉h²",
        &format!(
            "{:>6} {:>5} {:>3} {:>8} {:>10} {:>16} {:>14}",
            "n", "ε", "h", "#graphs", "max diam", "bound 2⌈2/ε⌉h²", "η ok (h-hop)"
        ),
    );
    let n = if fast() { 48 } else { 80 };
    let mut rng = StdRng::seed_from_u64(800);
    let g = generators::wide_weight_gnp(n, (10.0 / n as f64).min(0.5), 16, &mut rng);
    let exact = apsp::exact_apsp(&g);
    for eps in [0.25f64, 0.5, 1.0] {
        let h = 4u64;
        // h-approximation input: exact scaled by alternating factors ≤ h.
        let delta = degraded(&exact, h);
        let dmax = reduction::estimate_diameter(&delta);
        let scaled = scaling::weight_scaling(&g, dmax, h, eps);
        let gis: Vec<DistMatrix> = scaled.graphs.iter().map(apsp::exact_apsp).collect();
        let eta = scaling::combine(&scaled, &gis, &delta);
        let bound = scaling::combined_bound(1.0, eps);
        let max_diam = scaled
            .graphs
            .iter()
            .map(sssp::weighted_diameter)
            .max()
            .unwrap_or(0);
        // Validate η on all pairs (≥ d) and the (1+ε) bound on ≤h-hop pairs.
        let mut ok = true;
        for u in 0..n {
            let hh = sssp::bellman_ford_hops(&g, u, h as usize);
            for (v, &hv) in hh.iter().enumerate() {
                let d = exact.get(u, v);
                if u == v || d >= INF {
                    continue;
                }
                let e = eta.get(u, v);
                if e < d {
                    ok = false;
                }
                if hv == d && (e as f64) > bound * d as f64 + 1e-9 {
                    ok = false;
                }
            }
        }
        println!(
            "{:>6} {:>5} {:>3} {:>8} {:>10} {:>16} {:>14}",
            n,
            eps,
            h,
            scaled.len(),
            max_diam,
            scaled.diameter_bound(),
            okmark(ok && max_diam <= scaled.diameter_bound())
        );
    }
}

/// Shortest path with parent tracking over `G ∪ H`, minimizing
/// `(length, hops)`; used to render Figure 1.
fn lex_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.n();
    let mut best = vec![(INF, usize::MAX); n];
    let mut parent = vec![usize::MAX; n];
    best[src] = (0, 0);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, 0usize, src)));
    while let Some(Reverse((d, h, u))) = heap.pop() {
        if (d, h) > best[u] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            let nh = h + 1;
            if (nd, nh) < best[v] {
                best[v] = (nd, nh);
                parent[v] = u;
                heap.push(Reverse((nd, nh, v)));
            }
        }
    }
    if best[dst].0 >= INF {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// E9 — Figure 1: the hop chain `t_0 → t_1 → …` a hopset creates on a path
/// graph.
pub fn e09_figure1() {
    header(
        "E9 · Figure 1 — hopset hop-chain on a path graph (t_i selection realized)",
        "rendering the minimum-hop exact-length path in G ∪ H",
    );
    let n = if fast() { 48 } else { 96 };
    let mut rng = StdRng::seed_from_u64(900);
    let g = generators::path_with_chords(n, 0, 1..=1, &mut rng);
    let exact = apsp::exact_apsp(&g);
    let delta = degraded(&exact, 3);
    // A larger k than √n makes the chain long enough to see the t_i
    // structure (the hopset construction itself is k-agnostic).
    let k = n / 4;
    let mut clique = Clique::new(n, Bandwidth::standard(n));
    let hs = hopset::build_hopset(&mut clique, &g, &delta, k);
    let v = 0usize;
    // Farthest of v's k-nearest.
    let nearest = sssp::k_nearest(&g, v, k);
    let &(u, d) = nearest.last().expect("nonempty");
    let path = lex_path(&hs.combined, v, u).expect("reachable");
    println!("v = {v}, u = {u} (farthest √n-nearest), d(v,u) = {d}");
    print!("chain in G ∪ H ({} hops): ", path.len() - 1);
    for (i, node) in path.iter().enumerate() {
        if i > 0 {
            let prev = path[i - 1];
            let kind = if g.edge_weight(prev, *node).is_some() {
                "→"
            } else {
                "⇢"
            }; // ⇢ = hopset edge
            print!(" {kind} ");
        }
        print!("{node}");
    }
    println!();
    println!(
        "(⇢ marks hopset shortcut edges; in G alone the path needs {} hops)",
        d
    );
    println!(
        "hop bound check: {} hops ≤ bound {}",
        path.len() - 1,
        hopset_beta_bound(3.0, reduction::estimate_diameter(&exact))
    );
}

/// E10 — Figure 2: the skeleton decomposition `u_i / t_i / s_i` of a
/// shortest path.
pub fn e10_figure2() {
    header(
        "E10 · Figure 2 — skeleton decomposition of a shortest path (u_i, t_i, s_i)",
        "red nodes of the paper's figure = skeleton centers",
    );
    let n = if fast() { 64 } else { 120 };
    let w = bench_workload(Family::Gnp, n, 1000);
    let k = 8usize;
    let rows: Vec<Vec<(NodeId, Weight)>> =
        (0..n).map(|u| sssp::k_nearest(&w.graph, u, k)).collect();
    let tilde = cc_matrix::filtered::FilteredMatrix::from_rows(n, k, rows);
    let mut rng = StdRng::seed_from_u64(10);
    let mut clique = Clique::new(n, Bandwidth::standard(n));
    let sk = skeleton::build_skeleton(&mut clique, &w.graph, &tilde, &mut rng);
    // Pick the farthest connected pair and decompose its shortest path.
    let (mut bu, mut bv, mut bd) = (0, 0, 0);
    for u in 0..n {
        for v in 0..n {
            let d = w.exact.get(u, v);
            if d < INF && d > bd {
                (bu, bv, bd) = (u, v, d);
            }
        }
    }
    let path = lex_path(&w.graph, bu, bv).expect("connected");
    println!(
        "decomposing shortest path {bu} → {bv} (length {bd}, {} hops)",
        path.len() - 1
    );
    // The Section 6.3 decomposition: u_0 = u; t_i = rightmost path node in
    // Ñ_k(u_i); u_{i+1} = successor of t_i.
    let in_tilde = |a: NodeId, b: NodeId| tilde.row(a).iter().any(|&(x, _)| x == b);
    let mut i = 0usize;
    let mut pos = 0usize; // index of u_i on path
    loop {
        let u_i = path[pos];
        let mut t_pos = pos;
        for (j, &node) in path.iter().enumerate().skip(pos) {
            if in_tilde(u_i, node) {
                t_pos = j;
            }
        }
        let t_i = path[t_pos];
        let s_i = sk.assignment[u_i];
        println!(
            "  segment {i}: u_{i} = {u_i:<4} t_{i} = {t_i:<4} s_{i} = c(u_{i}) = {s_i:<4} (δ(u,c) = {})",
            sk.delta_to_center[u_i]
        );
        if t_pos + 1 >= path.len() {
            break;
        }
        pos = t_pos + 1;
        i += 1;
        if i > path.len() {
            break; // safety
        }
    }
    println!("  s* = c({bv}) = {}", sk.assignment[bv]);
    println!("segments p+1 = {}; skeleton |V_S| = {}", i + 1, sk.size());
}

/// E11 — the Section 1.1 landscape: who wins at one n.
pub fn e11_landscape() {
    header(
        "E11 · §1.1 landscape — rounds vs guarantee, all algorithms, same workload",
        &format!(
            "{:>26} {:>8} {:>14} {:>12} {:>8}",
            "algorithm", "rounds", "guarantee", "max stretch", "valid"
        ),
    );
    let n = if fast() { 96 } else { 256 };
    let w = bench_workload(Family::Gnp, n, 1100);

    let mut c = Clique::new(n, Bandwidth::standard(n));
    let est = exact_baseline::exact_apsp_squaring(&mut c, &w.graph);
    let s = stretch(&w, &est);
    println!(
        "{:>26} {:>8} {:>14} {:>12.3} {:>8}",
        "exact (CKK+19 squaring)",
        c.rounds(),
        "1 (exact)",
        s.max_stretch,
        okmark(s.is_valid_approximation(1.0))
    );

    let mut c = Clique::new(n, Bandwidth::standard(n));
    let mut rng = StdRng::seed_from_u64(4);
    let (est, bound) = spanner_only::spanner_only_apsp(&mut c, &w.graph, &mut rng);
    let s = stretch(&w, &est);
    println!(
        "{:>26} {:>8} {:>14} {:>12.3} {:>8}",
        "spanner-only (CZ22)",
        c.rounds(),
        format!("{bound:.0} (O(log n))"),
        s.max_stretch,
        okmark(s.is_valid_approximation(bound))
    );

    let mut c = Clique::new(n, Bandwidth::standard(n));
    let mut rng = StdRng::seed_from_u64(4);
    let (est, bound) = cc_apsp::smalldiam::apsp_o_loglog(&mut c, &w.graph, false, &mut rng);
    let s = stretch(&w, &est);
    println!(
        "{:>26} {:>8} {:>14} {:>12.3} {:>8}",
        "this paper (§3.2 loglog)",
        c.rounds(),
        format!("{bound:.0} (O(1))"),
        s.max_stretch,
        okmark(s.is_valid_approximation(bound))
    );

    let result = approximate_apsp(
        &w.graph,
        &PipelineConfig {
            seed: 4,
            ..Default::default()
        },
    );
    let s = stretch(&w, &result.estimate);
    println!(
        "{:>26} {:>8} {:>14} {:>12.3} {:>8}",
        "this paper (Thm 1.1)",
        result.rounds,
        format!("{:.0} (O(1))", result.stretch_bound),
        s.max_stretch,
        okmark(s.is_valid_approximation(result.stretch_bound))
    );

    let mut c = Clique::new(n, Bandwidth::polylog(4, n));
    let mut rng = StdRng::seed_from_u64(4);
    let (est, bound) = apsp_large_bandwidth(
        &mut c,
        &w.graph,
        &PipelineConfig {
            seed: 4,
            ..Default::default()
        },
        &mut rng,
    );
    let s = stretch(&w, &est);
    println!(
        "{:>26} {:>8} {:>14} {:>12.3} {:>8}",
        "this paper (Thm 8.1, B=log⁴)",
        c.rounds(),
        format!("{bound:.0} (O(1))"),
        s.max_stretch,
        okmark(s.is_valid_approximation(bound))
    );
}

/// E12 — Theorem 2.1: zero-weight handling overhead.
pub fn e12_zeroweight() {
    header(
        "E12 · Theorem 2.1 — zero weights: +O(1) rounds, exactness preserved",
        &format!(
            "{:>6} {:>9} {:>14} {:>14} {:>8}",
            "n", "clusters", "overhead (rounds)", "inner rounds", "exact"
        ),
    );
    for (clusters, size) in [(8usize, 4usize), (16, 4), (24, 6)] {
        let n = clusters * size;
        let mut rng = StdRng::seed_from_u64(1200 + n as u64);
        let mut b = cc_graph::GraphBuilder::undirected(n);
        for c in 0..clusters {
            for i in 1..size {
                b.add_edge(c * size, c * size + i, 0);
            }
            let next = (c + 1) % clusters;
            b.add_edge(c * size, next * size, rng.gen_range(1..30));
        }
        let g = b.build();
        let mut clique = Clique::new(n, Bandwidth::standard(n));
        let mut inner_rounds = 0;
        let (est, _) = apsp_with_zero_weights(&mut clique, &g, |c, compressed| {
            let out = (apsp::exact_apsp(compressed), 1.0);
            inner_rounds = c.rounds();
            out
        });
        let overhead = clique.rounds() - inner_rounds;
        let exact = apsp::exact_apsp(&g);
        println!(
            "{:>6} {:>9} {:>14} {:>14} {:>8}",
            n,
            clusters,
            overhead,
            inner_rounds,
            okmark(est == exact)
        );
    }
}

/// E13 — Theorem 8.1 standalone on `CC[log⁴n]`: bound 7³(1+ε)-flavored.
pub fn e13_theorem_8_1() {
    header(
        "E13 · Theorem 8.1 — (7³+ε)-approximation in CC[log⁴n]",
        &format!(
            "{:>6} {:>6} {:>8} {:>12} {:>12} {:>8}",
            "n", "family", "rounds", "max stretch", "bound", "valid"
        ),
    );
    let sizes: &[usize] = if fast() { &[64] } else { &[64, 128, 256] };
    for &n in sizes {
        for family in [Family::Gnp, Family::WideWeights] {
            let w = bench_workload(family, n, 1300 + n as u64);
            let mut clique = Clique::new(n, Bandwidth::polylog(4, n));
            let mut rng = StdRng::seed_from_u64(13);
            let (est, bound) = apsp_large_bandwidth(
                &mut clique,
                &w.graph,
                &PipelineConfig {
                    seed: 13,
                    ..Default::default()
                },
                &mut rng,
            );
            let s = stretch(&w, &est);
            println!(
                "{:>6} {:>6} {:>8} {:>12.3} {:>12.1} {:>8}",
                n,
                w.family,
                clique.rounds(),
                s.max_stretch,
                bound,
                okmark(s.is_valid_approximation(bound))
            );
        }
    }
}

/// E14 — Theorem 6.1's round model across densities.
pub fn e14_sparse_matmul() {
    header(
        "E14 · Theorem 6.1 — sparse min-plus product round model",
        &format!(
            "{:>6} {:>8} {:>8} {:>10} {:>8}",
            "n", "ρS", "ρT", "ρST", "rounds"
        ),
    );
    let n = 1024usize;
    for (rs, rt, rst) in [
        (2.0f64, 2.0, 2.0),
        (32.0, 111.0, 12.0), // the skeleton invocation at n=1024
        (111.0, 111.0, 111.0),
        (1024.0, 1024.0, 1024.0), // dense
    ] {
        println!(
            "{:>6} {:>8.0} {:>8.0} {:>10.1} {:>8}",
            n,
            rs,
            rt,
            rst,
            cdkl_rounds(n, rs, rt, rst)
        );
    }
}

/// E15 — routing model validation: scheduled vs charged.
pub fn e15_routing() {
    header(
        "E15 · Lemma 2.1 — scheduled relay routing vs closed-form charge",
        &format!(
            "{:>6} {:>10} {:>16} {:>14}",
            "n", "load L/n", "scheduled rounds", "charged rounds"
        ),
    );
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(1500);
    for c in [1usize, 2, 4, 8] {
        let mut msgs = Vec::new();
        for u in 0..n {
            for _ in 0..c * n {
                msgs.push((u, rng.gen_range(0..n), 1usize));
            }
        }
        let schedule = schedule_route(n, 1, &msgs);
        let clique = Clique::new(n, Bandwidth::standard(n));
        let charged = clique.rounds_for_load(c * n);
        println!(
            "{:>6} {:>10} {:>16} {:>14}",
            n, c, schedule.total_rounds, charged
        );
    }
}

/// Runs every experiment in order.
pub fn run_all() {
    println!("== Congested Clique APSP — experiment tables ==");
    println!(
        "(paper: Bui, Chandra, Chang, Dory, Leitersdorf, PODC 2024; see EXPERIMENTS.md)\nfast mode: {}",
        fast()
    );
    e01_theorem_1_1();
    e02_tradeoff();
    e03_small_diameter();
    e04_hopset();
    e05_knearest();
    e06_skeleton();
    e07_spanner();
    e08_scaling();
    e09_figure1();
    e10_figure2();
    e11_landscape();
    e12_zeroweight();
    e13_theorem_8_1();
    e14_sparse_matmul();
    e15_routing();
    let _ = log2_ceil(2); // keep the import honest in fast mode
}
