//! Machine-readable benchmark reports.
//!
//! The `perf` bench target times the hot kernels at several thread counts
//! and writes the records as `BENCH_kernels.json`, so the performance
//! trajectory (wall-clock × threads × simulated rounds) can be tracked
//! across PRs by tooling instead of by eyeballing criterion logs. The JSON
//! is emitted by a tiny hand-rolled serializer — the workspace has no
//! network access for a real serde dependency.

use std::io::Write;
use std::time::Instant;

/// One timed experiment at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment id, e.g. `"exact_apsp"`.
    pub experiment: String,
    /// Problem size (nodes).
    pub n: usize,
    /// Thread count the kernel executed with (1 = sequential).
    pub threads: usize,
    /// Best-of-`reps` wall-clock milliseconds.
    pub wall_ms: f64,
    /// Simulated Congested Clique rounds, when the experiment runs on a
    /// [`clique_sim::Clique`] (0 for purely local kernels).
    pub rounds: u64,
    /// Additional numeric metrics, rendered as extra JSON keys (e.g. the
    /// serve bench's `qps` and latency percentiles). Empty for the kernel
    /// benches.
    pub extras: Vec<(String, f64)>,
}

/// Number of logical CPU cores visible to this process.
///
/// Stamped into every record's extras by [`render_report`] so speedup
/// claims in checked-in reports stay interpretable: `threads=4, speedup
/// ~1x, cores_detected=1` is the expected shape on a 1-CPU container, not
/// a scaling bug.
pub fn cores_detected() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

impl BenchRecord {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"experiment\":{},\"n\":{},\"threads\":{},\"wall_ms\":{:.3},\"rounds\":{}",
            json_string(&self.experiment),
            self.n,
            self.threads,
            self.wall_ms,
            self.rounds
        );
        for (key, value) in &self.extras {
            out.push_str(&format!(",{}:{value:.3}", json_string(key)));
        }
        out.push('}');
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the full report document.
///
/// Every record is stamped with a `cores_detected` extra (unless the caller
/// already set one), so all `BENCH_*.json` files carry the machine context
/// their thread-scaling numbers were measured under.
pub fn render_report(records: &[BenchRecord]) -> String {
    let cores = cores_detected() as f64;
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if !r.extras.iter().any(|(k, _)| k == "cores_detected") {
                r.extras.push(("cores_detected".into(), cores));
            }
            format!("    {}", r.to_json())
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"cc-apsp-bench/v1\",\n  \"records\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Writes the report to `path`.
pub fn write_report(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_report(records).as_bytes())
}

/// Flattens a captured `cc_obs` span tree into `phase_<name>_ms` extras:
/// one entry per distinct span **name** anywhere in the tree (so nested
/// pipeline phases like `pipeline/theorem-1.1/spanner-bootstrap` each get
/// their own `phase_spanner_bootstrap_ms`), with non-alphanumeric name
/// characters collapsed to `_` and same-name spans summed. Attaching this
/// to a [`BenchRecord`] makes the BENCH_*.json explain *where* an
/// experiment's wall-clock went, not just its total.
pub fn phase_extras(snapshot: &cc_obs::Snapshot) -> Vec<(String, f64)> {
    fn sanitize(name: &str) -> String {
        let mut out = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('_') && !out.is_empty() {
                out.push('_');
            }
        }
        out.trim_end_matches('_').to_string()
    }
    fn walk(extras: &mut Vec<(String, f64)>, nodes: &[cc_obs::SpanNode]) {
        for node in nodes {
            let key = format!("phase_{}_ms", sanitize(&node.name));
            let ms = node.total_ns as f64 / 1e6;
            match extras.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += ms,
                None => extras.push((key, ms)),
            }
            walk(extras, &node.children);
        }
    }
    let mut extras = Vec::new();
    walk(&mut extras, &snapshot.spans);
    extras
}

/// Times `f` as best-of-`reps` wall-clock milliseconds, returning the last
/// repetition's output alongside (so callers can pull rounds out of it and
/// the optimizer cannot drop the work).
pub fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1, "need at least one repetition");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_shaped_json() {
        let records = vec![
            BenchRecord {
                experiment: "exact_apsp".into(),
                n: 512,
                threads: 4,
                wall_ms: 12.5,
                rounds: 0,
                extras: vec![("qps".into(), 1234.5), ("p99_us".into(), 7.25)],
            },
            BenchRecord {
                experiment: "pipe\"line".into(),
                n: 128,
                threads: 1,
                wall_ms: 3.25,
                rounds: 42,
                extras: Vec::new(),
            },
        ];
        let doc = render_report(&records);
        assert!(doc.contains("\"schema\": \"cc-apsp-bench/v1\""));
        assert!(doc.contains("\"experiment\":\"exact_apsp\""));
        assert!(doc.contains("\"wall_ms\":12.500"));
        assert!(doc.contains("\"rounds\":42"));
        assert!(doc.contains("\"qps\":1234.500"));
        assert!(doc.contains("\"p99_us\":7.250"));
        assert!(doc.contains("pipe\\\"line"));
        // Every record gets the machine-context stamp exactly once.
        assert_eq!(doc.matches("\"cores_detected\":").count(), records.len());
        assert!(doc.contains(&format!("\"cores_detected\":{}.000", cores_detected())));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn caller_supplied_cores_detected_is_not_duplicated() {
        let records = vec![BenchRecord {
            experiment: "x".into(),
            n: 1,
            threads: 1,
            wall_ms: 1.0,
            rounds: 0,
            extras: vec![("cores_detected".into(), 99.0)],
        }];
        let doc = render_report(&records);
        assert_eq!(doc.matches("\"cores_detected\":").count(), 1);
        assert!(doc.contains("\"cores_detected\":99.000"));
    }

    #[test]
    fn phase_extras_flattens_and_sums_by_sanitized_name() {
        fn node(name: &str, ns: u64, children: Vec<cc_obs::SpanNode>) -> cc_obs::SpanNode {
            cc_obs::SpanNode {
                name: name.into(),
                path: name.into(),
                count: 1,
                total_ns: ns,
                attrs: Vec::new(),
                children,
            }
        }
        let snap = cc_obs::Snapshot {
            spans: vec![node(
                "pipeline",
                10_000_000,
                vec![node(
                    "theorem-1.1",
                    9_000_000,
                    vec![
                        node("spanner-bootstrap", 2_000_000, Vec::new()),
                        node("minplus[dense-ultra]", 1_000_000, Vec::new()),
                        node("minplus[dense-ultra]", 3_000_000, Vec::new()),
                    ],
                )],
            )],
            ..Default::default()
        };
        let extras = phase_extras(&snap);
        let get = |k: &str| extras.iter().find(|(key, _)| key == k).map(|(_, v)| *v);
        assert_eq!(get("phase_pipeline_ms"), Some(10.0));
        assert_eq!(get("phase_theorem_1_1_ms"), Some(9.0));
        assert_eq!(get("phase_spanner_bootstrap_ms"), Some(2.0));
        assert_eq!(get("phase_minplus_dense_ultra_ms"), Some(4.0));
        assert_eq!(extras.len(), 4);
    }

    #[test]
    fn time_best_of_returns_min_and_output() {
        let mut calls = 0;
        let (ms, out) = time_best_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(out, 3);
        assert!(ms >= 0.0);
    }
}
