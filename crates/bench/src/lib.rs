//! Experiment harness for the reproduction.
//!
//! Each `eNN_*` function in [`experiments`] regenerates one "table/figure":
//! a quantitative claim of the paper (theorem or lemma), printed as a table
//! of `paper bound vs. measured value` rows. The `tables` bench target runs
//! them all under `cargo bench`; EXPERIMENTS.md archives the output.

pub mod envelope;
pub mod experiments;
pub mod report;

use cc_graph::{apsp, generators::Family, DistMatrix, Graph, StretchStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic workload generation (family, size, seed) with ground truth.
pub struct Bench {
    /// Family short-name.
    pub family: &'static str,
    /// The graph.
    pub graph: Graph,
    /// Exact distances.
    pub exact: DistMatrix,
}

/// Builds a workload with exact ground truth attached.
pub fn bench_workload(family: Family, n: usize, seed: u64) -> Bench {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = family.generate(n, n as u64, &mut rng);
    let exact = apsp::exact_apsp(&graph);
    Bench {
        family: family.name(),
        graph,
        exact,
    }
}

/// Audits an estimate against the workload.
pub fn stretch(b: &Bench, est: &DistMatrix) -> StretchStats {
    est.stretch_vs(&b.exact)
}

/// Prints a table header with a rule.
pub fn header(title: &str, cols: &str) {
    println!("\n### {title}");
    println!("{cols}");
    println!("{}", "-".repeat(cols.len().max(40)));
}

/// `ok`/`VIOLATED` marker for bound checks.
pub fn okmark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}
