//! Sparse min-plus products with the CDKL21 round-cost model.
//!
//! Theorem 6.1 (quoting [CDKL21, Theorem 8]): the product `S ⋆ T` of two
//! `n × n` tropical matrices can be computed in
//! `O((ρS · ρT · ρST)^(1/3) / n^(2/3) + 1)` Congested Clique rounds, where
//! `ρM` is the *density* of `M` — the average number of non-`∞` entries per
//! row. The skeleton-graph construction (Section 6.2) and the η-extension
//! step invoke this with densities it bounds analytically; we compute the
//! product centrally and charge rounds by the formula with the **measured**
//! densities (or a caller-provided upper bound on `ρST`, which the theorem
//! permits: "assuming that ρST is known beforehand").

use cc_graph::{wadd, NodeId, Weight, INF};
use cc_par::ExecPolicy;

/// A sparse tropical matrix: per-row `(col, val)` entries, unordered values
/// but deduplicated columns (minimum kept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<Vec<(NodeId, Weight)>>,
}

impl SparseMatrix {
    /// An all-`∞` matrix.
    pub fn zero(n: usize) -> Self {
        Self {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Builds from rows; duplicate columns collapse to minimum value and
    /// `∞` entries are dropped.
    pub fn from_rows(n: usize, rows: Vec<Vec<(NodeId, Weight)>>) -> Self {
        assert_eq!(rows.len(), n);
        let rows = rows
            .into_iter()
            .map(|mut r| {
                r.retain(|&(_, w)| w < INF);
                r.sort_unstable_by_key(|&(c, w)| (c, w));
                r.dedup_by(|next, prev| next.0 == prev.0);
                r
            })
            .collect();
        Self { n, rows }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `u`.
    pub fn row(&self, u: NodeId) -> &[(NodeId, Weight)] {
        &self.rows[u]
    }

    /// Entry `(u, v)`, `∞` if absent.
    pub fn get(&self, u: NodeId, v: NodeId) -> Weight {
        self.rows[u]
            .iter()
            .find(|&&(c, _)| c == v)
            .map_or(INF, |&(_, w)| w)
    }

    /// Sets entry `(u, v)` to `min(current, w)`.
    pub fn relax(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if w >= INF {
            return;
        }
        match self.rows[u].iter_mut().find(|(c, _)| *c == v) {
            Some((_, cur)) => {
                if w < *cur {
                    *cur = w;
                }
            }
            None => self.rows[u].push((v, w)),
        }
    }

    /// Number of stored (non-`∞`) entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Density `ρ`: average non-`∞` entries per row.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.n as f64
    }

    /// Transpose.
    pub fn transpose(&self) -> SparseMatrix {
        let mut rows = vec![Vec::new(); self.n];
        for (u, row) in self.rows.iter().enumerate() {
            for &(v, w) in row {
                rows[v].push((u, w));
            }
        }
        SparseMatrix { n: self.n, rows }
    }
}

/// Result of a sparse product: the matrix and the rounds charged by the
/// CDKL21 model.
#[derive(Debug, Clone)]
pub struct SparseProduct {
    /// The product `S ⋆ T`.
    pub matrix: SparseMatrix,
    /// Densities `(ρS, ρT, ρST)` used for the charge.
    pub densities: (f64, f64, f64),
    /// Rounds charged: `ceil((ρS·ρT·ρST)^(1/3) / n^(2/3)) + 1`.
    pub rounds: u64,
}

/// Computes `S ⋆ T` and the CDKL21 round charge, under the `CC_THREADS`
/// execution default; see [`sparse_product_with`].
///
/// `rho_out_hint`, if given, is the caller's analytic upper bound on the
/// output density (the theorem requires ρST to be known beforehand); the
/// charge uses `max(measured, hint)` to stay conservative.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn sparse_product(
    s: &SparseMatrix,
    t: &SparseMatrix,
    rho_out_hint: Option<f64>,
) -> SparseProduct {
    sparse_product_with(s, t, rho_out_hint, ExecPolicy::from_env())
}

/// [`sparse_product`] under an explicit [`ExecPolicy`]: output rows are
/// independent, so the row range is partitioned into shards, each with its
/// own dense scratch row, and the per-shard row vectors are concatenated in
/// row order. Output is bit-identical for every policy.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn sparse_product_with(
    s: &SparseMatrix,
    t: &SparseMatrix,
    rho_out_hint: Option<f64>,
    exec: ExecPolicy,
) -> SparseProduct {
    assert_eq!(s.n(), t.n(), "sparse product dimension mismatch");
    let n = s.n();
    // Row-by-row accumulation with one dense scratch row per shard (reset
    // after each row).
    let rows: Vec<Vec<(NodeId, Weight)>> = exec.map_shards_collect(n, |shard| {
        let mut scratch = vec![INF; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut shard_rows = Vec::with_capacity(shard.len());
        for i in shard {
            // Empty source rows produce empty output rows: skip the scratch
            // walk, the sort, and the collect entirely. Graph-shaped inputs
            // (e.g. skeleton scatter matrices) are dominated by empty rows,
            // so this keeps the kernel at O(work) instead of O(rows).
            if s.row(i).is_empty() {
                shard_rows.push(Vec::new());
                continue;
            }
            for &(k, sik) in s.row(i) {
                for &(j, tkj) in t.row(k) {
                    let cand = wadd(sik, tkj);
                    if cand < scratch[j] {
                        if scratch[j] == INF {
                            touched.push(j);
                        }
                        scratch[j] = cand;
                    }
                }
            }
            let mut row: Vec<(NodeId, Weight)> = touched.iter().map(|&j| (j, scratch[j])).collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            for &j in &touched {
                scratch[j] = INF;
            }
            touched.clear();
            shard_rows.push(row);
        }
        shard_rows
    });
    let out = SparseMatrix { n, rows };
    let rho_s = s.density();
    let rho_t = t.density();
    let rho_out = out.density().max(rho_out_hint.unwrap_or(0.0));
    let rounds = cdkl_rounds(n, rho_s, rho_t, rho_out);
    SparseProduct {
        matrix: out,
        densities: (rho_s, rho_t, rho_out),
        rounds,
    }
}

/// The Theorem 6.1 round charge:
/// `ceil((ρS·ρT·ρST)^(1/3) / n^(2/3)) + 1`.
pub fn cdkl_rounds(n: usize, rho_s: f64, rho_t: f64, rho_st: f64) -> u64 {
    let num = (rho_s.max(0.0) * rho_t.max(0.0) * rho_st.max(0.0)).cbrt();
    let den = (n as f64).powf(2.0 / 3.0);
    (num / den).ceil() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::DistMatrix;
    use rand::{Rng, SeedableRng};

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> SparseMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| {
                (0..per_row)
                    .map(|_| (rng.gen_range(0..n), rng.gen_range(0..100u64)))
                    .collect()
            })
            .collect();
        SparseMatrix::from_rows(n, rows)
    }

    fn to_dense(s: &SparseMatrix) -> DistMatrix {
        let mut d = DistMatrix::from_raw(s.n(), vec![INF; s.n() * s.n()]);
        for u in 0..s.n() {
            for &(v, w) in s.row(u) {
                d.set(u, v, w);
            }
        }
        d
    }

    #[test]
    fn sparse_product_matches_dense() {
        for seed in 0..6 {
            let s = random_sparse(12, 4, seed);
            let t = random_sparse(12, 3, seed + 100);
            let sp = sparse_product(&s, &t, None);
            let dense = crate::dense::distance_product(&to_dense(&s), &to_dense(&t));
            assert_eq!(to_dense(&sp.matrix), dense, "seed={seed}");
        }
    }

    /// Regression: a matrix whose rows are 90% empty (an adjacency shaped
    /// like the skeleton scatter matrices) must still multiply correctly —
    /// the empty-row fast path may not change any output row.
    #[test]
    fn ninety_percent_empty_rows_product_is_correct() {
        let n = 40;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let rows: Vec<Vec<(usize, u64)>> = (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    (0..5)
                        .map(|_| (rng.gen_range(0..n), rng.gen_range(1..50u64)))
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let s = SparseMatrix::from_rows(n, rows);
        assert!(s.rows.iter().filter(|r| r.is_empty()).count() >= (9 * n) / 10);
        let t = random_sparse(n, 4, 78);
        for exec in [ExecPolicy::Seq, ExecPolicy::Par(4)] {
            let sp = sparse_product_with(&s, &t, None, exec);
            let dense = crate::dense::distance_product(&to_dense(&s), &to_dense(&t));
            assert_eq!(to_dense(&sp.matrix), dense);
            // Empty source rows stay empty in the output.
            for (i, row) in sp.matrix.rows.iter().enumerate() {
                if s.row(i).is_empty() {
                    assert!(row.is_empty(), "row {i} not empty");
                }
            }
        }
    }

    #[test]
    fn density_counts_average_entries() {
        let s = SparseMatrix::from_rows(
            4,
            vec![vec![(0, 1)], vec![], vec![(1, 2), (2, 3)], vec![(3, 1)]],
        );
        assert_eq!(s.nnz(), 4);
        assert!((s.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_dedups_columns_to_min() {
        let s = SparseMatrix::from_rows(2, vec![vec![(1, 9), (1, 4)], vec![]]);
        assert_eq!(s.get(0, 1), 4);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn cdkl_rounds_constant_for_skeleton_densities() {
        // The Section 6.2 invocation: ρX ≤ k, ρY ≤ |S|, ρXY ≤ |S|²/n with
        // k = √n, |S| = Õ(√n): at n = 1024, k = 32, |S| ≈ 111:
        let n = 1024.0f64;
        let r = cdkl_rounds(1024, 32.0, 111.0, 111.0 * 111.0 / n);
        assert!(r <= 2, "rounds = {r}");
    }

    #[test]
    fn cdkl_rounds_grows_with_density() {
        let dense_r = cdkl_rounds(64, 64.0, 64.0, 64.0);
        let sparse_r = cdkl_rounds(64, 2.0, 2.0, 2.0);
        assert!(dense_r > sparse_r);
    }

    #[test]
    fn transpose_involution() {
        let s = random_sparse(10, 3, 5);
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn relax_only_lowers() {
        let mut s = SparseMatrix::zero(2);
        s.relax(0, 1, 5);
        s.relax(0, 1, 9);
        assert_eq!(s.get(0, 1), 5);
        s.relax(0, 1, 2);
        assert_eq!(s.get(0, 1), 2);
    }
}
