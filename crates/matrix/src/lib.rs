#![warn(missing_docs)]

//! Min-plus (tropical) semiring matrix machinery.
//!
//! Section 2.1 of the paper frames distance computation as matrix
//! exponentiation over the tropical semiring `(Z≥0 ∪ {∞}, min, +)`: if `A` is
//! the weighted adjacency matrix of `G` (with zero diagonal), then `A^h[u,v]`
//! is the h-hop distance from `u` to `v`. This crate provides:
//!
//! * [`dense`] — dense distance products and exponentiation (reference
//!   semantics and ground truth);
//! * [`filtered`] — the *filtered* matrices of Section 5: each row keeps only
//!   its `k` smallest entries (ties by column ID). [`filtered::FilteredMatrix::from_dense`]
//!   and friends implement the `Ā` notation, and the crate's tests verify
//!   Lemma 5.5 (`filter(Ā^i) = filter(A^i)`);
//! * [`sparse`] — sparse min-plus products with the density bookkeeping of
//!   the CDKL21 round-cost model (Theorem 6.1 in the paper), used by the
//!   skeleton-graph construction (Section 6);
//! * [`engine`] — the kernel **engine** (v2): a density- and
//!   entry-bound-sampling [`engine::KernelPlan`] dispatcher that routes
//!   every multiply to the branchless lane kernel at the narrowest lawful
//!   element width (`u64` wide / `u32` compact / `u16` ultra — see
//!   [`engine::ULTRA_MAX_ENTRY`] and [`engine::COMPACT_MAX_ENTRY`]) or the
//!   sharded sparse kernel, and self-products ([`engine::square`], used by
//!   `power`/`closure`) to a blocked-Floyd–Warshall k-tiled kernel — with
//!   bit-identical results across all of them. Every pipeline's hot
//!   products go through it.
//!
//! # Example
//!
//! ```
//! use cc_graph::graph::{Graph, Direction};
//! use cc_matrix::dense;
//!
//! let g = Graph::from_edges(3, Direction::Undirected, &[(0, 1, 2), (1, 2, 2)]);
//! let a = dense::adjacency_matrix(&g);
//! let a2 = dense::distance_product(&a, &a);
//! assert_eq!(a2.get(0, 2), 4); // two hops
//! ```

pub mod dense;
pub mod engine;
pub mod filtered;
pub mod sparse;
