//! Dense min-plus products and exponentiation.
//!
//! Four dense kernels live here:
//!
//! * [`distance_product_with`] — the naive row-blocked triple loop. This is
//!   the **reference semantics** every other kernel is tested against; it is
//!   deliberately left simple.
//! * [`distance_product_tiled_with`] — the v1 cache-blocked kernel: the
//!   right operand is transposed once so the inner loop reads both operands
//!   contiguously, the `k` dimension is processed in `CC_TILE`-sized tiles,
//!   and each output entry's minimum accumulates across four registers.
//!   Kept as a measured baseline (`minplus_tiled` in `BENCH_kernels.json`);
//!   its dot-product shape bottoms out in horizontal min-reductions that
//!   autovectorize poorly.
//! * [`distance_product_lanes_with`] — the v2 **lane kernel** and the
//!   production dense path ([`crate::engine`] routes every dense multiply
//!   here). Loop order is `i, k, j`: the innermost loop broadcasts one
//!   pre-clamped `A[i,k]` against a contiguous row of `B` and min-folds it
//!   into the contiguous output row — a pure branchless `add + min` stream
//!   over [`TropicalEntry::LANES`]-wide lanes with a scalar tail, no
//!   transposition, no `∞` branches, no reduction across lanes. The same
//!   generic kernel instantiates at `u64` (full range), `u32` (compact),
//!   and `u16` (ultra-compact) entry widths.
//! * [`square_ktiled_with`] — the blocked-Floyd–Warshall-style self-product
//!   used by [`power`]/[`closure`]-shaped squarings: the output is walked in
//!   [`KTILED_ROWS`]-row accumulator strips and the *full* `k` sweep runs
//!   against each strip before moving on, so the strip stays L1-resident
//!   across the sweep and each operand row fetched serves every strip row
//!   while hot.
//!
//! All kernels compute the exact entrywise minimum over all `k`, so their
//! outputs are **bit-identical** for every tile size, lane width, and thread
//! count — `min` over unsigned integers has no rounding. The
//! auto-dispatching front end that picks between these and the sparse
//! kernel is [`crate::engine`].

use cc_graph::{wadd, DistMatrix, Graph, Weight, INF};
use cc_par::ExecPolicy;
use std::sync::OnceLock;

/// The weighted adjacency matrix of `g` over the tropical semiring:
/// `A[u,v] = w(u,v)` for edges, `A[v,v] = 0`, `∞` elsewhere.
pub fn adjacency_matrix(g: &Graph) -> DistMatrix {
    let mut a = DistMatrix::infinite(g.n());
    for (u, v, w) in g.all_arcs() {
        a.relax(u, v, w);
    }
    a
}

/// The distance product `A ⋆ B`: `(A ⋆ B)[i,j] = min_k (A[i,k] + B[k,j])`,
/// under the `CC_THREADS` execution default; see [`distance_product_with`].
///
/// `O(n³)` centrally. (The *distributed* cost model for products lives in
/// [`crate::sparse`]; dense products are used as reference semantics and for
/// node-local computations on broadcast data.)
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product(a: &DistMatrix, b: &DistMatrix) -> DistMatrix {
    distance_product_with(a, b, ExecPolicy::from_env())
}

/// [`distance_product`] under an explicit [`ExecPolicy`]: output rows depend
/// only on `A`'s row and all of `B`, so the product is computed in disjoint
/// row blocks. Output is bit-identical for every policy.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_with(a: &DistMatrix, b: &DistMatrix, exec: ExecPolicy) -> DistMatrix {
    assert_eq!(a.n(), b.n(), "distance product dimension mismatch");
    let n = a.n();
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![INF; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        for (off, crow) in chunk.chunks_mut(n).enumerate() {
            let i = block * rows_per_block + off;
            let arow = a.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik >= INF {
                    continue;
                }
                let brow = b.row(k);
                for j in 0..n {
                    let cand = wadd(aik, brow[j]);
                    if cand < crow[j] {
                        crow[j] = cand;
                    }
                }
            }
        }
    });
    DistMatrix::from_raw(n, data)
}

/// Default tile size (rows/columns of `k`-dimension per tile) for the
/// blocked kernel when `CC_TILE` is unset: 64 entries = 512 bytes of each
/// operand row per tile, small enough that a full `n × tile` slice of the
/// transposed operand fits in L2 at the sizes the pipelines use.
pub const DEFAULT_TILE: usize = 64;

/// The tile size used by [`distance_product_tiled_with`]: the `CC_TILE`
/// environment variable (read once per process), else [`DEFAULT_TILE`].
/// Values are clamped to at least 1. The tile size never changes results,
/// only wall-clock time.
pub fn tile_size() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("CC_TILE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(DEFAULT_TILE)
    })
}

/// Lane width of the wide (`u64`) lane kernel: 8 × 8 bytes = one 64-byte
/// cache line per lane group.
pub const WIDE_LANES: usize = 8;

/// Lane width of the compact (`u32`) lane kernel: 8 × 4 bytes = one 256-bit
/// vector per lane group on AVX2, two 128-bit vectors on SSE2.
pub const COMPACT_LANES: usize = 8;

/// Lane width of the ultra-compact (`u16`) lane kernel: 16 × 2 bytes. All
/// clamped `u16` values stay below `2^15`, so unsigned and signed 16-bit
/// min agree and the lane loop lowers to plain `paddw`/`pminsw` even on
/// baseline SSE2.
pub const ULTRA_LANES: usize = 16;

/// An entry type the dense kernels can run over: `u64` for full-range
/// tropical weights, `u32` for the compact bounded-entry path, `u16` for
/// the ultra-compact small-weight path (see [`crate::engine`]). `TOP`
/// plays the role of `∞`.
///
/// **Kernel precondition:** every entry fed to [`tiled_kernel`],
/// [`lanes_kernel`], or [`ktiled_kernel`] must be at most `TOP` (callers
/// clamp once, O(n²), before the O(n³) loop). Because `TOP ≤ MAX/4`, the
/// sum of two clamped entries never overflows, so `tadd` is a plain
/// wrapping add — no per-element saturation in the hot loop — and any sum
/// involving a `TOP` operand lands at or above `TOP`, where it can never
/// win a minimum against an output entry (those start at `TOP` and only
/// decrease). That is exactly `wadd`'s observable behaviour.
pub(crate) trait TropicalEntry: Copy + Ord + Send + Sync {
    /// The infinity sentinel for this width (≤ `MAX/4`).
    const TOP: Self;
    /// Unrolled lane count of the branchless inner loop for this width.
    const LANES: usize;
    /// Semiring addition under the clamped-input precondition.
    fn tadd(self, rhs: Self) -> Self;
}

impl TropicalEntry for u64 {
    const TOP: u64 = INF;
    const LANES: usize = WIDE_LANES;
    #[inline(always)]
    fn tadd(self, rhs: u64) -> u64 {
        self.wrapping_add(rhs)
    }
}

impl TropicalEntry for u32 {
    const TOP: u32 = u32::MAX / 4;
    const LANES: usize = COMPACT_LANES;
    #[inline(always)]
    fn tadd(self, rhs: u32) -> u32 {
        self.wrapping_add(rhs)
    }
}

impl TropicalEntry for u16 {
    const TOP: u16 = u16::MAX / 4;
    const LANES: usize = ULTRA_LANES;
    #[inline(always)]
    fn tadd(self, rhs: u16) -> u16 {
        self.wrapping_add(rhs)
    }
}

/// The transposed raw data of an `n × n` row-major matrix.
pub(crate) fn transpose_raw<T: Copy>(n: usize, src: &[T]) -> Vec<T> {
    debug_assert_eq!(src.len(), n * n);
    let mut out = Vec::with_capacity(n * n);
    for j in 0..n {
        for i in 0..n {
            out.push(src[i * n + j]);
        }
    }
    out
}

/// A copy with every entry clamped to `TOP` — establishes the
/// [`TropicalEntry`] kernel precondition (values above `TOP` all mean `∞`).
fn clamp_top<T: TropicalEntry>(src: &[T]) -> Vec<T> {
    src.iter().map(|&w| w.min(T::TOP)).collect()
}

/// The tiled min-plus kernel over raw row-major `a` and **transposed** `bt`:
/// returns row-major `C` with `C[i][j] = min_k sat_add(a[i][k], bt[j][k])`.
///
/// Row strips are computed in disjoint chunks (parallel under `exec`); the
/// `k` dimension is walked in `tile`-sized blocks so the `bt` slice for one
/// block is reused across every row of the strip. Exact min ⇒ bit-identical
/// output for every `(tile, exec)`.
pub(crate) fn tiled_kernel<T: TropicalEntry>(
    n: usize,
    a: &[T],
    bt: &[T],
    exec: ExecPolicy,
    tile: usize,
) -> Vec<T> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(bt.len(), n * n);
    let tile = tile.max(1);
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![T::TOP; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        let i0 = block * rows_per_block;
        let rows_here = chunk.len() / n.max(1);
        let mut kk = 0;
        while kk < n {
            let kmax = (kk + tile).min(n);
            for off in 0..rows_here {
                let i = i0 + off;
                let arow = &a[i * n + kk..i * n + kmax];
                let crow = &mut chunk[off * n..off * n + n];
                for (j, cj) in crow.iter_mut().enumerate() {
                    let brow = &bt[j * n + kk..j * n + kmax];
                    // Four independent accumulators break the min-reduction
                    // dependency chain; exact min, so still bit-identical.
                    let mut acc = [*cj, T::TOP, T::TOP, T::TOP];
                    let mut pairs = arow.chunks_exact(4).zip(brow.chunks_exact(4));
                    for (ax, bx) in &mut pairs {
                        acc[0] = acc[0].min(ax[0].tadd(bx[0]));
                        acc[1] = acc[1].min(ax[1].tadd(bx[1]));
                        acc[2] = acc[2].min(ax[2].tadd(bx[2]));
                        acc[3] = acc[3].min(ax[3].tadd(bx[3]));
                    }
                    let rem = arow.len() % 4;
                    for (&x, &y) in arow[arow.len() - rem..]
                        .iter()
                        .zip(brow[brow.len() - rem..].iter())
                    {
                        acc[0] = acc[0].min(x.tadd(y));
                    }
                    *cj = acc[0].min(acc[1]).min(acc[2]).min(acc[3]);
                }
            }
            kk = kmax;
        }
    });
    data
}

/// Min-folds `aik + brow[j]` into `crow[j]` for every `j`: the branchless
/// inner loop of the lane kernels. The main loop runs over fixed
/// [`TropicalEntry::LANES`]-wide chunks — a shape LLVM turns into packed
/// integer `add`/`min` with no branches and no cross-lane reduction — and
/// the sub-lane remainder is handled by an explicit scalar tail.
#[inline(always)]
fn lane_min_into<T: TropicalEntry>(crow: &mut [T], brow: &[T], aik: T) {
    debug_assert_eq!(crow.len(), brow.len());
    let mut cc = crow.chunks_exact_mut(T::LANES);
    let bb = brow.chunks_exact(T::LANES);
    let btail = bb.remainder();
    for (cl, bl) in (&mut cc).zip(bb) {
        for (c, &b) in cl.iter_mut().zip(bl) {
            *c = (*c).min(aik.tadd(b));
        }
    }
    for (c, &b) in cc.into_remainder().iter_mut().zip(btail) {
        *c = (*c).min(aik.tadd(b));
    }
}

/// The lane min-plus kernel over raw **row-major** `a` and `b` (both
/// clamped to `TOP`): returns row-major `C` with
/// `C[i][j] = min_k (a[i][k] + b[k][j])`.
///
/// Loop order is `i, k, j`: for each output row, each `a[i][k]` is
/// broadcast against the contiguous row `b[k]` and min-folded into the
/// contiguous output row by [`lane_min_into`] — no transposition, no
/// horizontal reductions, and the only branch outside the O(n²) bookkeeping
/// is the per-`(i,k)` skip of `∞` left entries (which never changes the
/// minimum). The `k` dimension is walked in `tile`-sized blocks so the
/// `tile × n` slice of `b` is reused across every row of a strip; row
/// strips are computed in disjoint chunks (parallel under `exec`). Exact
/// min ⇒ bit-identical output for every `(tile, exec)`.
pub(crate) fn lanes_kernel<T: TropicalEntry>(
    n: usize,
    a: &[T],
    b: &[T],
    exec: ExecPolicy,
    tile: usize,
) -> Vec<T> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n * n);
    let tile = tile.max(1);
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![T::TOP; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        let i0 = block * rows_per_block;
        let rows_here = chunk.len() / n.max(1);
        let mut kk = 0;
        while kk < n {
            let kmax = (kk + tile).min(n);
            for off in 0..rows_here {
                let arow = &a[(i0 + off) * n..(i0 + off) * n + n];
                let crow = &mut chunk[off * n..off * n + n];
                for (k, &aik) in arow.iter().enumerate().take(kmax).skip(kk) {
                    if aik >= T::TOP {
                        continue;
                    }
                    lane_min_into(crow, &b[k * n..k * n + n], aik);
                }
            }
            kk = kmax;
        }
    });
    data
}

/// Rows per accumulator strip in [`ktiled_kernel`]: small enough that the
/// strip (`KTILED_ROWS × n` entries) plus one operand row stay L1-resident
/// (4 × 2 KiB + 2 KiB = 10 KiB for `u32` at n = 512), large enough that
/// each `tile × n` operand block fetched for a `k` step is reused across
/// several output rows before eviction.
pub const KTILED_ROWS: usize = 4;

/// The blocked-Floyd–Warshall-style **k-tiled** self-product kernel over
/// raw row-major `a` (clamped to `TOP`): returns `C = a ⋆ a`.
///
/// Where [`lanes_kernel`] streams a whole `rows_per_block` strip against
/// each `k` block (the block's operand rows are evicted and re-fetched
/// once per output row when the strip outgrows L2), this kernel walks the
/// output in small [`KTILED_ROWS`]-row accumulator strips and runs the
/// **full** `k` sweep against each strip before moving on — the strip
/// stays L1-resident across the entire sweep and each `tile × n` operand
/// block is reused across the strip's rows while still hot, which is the
/// access pattern of the blocked Floyd–Warshall inner phase. The inner
/// loop is the same full-width branchless [`lane_min_into`]; loop order
/// within a strip stays `i, k, j` (`k`-outer orderings defeat the
/// vectorizer's store chain — measured 5x slower). Used by the
/// [`power`]/[`closure`]-shaped squarings where the same matrix is both
/// operands. Exact min ⇒ bit-identical to the naive reference for every
/// `(tile, exec)` (the `tile` parameter blocks the `k` sweep, matching the
/// other kernels' knob).
pub(crate) fn ktiled_kernel<T: TropicalEntry>(
    n: usize,
    a: &[T],
    exec: ExecPolicy,
    tile: usize,
) -> Vec<T> {
    debug_assert_eq!(a.len(), n * n);
    let tile = tile.max(1);
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![T::TOP; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        let i0 = block * rows_per_block;
        let rows_here = chunk.len() / n.max(1);
        let mut ii = 0;
        while ii < rows_here {
            let imax = (ii + KTILED_ROWS).min(rows_here);
            let mut kk = 0;
            while kk < n {
                let kmax = (kk + tile).min(n);
                for i in ii..imax {
                    let arow = &a[(i0 + i) * n..(i0 + i) * n + n];
                    let crow = &mut chunk[i * n..i * n + n];
                    for (k, &aik) in arow.iter().enumerate().take(kmax).skip(kk) {
                        if aik >= T::TOP {
                            continue;
                        }
                        lane_min_into(crow, &a[k * n..k * n + n], aik);
                    }
                }
                kk = kmax;
            }
            ii = imax;
        }
    });
    data
}

/// The lane-kernel distance product: same result as [`distance_product`],
/// computed by [`lanes_kernel`] over `u64` entries with the `CC_TILE` tile
/// size and the `CC_THREADS` execution default. This is the engine's wide
/// dense path; the bounded-entry `u32`/`u16` instantiations are dispatched
/// by [`crate::engine`].
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_lanes(a: &DistMatrix, b: &DistMatrix) -> DistMatrix {
    distance_product_lanes_with(a, b, ExecPolicy::from_env())
}

/// [`distance_product_lanes`] under an explicit [`ExecPolicy`].
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_lanes_with(a: &DistMatrix, b: &DistMatrix, exec: ExecPolicy) -> DistMatrix {
    distance_product_lanes_opts(a, b, exec, tile_size())
}

/// [`distance_product_lanes`] with every knob explicit. The tile size is a
/// pure performance parameter: the output is bit-identical to
/// [`distance_product`] for **every** `tile ≥ 1` and every policy (property
/// tested in `tests/kernel_props.rs`).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_lanes_opts(
    a: &DistMatrix,
    b: &DistMatrix,
    exec: ExecPolicy,
    tile: usize,
) -> DistMatrix {
    assert_eq!(a.n(), b.n(), "distance product dimension mismatch");
    let n = a.n();
    let ac = clamp_top::<Weight>(a.raw());
    let bc = clamp_top::<Weight>(b.raw());
    DistMatrix::from_raw(n, lanes_kernel(n, &ac, &bc, exec, tile))
}

/// The k-tiled self-product `A ⋆ A`: same result as
/// `distance_product(a, a)`, computed by [`ktiled_kernel`] with the
/// `CC_TILE` tile size and the `CC_THREADS` execution default.
pub fn square_ktiled(a: &DistMatrix) -> DistMatrix {
    square_ktiled_with(a, ExecPolicy::from_env())
}

/// [`square_ktiled`] under an explicit [`ExecPolicy`].
pub fn square_ktiled_with(a: &DistMatrix, exec: ExecPolicy) -> DistMatrix {
    square_ktiled_opts(a, exec, tile_size())
}

/// [`square_ktiled`] with every knob explicit; bit-identical to
/// `distance_product(a, a)` for every `tile ≥ 1` and every policy.
pub fn square_ktiled_opts(a: &DistMatrix, exec: ExecPolicy, tile: usize) -> DistMatrix {
    let n = a.n();
    let ac = clamp_top::<Weight>(a.raw());
    DistMatrix::from_raw(n, ktiled_kernel(n, &ac, exec, tile))
}

/// The cache-blocked distance product: same result as
/// [`distance_product`], computed by the tiled kernel with the `CC_TILE`
/// tile size and the `CC_THREADS` execution default.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_tiled(a: &DistMatrix, b: &DistMatrix) -> DistMatrix {
    distance_product_tiled_with(a, b, ExecPolicy::from_env())
}

/// [`distance_product_tiled`] under an explicit [`ExecPolicy`].
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_tiled_with(a: &DistMatrix, b: &DistMatrix, exec: ExecPolicy) -> DistMatrix {
    distance_product_tiled_opts(a, b, exec, tile_size())
}

/// [`distance_product_tiled`] with every knob explicit. The tile size is a
/// pure performance parameter: the output is bit-identical to
/// [`distance_product`] for **every** `tile ≥ 1` and every policy (property
/// tested in `tests/kernel_props.rs`).
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_tiled_opts(
    a: &DistMatrix,
    b: &DistMatrix,
    exec: ExecPolicy,
    tile: usize,
) -> DistMatrix {
    assert_eq!(a.n(), b.n(), "distance product dimension mismatch");
    let n = a.n();
    // Clamp to INF once (entries above INF all mean ∞) so the O(n³) loop
    // can use plain adds; see the TropicalEntry precondition.
    let ac = clamp_top::<Weight>(a.raw());
    let bt = clamp_top::<Weight>(&transpose_raw(n, b.raw()));
    let data: Vec<Weight> = tiled_kernel(n, &ac, &bt, exec, tile);
    DistMatrix::from_raw(n, data)
}

/// `A^h` over the tropical semiring by binary exponentiation
/// (`O(n³ log h)`), under the `CC_THREADS` execution default. `A^0` is the
/// identity (zero diagonal, `∞` elsewhere).
pub fn power(a: &DistMatrix, h: u64) -> DistMatrix {
    power_with(a, h, ExecPolicy::from_env())
}

/// [`power`] under an explicit [`ExecPolicy`].
///
/// Two classic wasted products are skipped: the accumulator starts as the
/// bit-position's `A^(2^i)` itself instead of multiplying into the identity
/// (the identity is neutral, so `I ⋆ B = B` can be a clone), and the base is
/// never squared once the remaining exponent bits are exhausted.
pub fn power_with(a: &DistMatrix, h: u64, exec: ExecPolicy) -> DistMatrix {
    power_by(a, h, |x, y| distance_product_with(x, y, exec))
}

/// The binary-exponentiation control flow shared by this module and the
/// kernel engine, parameterized over the multiply (see [`power_with`] for
/// the skipped-product details).
pub(crate) fn power_by(
    a: &DistMatrix,
    h: u64,
    multiply: impl Fn(&DistMatrix, &DistMatrix) -> DistMatrix,
) -> DistMatrix {
    let n = a.n();
    let mut result: Option<DistMatrix> = None; // `None` = the tropical identity
    let mut base = a.clone();
    let mut h = h;
    while h > 0 {
        if h & 1 == 1 {
            result = Some(match result {
                None => base.clone(),
                Some(r) => multiply(&r, &base),
            });
        }
        h >>= 1;
        if h > 0 {
            base = multiply(&base, &base);
        }
    }
    result.unwrap_or_else(|| DistMatrix::infinite(n))
}

/// Exact APSP by repeated squaring until fixpoint; returns the distance
/// matrix and the number of squarings (`⌈log₂(n-1)⌉` at most).
pub fn closure(a: &DistMatrix) -> (DistMatrix, usize) {
    closure_by(a, distance_product)
}

/// The squaring-to-fixpoint loop shared by this module and the kernel
/// engine, parameterized over the multiply.
pub(crate) fn closure_by(
    a: &DistMatrix,
    multiply: impl Fn(&DistMatrix, &DistMatrix) -> DistMatrix,
) -> (DistMatrix, usize) {
    let mut cur = a.clone();
    let mut squarings = 0;
    loop {
        let next = multiply(&cur, &cur);
        squarings += 1;
        if next == cur {
            return (next, squarings);
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::apsp::exact_apsp;
    use cc_graph::graph::Direction;
    use cc_graph::sssp::bellman_ford_hops;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(1..50)));
                }
            }
        }
        Graph::from_edges(n, Direction::Undirected, &edges)
    }

    #[test]
    fn adjacency_has_zero_diagonal() {
        let g = random_graph(10, 1);
        let a = adjacency_matrix(&g);
        for v in 0..10 {
            assert_eq!(a.get(v, v), 0);
        }
    }

    #[test]
    fn power_h_equals_h_hop_distances() {
        let g = random_graph(12, 2);
        let a = adjacency_matrix(&g);
        for h in [1u64, 2, 3, 5] {
            let ah = power(&a, h);
            for s in 0..g.n() {
                let bf = bellman_ford_hops(&g, s, h as usize);
                for (t, &d) in bf.iter().enumerate() {
                    assert_eq!(ah.get(s, t), d, "h={h} s={s} t={t}");
                }
            }
        }
    }

    #[test]
    fn closure_equals_exact_apsp() {
        let g = random_graph(14, 3);
        let a = adjacency_matrix(&g);
        let (closed, squarings) = closure(&a);
        assert_eq!(closed, exact_apsp(&g));
        assert!(squarings <= 5, "squarings = {squarings}"); // ceil(log2(13)) + 1
    }

    #[test]
    fn product_is_associative_on_random_matrices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 8;
        let mk = |rng: &mut rand::rngs::StdRng| {
            let data: Vec<u64> = (0..n * n)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        INF
                    } else {
                        rng.gen_range(0..100)
                    }
                })
                .collect();
            DistMatrix::from_raw(n, data)
        };
        for _ in 0..10 {
            let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
            let left = distance_product(&distance_product(&a, &b), &c);
            let right = distance_product(&a, &distance_product(&b, &c));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let g = random_graph(9, 4);
        let a = adjacency_matrix(&g);
        let id = DistMatrix::infinite(9);
        assert_eq!(distance_product(&a, &id), a);
        assert_eq!(distance_product(&id, &a), a);
    }

    #[test]
    fn tiled_product_matches_naive_across_tiles() {
        let g = random_graph(23, 6);
        let h = random_graph(23, 7);
        let a = adjacency_matrix(&g);
        let b = adjacency_matrix(&h);
        let naive = distance_product(&a, &b);
        for tile in [1usize, 3, 8, 23, 64, 100] {
            let tiled = distance_product_tiled_opts(&a, &b, ExecPolicy::Seq, tile);
            assert_eq!(tiled, naive, "tile={tile}");
        }
    }

    #[test]
    fn tiled_product_handles_inf_saturation() {
        // Entries just below INF must behave like the naive wadd kernel:
        // sums at or above INF never beat a finite candidate.
        let n = 4;
        let mut a = DistMatrix::infinite(n);
        let mut b = DistMatrix::infinite(n);
        a.set(0, 1, INF - 1);
        b.set(1, 2, 5);
        a.set(0, 3, 7);
        b.set(3, 2, 9);
        let naive = distance_product(&a, &b);
        let tiled = distance_product_tiled_opts(&a, &b, ExecPolicy::Seq, 2);
        assert_eq!(tiled, naive);
        assert_eq!(tiled.get(0, 2), 16); // via node 3, not the ~INF path
    }

    #[test]
    fn lanes_product_matches_naive_across_tiles() {
        let g = random_graph(29, 16);
        let h = random_graph(29, 17);
        let a = adjacency_matrix(&g);
        let b = adjacency_matrix(&h);
        let naive = distance_product(&a, &b);
        for tile in [1usize, 3, 8, 29, 64, 100] {
            for threads in [1usize, 2, 4] {
                let out =
                    distance_product_lanes_opts(&a, &b, ExecPolicy::with_threads(threads), tile);
                assert_eq!(out, naive, "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn lanes_product_handles_inf_saturation() {
        let n = 4;
        let mut a = DistMatrix::infinite(n);
        let mut b = DistMatrix::infinite(n);
        a.set(0, 1, INF - 1);
        b.set(1, 2, 5);
        a.set(0, 3, 7);
        b.set(3, 2, 9);
        let naive = distance_product(&a, &b);
        let lanes = distance_product_lanes_opts(&a, &b, ExecPolicy::Seq, 2);
        assert_eq!(lanes, naive);
        assert_eq!(lanes.get(0, 2), 16); // via node 3, not the ~INF path
    }

    #[test]
    fn ktiled_square_matches_naive_across_tiles() {
        let g = random_graph(27, 18);
        let a = adjacency_matrix(&g);
        let naive = distance_product(&a, &a);
        for tile in [1usize, 5, 27, 64, 100] {
            for threads in [1usize, 2, 4] {
                let out = square_ktiled_opts(&a, ExecPolicy::with_threads(threads), tile);
                assert_eq!(out, naive, "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn narrow_lane_kernels_match_the_wide_one() {
        // The u32/u16 instantiations of lanes_kernel/ktiled_kernel compute
        // the same min-plus as the wide kernel on pre-narrowed data.
        let n = 13;
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let wide: Vec<u64> = (0..n * n)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    INF
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect();
        let w64: Vec<u64> = wide
            .iter()
            .map(|&w| w.min(<u64 as TropicalEntry>::TOP))
            .collect();
        let w32: Vec<u32> = wide
            .iter()
            .map(|&w| if w >= INF { u32::MAX / 4 } else { w as u32 })
            .collect();
        let w16: Vec<u16> = wide
            .iter()
            .map(|&w| if w >= INF { u16::MAX / 4 } else { w as u16 })
            .collect();
        let c64 = lanes_kernel::<u64>(n, &w64, &w64, ExecPolicy::Seq, 7);
        let c32 = lanes_kernel::<u32>(n, &w32, &w32, ExecPolicy::Seq, 7);
        let c16 = lanes_kernel::<u16>(n, &w16, &w16, ExecPolicy::Seq, 7);
        let k64 = ktiled_kernel::<u64>(n, &w64, ExecPolicy::Seq, 5);
        let k32 = ktiled_kernel::<u32>(n, &w32, ExecPolicy::Seq, 5);
        let k16 = ktiled_kernel::<u16>(n, &w16, ExecPolicy::Seq, 5);
        for i in 0..n * n {
            let finite = |v: u64, top: u64| if v >= top { None } else { Some(v) };
            let want = finite(c64[i], INF);
            assert_eq!(
                finite(c32[i] as u64, (u32::MAX / 4) as u64),
                want,
                "u32 {i}"
            );
            assert_eq!(
                finite(c16[i] as u64, (u16::MAX / 4) as u64),
                want,
                "u16 {i}"
            );
            let want_k = finite(k64[i], INF);
            assert_eq!(want, want_k, "square vs product {i}");
            assert_eq!(finite(k32[i] as u64, (u32::MAX / 4) as u64), want_k);
            assert_eq!(finite(k16[i] as u64, (u16::MAX / 4) as u64), want_k);
        }
    }

    #[test]
    fn tile_size_is_positive() {
        assert!(tile_size() >= 1);
    }

    #[test]
    fn power_zero_is_identity() {
        let g = random_graph(6, 5);
        let a = adjacency_matrix(&g);
        assert_eq!(power(&a, 0), DistMatrix::infinite(6));
    }
}

/// Quick single-machine probe comparing the two production dense kernels
/// at full size (`cargo test --release -p cc-matrix ktiled_speed --
/// --ignored --nocapture`); `#[ignore]`d because it is a timing aid, not a
/// correctness test — the real perf record is `BENCH_kernels.json`.
#[cfg(test)]
mod ktiled_speed {
    use super::*;

    #[test]
    #[ignore]
    fn compare() {
        let n = 512;
        let a: Vec<u16> = (0..n * n).map(|i| ((i * 7919) % 8000) as u16).collect();
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let x = lanes_kernel::<u16>(n, &a, &a, ExecPolicy::Seq, 64);
            let lanes_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = std::time::Instant::now();
            let y = ktiled_kernel::<u16>(n, &a, ExecPolicy::Seq, 64);
            let kt_ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(x, y);
            println!("lanes {lanes_ms:.2} ms  ktiled {kt_ms:.2} ms");
        }
    }
}
