//! Dense min-plus products and exponentiation.

use cc_graph::{wadd, DistMatrix, Graph, INF};
use cc_par::ExecPolicy;

/// The weighted adjacency matrix of `g` over the tropical semiring:
/// `A[u,v] = w(u,v)` for edges, `A[v,v] = 0`, `∞` elsewhere.
pub fn adjacency_matrix(g: &Graph) -> DistMatrix {
    let mut a = DistMatrix::infinite(g.n());
    for (u, v, w) in g.all_arcs() {
        a.relax(u, v, w);
    }
    a
}

/// The distance product `A ⋆ B`: `(A ⋆ B)[i,j] = min_k (A[i,k] + B[k,j])`,
/// under the `CC_THREADS` execution default; see [`distance_product_with`].
///
/// `O(n³)` centrally. (The *distributed* cost model for products lives in
/// [`crate::sparse`]; dense products are used as reference semantics and for
/// node-local computations on broadcast data.)
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product(a: &DistMatrix, b: &DistMatrix) -> DistMatrix {
    distance_product_with(a, b, ExecPolicy::from_env())
}

/// [`distance_product`] under an explicit [`ExecPolicy`]: output rows depend
/// only on `A`'s row and all of `B`, so the product is computed in disjoint
/// row blocks. Output is bit-identical for every policy.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance_product_with(a: &DistMatrix, b: &DistMatrix, exec: ExecPolicy) -> DistMatrix {
    assert_eq!(a.n(), b.n(), "distance product dimension mismatch");
    let n = a.n();
    let rows_per_block = exec.row_block_len(n, 1);
    let mut data = vec![INF; n * n];
    exec.for_each_chunk_mut(&mut data, rows_per_block * n.max(1), |block, chunk| {
        for (off, crow) in chunk.chunks_mut(n).enumerate() {
            let i = block * rows_per_block + off;
            let arow = a.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik >= INF {
                    continue;
                }
                let brow = b.row(k);
                for j in 0..n {
                    let cand = wadd(aik, brow[j]);
                    if cand < crow[j] {
                        crow[j] = cand;
                    }
                }
            }
        }
    });
    DistMatrix::from_raw(n, data)
}

/// `A^h` over the tropical semiring by binary exponentiation
/// (`O(n³ log h)`), under the `CC_THREADS` execution default. `A^0` is the
/// identity (zero diagonal, `∞` elsewhere).
pub fn power(a: &DistMatrix, h: u64) -> DistMatrix {
    power_with(a, h, ExecPolicy::from_env())
}

/// [`power`] under an explicit [`ExecPolicy`].
///
/// Two classic wasted products are skipped: the accumulator starts as the
/// bit-position's `A^(2^i)` itself instead of multiplying into the identity
/// (the identity is neutral, so `I ⋆ B = B` can be a clone), and the base is
/// never squared once the remaining exponent bits are exhausted.
pub fn power_with(a: &DistMatrix, h: u64, exec: ExecPolicy) -> DistMatrix {
    let n = a.n();
    let mut result: Option<DistMatrix> = None; // `None` = the tropical identity
    let mut base = a.clone();
    let mut h = h;
    while h > 0 {
        if h & 1 == 1 {
            result = Some(match result {
                None => base.clone(),
                Some(r) => distance_product_with(&r, &base, exec),
            });
        }
        h >>= 1;
        if h > 0 {
            base = distance_product_with(&base, &base, exec);
        }
    }
    result.unwrap_or_else(|| DistMatrix::infinite(n))
}

/// Exact APSP by repeated squaring until fixpoint; returns the distance
/// matrix and the number of squarings (`⌈log₂(n-1)⌉` at most).
pub fn closure(a: &DistMatrix) -> (DistMatrix, usize) {
    let mut cur = a.clone();
    let mut squarings = 0;
    loop {
        let next = distance_product(&cur, &cur);
        squarings += 1;
        if next == cur {
            return (next, squarings);
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::apsp::exact_apsp;
    use cc_graph::graph::Direction;
    use cc_graph::sssp::bellman_ford_hops;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(1..50)));
                }
            }
        }
        Graph::from_edges(n, Direction::Undirected, &edges)
    }

    #[test]
    fn adjacency_has_zero_diagonal() {
        let g = random_graph(10, 1);
        let a = adjacency_matrix(&g);
        for v in 0..10 {
            assert_eq!(a.get(v, v), 0);
        }
    }

    #[test]
    fn power_h_equals_h_hop_distances() {
        let g = random_graph(12, 2);
        let a = adjacency_matrix(&g);
        for h in [1u64, 2, 3, 5] {
            let ah = power(&a, h);
            for s in 0..g.n() {
                let bf = bellman_ford_hops(&g, s, h as usize);
                for (t, &d) in bf.iter().enumerate() {
                    assert_eq!(ah.get(s, t), d, "h={h} s={s} t={t}");
                }
            }
        }
    }

    #[test]
    fn closure_equals_exact_apsp() {
        let g = random_graph(14, 3);
        let a = adjacency_matrix(&g);
        let (closed, squarings) = closure(&a);
        assert_eq!(closed, exact_apsp(&g));
        assert!(squarings <= 5, "squarings = {squarings}"); // ceil(log2(13)) + 1
    }

    #[test]
    fn product_is_associative_on_random_matrices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 8;
        let mk = |rng: &mut rand::rngs::StdRng| {
            let data: Vec<u64> = (0..n * n)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        INF
                    } else {
                        rng.gen_range(0..100)
                    }
                })
                .collect();
            DistMatrix::from_raw(n, data)
        };
        for _ in 0..10 {
            let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
            let left = distance_product(&distance_product(&a, &b), &c);
            let right = distance_product(&a, &distance_product(&b, &c));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let g = random_graph(9, 4);
        let a = adjacency_matrix(&g);
        let id = DistMatrix::infinite(9);
        assert_eq!(distance_product(&a, &id), a);
        assert_eq!(distance_product(&id, &a), a);
    }

    #[test]
    fn power_zero_is_identity() {
        let g = random_graph(6, 5);
        let a = adjacency_matrix(&g);
        assert_eq!(power(&a, 0), DistMatrix::infinite(6));
    }
}
