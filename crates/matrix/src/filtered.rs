//! Filtered matrices: the `Ā` notation of Section 5.
//!
//! Filtering a matrix keeps, in each row, only the `k` smallest entries
//! (ties broken by column ID) and sets the rest to `∞`. A filtered matrix is
//! exactly a "k-nearest list per node", and Lemma 5.5 is the fact that makes
//! the paper's k-nearest algorithm work: filtering commutes with tropical
//! exponentiation, `filter(Ā^i) = filter(A^i)`.
//!
//! [`FilteredMatrix`] stores rows sparsely (`(col, val)` sorted by
//! `(val, col)`), which is also the on-the-wire format nodes exchange in the
//! Section 5 algorithm.

use cc_graph::{DistMatrix, Graph, NodeId, Weight, INF};

/// A row-filtered tropical matrix: row `u` holds at most `k` entries,
/// sorted by `(value, column)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredMatrix {
    n: usize,
    k: usize,
    rows: Vec<Vec<(NodeId, Weight)>>,
}

impl FilteredMatrix {
    /// Filters a dense matrix: keep the `k` smallest entries per row, ties
    /// by column.
    pub fn from_dense(a: &DistMatrix, k: usize) -> Self {
        let n = a.n();
        let rows = (0..n)
            .map(|u| {
                select_k_smallest(
                    a.row(u)
                        .iter()
                        .copied()
                        .enumerate()
                        .filter(|&(_, w)| w < INF),
                    k,
                )
            })
            .collect();
        Self { n, k, rows }
    }

    /// Filters the adjacency matrix of `g` directly: row `u` is the `k`
    /// smallest of `{(u, 0)} ∪ {(v, w_uv)}` — note the diagonal zero is
    /// included, matching `N¹_k(u)` (which contains `u` itself).
    pub fn from_graph(g: &Graph, k: usize) -> Self {
        let n = g.n();
        let rows = (0..n)
            .map(|u| {
                let entries = std::iter::once((u, 0)).chain(g.neighbors(u));
                select_k_smallest(entries, k)
            })
            .collect();
        Self { n, k, rows }
    }

    /// Builds from explicit rows (each row is deduplicated, sorted, and
    /// truncated to `k`).
    pub fn from_rows(n: usize, k: usize, rows: Vec<Vec<(NodeId, Weight)>>) -> Self {
        assert_eq!(rows.len(), n);
        let rows = rows
            .into_iter()
            .map(|r| select_k_smallest(r.into_iter(), k))
            .collect();
        Self { n, k, rows }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The filtering parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `u`: `(col, val)` sorted by `(val, col)`, at most `k` entries.
    pub fn row(&self, u: NodeId) -> &[(NodeId, Weight)] {
        &self.rows[u]
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// All stored entries as arcs `(row, col, val)`, rows in order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |&(v, w)| (u, v, w)))
    }

    /// Densifies (missing entries become `∞`; note the dense result does not
    /// re-add a zero diagonal — a filtered row only contains its diagonal if
    /// it survived filtering, which it always does since `(0, u)` sorts
    /// first among nonnegative entries of row `u`).
    pub fn to_dense(&self) -> DistMatrix {
        let mut a = DistMatrix::from_raw(self.n, vec![INF; self.n * self.n]);
        for (u, v, w) in self.arcs() {
            a.set(u, v, w);
        }
        a
    }
}

/// Keeps the `k` smallest `(col, val)` entries by `(val, col)`, after
/// collapsing duplicate columns to their minimum value.
///
/// This is the selection rule used everywhere the paper says "the k nodes
/// with the smallest values, breaking ties by node IDs".
pub fn select_k_smallest(
    entries: impl Iterator<Item = (NodeId, Weight)>,
    k: usize,
) -> Vec<(NodeId, Weight)> {
    let mut by_key: Vec<(Weight, NodeId)> = entries.map(|(c, w)| (w, c)).collect();
    by_key.sort_unstable();
    // Collapse duplicate columns: after sorting by (w, col), the first
    // occurrence of a column has its minimum value.
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    for (w, c) in by_key {
        if w >= INF {
            break;
        }
        if seen.insert(c) {
            out.push((c, w));
            if out.len() == k {
                break;
            }
        }
    }
    out
}

/// Reference implementation of the Section 5 target: `filter_k(A^h)`, the
/// `k` smallest h-hop distances per row, computed densely.
pub fn filtered_power_reference(a: &DistMatrix, k: usize, h: u64) -> FilteredMatrix {
    FilteredMatrix::from_dense(&crate::dense::power(a, h), k)
}

/// One square-and-filter step through the kernel engine:
/// `filter_k(F ⋆ F)` for a filtered matrix `F`.
///
/// This is the step the engine is built for: a filtered matrix is `k`-sparse
/// per row, so the rows feed the engine's sparse entry point directly —
/// `O(n·k²)`-ish work with **no** dense `n²` materialization on the sparse
/// path (the engine only densifies if its dispatch decides the operands
/// warrant the tiled kernel). By Lemma 5.5, re-filtering between squarings
/// preserves the k-nearest semantics: `filter((filter(A^c))²) = filter(A^(2c))`.
pub fn filtered_square(
    f: &FilteredMatrix,
    mode: crate::engine::KernelMode,
    exec: cc_par::ExecPolicy,
) -> FilteredMatrix {
    let n = f.n();
    let s = crate::sparse::SparseMatrix::from_rows(n, (0..n).map(|u| f.row(u).to_vec()).collect());
    let (product, _choice) = crate::engine::sparse_product_planned(&s, &s, None, mode, exec);
    FilteredMatrix::from_rows(
        n,
        f.k(),
        (0..n).map(|u| product.matrix.row(u).to_vec()).collect(),
    )
}

/// `filter_k(A^(2^squarings))` for a filtered start matrix `Ā = filter_k(A)`
/// by iterated [`filtered_square`] — the centralized doubling engine
/// (`cc_baselines::doubling` runs the same recurrence through the simulated
/// clique; this is its local counterpart for serving and benchmarks).
pub fn filtered_power_engine(
    abar: &FilteredMatrix,
    squarings: usize,
    mode: crate::engine::KernelMode,
    exec: cc_par::ExecPolicy,
) -> FilteredMatrix {
    let mut cur = abar.clone();
    for _ in 0..squarings {
        cur = filtered_square(&cur, mode, exec);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{adjacency_matrix, power};
    use cc_graph::graph::Direction;
    use rand::{Rng, SeedableRng};

    fn random_digraph(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p) {
                    edges.push((u, v, rng.gen_range(1..30)));
                }
            }
        }
        Graph::from_edges(n, Direction::Directed, &edges)
    }

    #[test]
    fn from_graph_includes_diagonal_zero() {
        let g = Graph::from_edges(3, Direction::Directed, &[(0, 1, 5)]);
        let f = FilteredMatrix::from_graph(&g, 2);
        assert_eq!(f.row(0), &[(0, 0), (1, 5)]);
        assert_eq!(f.row(2), &[(2, 0)]);
    }

    #[test]
    fn select_k_smallest_dedups_and_tiebreaks() {
        let entries = vec![(3, 5), (1, 5), (3, 2), (2, 7)];
        assert_eq!(
            select_k_smallest(entries.into_iter(), 2),
            vec![(3, 2), (1, 5)]
        );
    }

    #[test]
    fn select_k_smallest_drops_inf() {
        let entries = vec![(0, INF), (1, 3)];
        assert_eq!(select_k_smallest(entries.into_iter(), 5), vec![(1, 3)]);
    }

    #[test]
    fn from_dense_matches_from_graph() {
        let g = random_digraph(15, 0.3, 7);
        let a = adjacency_matrix(&g);
        assert_eq!(
            FilteredMatrix::from_dense(&a, 4),
            FilteredMatrix::from_graph(&g, 4)
        );
    }

    /// Lemma 5.5: `filter(Ā^i) = filter(A^i)` — filtering the graph first and
    /// exponentiating gives the same k-nearest rows as exponentiating the
    /// full matrix.
    #[test]
    fn lemma_5_5_filtered_power_commutes() {
        for seed in 0..8 {
            let n = 14;
            let k = 4;
            let g = random_digraph(n, 0.35, seed);
            let a = adjacency_matrix(&g);
            for h in [2u64, 3] {
                let full = filtered_power_reference(&a, k, h);
                let abar = FilteredMatrix::from_graph(&g, k).to_dense();
                let filtered_then_power = FilteredMatrix::from_dense(&power(&abar, h), k);
                assert_eq!(full, filtered_then_power, "seed={seed} h={h}");
            }
        }
    }

    /// The engine-backed square-and-filter matches the dense reference for
    /// every kernel mode (Lemma 5.5 + engine bit-identity).
    #[test]
    fn filtered_power_engine_matches_reference() {
        use crate::engine::KernelMode;
        for seed in 0..4 {
            let g = random_digraph(16, 0.3, seed + 30);
            let k = 4;
            let a = adjacency_matrix(&g);
            let abar = FilteredMatrix::from_graph(&g, k);
            for squarings in [0usize, 1, 2, 3] {
                let reference = filtered_power_reference(&a, k, 1u64 << squarings);
                for mode in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
                    let out =
                        filtered_power_engine(&abar, squarings, mode, cc_par::ExecPolicy::Seq);
                    assert_eq!(
                        out, reference,
                        "seed={seed} squarings={squarings} mode={mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn to_dense_round_trips() {
        let g = random_digraph(10, 0.4, 3);
        let f = FilteredMatrix::from_graph(&g, 3);
        let back = FilteredMatrix::from_dense(&f.to_dense(), 3);
        assert_eq!(f, back);
    }

    #[test]
    fn nnz_bounded_by_nk() {
        let g = random_digraph(20, 0.5, 11);
        let f = FilteredMatrix::from_graph(&g, 5);
        assert!(f.nnz() <= 20 * 5);
    }
}
