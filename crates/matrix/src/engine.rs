//! The min-plus **kernel engine**: one front door for every distance
//! product in the workspace, with per-multiply auto-dispatch between the
//! cache-blocked dense kernel, its compact bounded-entry variant, and the
//! sharded sparse kernel.
//!
//! Every pipeline in the paper bottoms out in min-plus products — the
//! Theorem 7.1 skeleton squaring, the small-diameter path, and the doubling
//! baseline all spend most of their work there — and the right kernel
//! depends on the operands: adjacency-shaped matrices are extremely sparse,
//! post-closure distance matrices are fully dense, the weight-scaled
//! instances of Lemma 8.1 have entries bounded well below 32 bits, and the
//! smallest scaled instances fit in 16. The engine measures what it is
//! given (sampled density, sampled-then-confirmed entry bounds) and picks
//! per multiply:
//!
//! | choice | kernel | picked when |
//! |---|---|---|
//! | [`KernelChoice::SparseSharded`] | [`crate::sparse`] row shards | `fill(A)·fill(B) ≤ 1/16` (sampled) |
//! | [`KernelChoice::DenseUltra`] | lane kernel over `u16` | dense, and all finite entries ≤ [`ULTRA_MAX_ENTRY`] |
//! | [`KernelChoice::DenseCompact`] | lane kernel over `u32` | dense, and all finite entries ≤ [`COMPACT_MAX_ENTRY`] |
//! | [`KernelChoice::DenseLanes`] | lane kernel over `u64` | dense, wide entries |
//!
//! Self-products (`A ⋆ A`, the shape of every [`power`]/[`closure`]
//! squaring) route through [`square`], which swaps the dense lane kernel
//! for its blocked-Floyd–Warshall-style k-tiled sibling in
//! [`crate::dense`], at the same entry width.
//!
//! The dispatch can be overridden with [`KernelMode::Dense`] /
//! [`KernelMode::Sparse`] — threaded through `PipelineConfig` and
//! `ccapsp run --kernel {auto,dense,sparse}` — or process-wide with the
//! `CC_KERNEL` environment variable (the [`KernelMode::from_env`] default).
//!
//! # Bit-identical outputs
//!
//! All three kernels compute the exact entrywise minimum over the same
//! candidate set, so the engine's output is **bit-identical** for every
//! mode, tile size, and thread count — kernel selection is purely a
//! wall-clock decision. The golden-conformance suite and
//! `tests/kernel_props.rs` pin this contract.

use crate::dense::{self, ktiled_kernel, lanes_kernel, tile_size, TropicalEntry};
use crate::sparse::{cdkl_rounds, sparse_product_with, SparseMatrix, SparseProduct};
use cc_graph::{DistMatrix, NodeId, Weight, INF};
use cc_par::ExecPolicy;
use std::sync::OnceLock;

/// How many rows of each operand the dispatcher samples (evenly strided)
/// when estimating density and fast-rejecting entry bounds.
const DENSITY_SAMPLE_ROWS: usize = 64;

/// Sparse kernel cutoff: auto-dispatch picks the sparse kernel when the
/// product of the operands' sampled fill fractions is at most this. The
/// sparse kernel does `≈ fill(A)·fill(B)·n³` work with a constant factor a
/// few times worse than the tiled kernel's, so 1/16 leaves a safe margin.
pub const SPARSE_FILL_CUTOFF: f64 = 1.0 / 16.0;

/// The compact (`u32`) kernel's infinity sentinel — the `u32` kernel's own
/// `TOP`, so the mapping here and the kernel's saturation point can never
/// drift apart.
const COMPACT_TOP: u32 = <u32 as TropicalEntry>::TOP;

/// Largest finite entry the compact kernel accepts: chosen so the sum of
/// two finite entries stays strictly below the `u32` infinity sentinel,
/// keeping the compact kernel bit-identical to the wide one.
pub const COMPACT_MAX_ENTRY: u64 = ((COMPACT_TOP - 1) / 2) as u64;

/// The ultra-compact (`u16`) kernel's infinity sentinel.
const ULTRA_TOP: u16 = <u16 as TropicalEntry>::TOP;

/// Largest finite entry the ultra-compact `u16` kernel accepts (8191):
/// the sum of two finite entries stays strictly below the `u16` infinity
/// sentinel, so the 2-byte kernel is bit-identical to the wide one. This is
/// the shape of the paper's weight-scaled instances (Lemma 8.1 rescales
/// weights into a small integer range before each recursion level), at 4x
/// the memory density of the original `u64` path.
pub const ULTRA_MAX_ENTRY: u64 = ((ULTRA_TOP - 1) / 2) as u64;

/// Which kernel family a multiply is asked to use. `Auto` measures the
/// operands; `Dense`/`Sparse` force the family (the tiled-vs-compact split
/// inside `Dense` is still decided by the entry bound, which is a pure
/// representation detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Density-sampling dispatch (the default).
    Auto,
    /// Always the cache-blocked dense kernel.
    Dense,
    /// Always the sharded sparse kernel.
    Sparse,
}

impl KernelMode {
    /// Parses a CLI/env spelling: `auto`, `dense`, or `sparse`.
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.trim() {
            "auto" => Some(KernelMode::Auto),
            "dense" => Some(KernelMode::Dense),
            "sparse" => Some(KernelMode::Sparse),
            _ => None,
        }
    }

    /// The process-wide default, read from `CC_KERNEL` once and cached:
    /// `dense`/`sparse` force a family, unset or anything else means
    /// [`KernelMode::Auto`].
    pub fn from_env() -> KernelMode {
        static CACHED: OnceLock<KernelMode> = OnceLock::new();
        *CACHED.get_or_init(|| {
            std::env::var("CC_KERNEL")
                .ok()
                .and_then(|v| KernelMode::parse(&v))
                .unwrap_or(KernelMode::Auto)
        })
    }

    /// Machine-readable name (`auto` / `dense` / `sparse`).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::Dense => "dense",
            KernelMode::Sparse => "sparse",
        }
    }
}

impl Default for KernelMode {
    /// [`KernelMode::from_env`]: the `CC_KERNEL` environment default.
    fn default() -> Self {
        Self::from_env()
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelMode::parse(s).ok_or_else(|| format!("unknown kernel mode {s:?} (auto|dense|sparse)"))
    }
}

/// The concrete kernel a plan resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Branchless lane kernel over `u64` entries (full weight range).
    DenseLanes,
    /// Lane kernel over `u32` entries (all finite entries of both operands
    /// are at most [`COMPACT_MAX_ENTRY`] — the bounded-entry structure of
    /// the paper's weight-scaled instances), at 2x the memory density of
    /// the wide path.
    DenseCompact,
    /// Lane kernel over `u16` entries (all finite entries of both operands
    /// are at most [`ULTRA_MAX_ENTRY`] — the smallest weight-scaled
    /// instances), at 4x the memory density of the wide path with 16-wide
    /// lanes.
    DenseUltra,
    /// Row-sharded sparse kernel ([`crate::sparse`]).
    SparseSharded,
}

impl KernelChoice {
    /// Machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::DenseLanes => "dense-lanes",
            KernelChoice::DenseCompact => "dense-compact",
            KernelChoice::DenseUltra => "dense-ultra",
            KernelChoice::SparseSharded => "sparse-sharded",
        }
    }

    /// Stable numeric code, used as the `kernel_code` span attribute in
    /// `--trace` exports (`0..=3` in declaration order).
    pub fn code(self) -> u64 {
        match self {
            KernelChoice::DenseLanes => 0,
            KernelChoice::DenseCompact => 1,
            KernelChoice::DenseUltra => 2,
            KernelChoice::SparseSharded => 3,
        }
    }

    /// Unrolled lane width of the dense kernel this choice runs on (the
    /// sparse kernel has no fixed lane shape and reports `None`).
    pub fn lane_width(self) -> Option<usize> {
        match self {
            KernelChoice::DenseLanes => Some(dense::WIDE_LANES),
            KernelChoice::DenseCompact => Some(dense::COMPACT_LANES),
            KernelChoice::DenseUltra => Some(dense::ULTRA_LANES),
            KernelChoice::SparseSharded => None,
        }
    }

    /// Bytes each matrix cell occupies inside the kernel this choice runs
    /// on (the sparse kernel stores `(column, weight)` pairs per finite
    /// entry instead).
    pub fn bytes_per_cell(self) -> Option<usize> {
        match self {
            KernelChoice::DenseLanes => Some(8),
            KernelChoice::DenseCompact => Some(4),
            KernelChoice::DenseUltra => Some(2),
            KernelChoice::SparseSharded => None,
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One multiply's dispatch decision: what was measured and which kernel
/// runs. Plans are cheap (`O(n)` sampled entries plus, on the dense path,
/// one `O(n²)` bound scan — negligible next to the `O(n³)` multiply) and
/// are recomputed **per multiply**, so e.g. repeated squaring migrates from
/// the sparse to the dense kernel as the matrix fills in.
///
/// ```
/// use cc_graph::DistMatrix;
/// use cc_matrix::engine::{KernelChoice, KernelMode, KernelPlan, COMPACT_MAX_ENTRY, ULTRA_MAX_ENTRY};
///
/// // A filled small-weight matrix dispatches to the 2-byte ultra kernel…
/// let mut a = DistMatrix::infinite(8);
/// for u in 0..8 {
///     for v in 0..8 {
///         a.set(u, v, 1 + (u + v) as u64);
///     }
/// }
/// let plan = KernelPlan::choose(&a, &a, KernelMode::Auto);
/// assert_eq!(plan.choice, KernelChoice::DenseUltra);
///
/// // …one entry past the u16 bound demotes it to the u32 compact kernel…
/// a.set(0, 0, ULTRA_MAX_ENTRY + 1);
/// assert_eq!(KernelPlan::choose(&a, &a, KernelMode::Auto).choice, KernelChoice::DenseCompact);
///
/// // …and past the u32 bound, to the full-width lane kernel.
/// a.set(0, 0, COMPACT_MAX_ENTRY + 1);
/// assert_eq!(KernelPlan::choose(&a, &a, KernelMode::Auto).choice, KernelChoice::DenseLanes);
///
/// // A nearly-empty matrix (only the diagonal is finite) dispatches to
/// // the sparse kernel.
/// let empty = DistMatrix::infinite(8);
/// let plan = KernelPlan::choose(&empty, &empty, KernelMode::Auto);
/// assert_eq!(plan.choice, KernelChoice::SparseSharded);
///
/// // Explicit modes override the measurement.
/// let forced = KernelPlan::choose(&empty, &empty, KernelMode::Dense);
/// assert!(forced.choice != KernelChoice::SparseSharded);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPlan {
    /// The mode the caller requested.
    pub mode: KernelMode,
    /// The kernel the plan resolved to.
    pub choice: KernelChoice,
    /// Sampled fill fraction (finite entries / n²) of the left operand.
    pub fill_a: f64,
    /// Sampled fill fraction of the right operand.
    pub fill_b: f64,
    /// Tile size the dense kernels will use (`CC_TILE`).
    pub tile: usize,
}

impl KernelPlan {
    /// Plans one multiply `A ⋆ B` under `mode`; see the type-level docs for
    /// the dispatch rule.
    pub fn choose(a: &DistMatrix, b: &DistMatrix, mode: KernelMode) -> KernelPlan {
        let fill_a = sampled_fill(a);
        let fill_b = sampled_fill(b);
        let choice = match mode {
            KernelMode::Sparse => KernelChoice::SparseSharded,
            KernelMode::Dense => dense_choice(a, b),
            KernelMode::Auto => {
                if fill_a * fill_b <= SPARSE_FILL_CUTOFF {
                    KernelChoice::SparseSharded
                } else {
                    dense_choice(a, b)
                }
            }
        };
        KernelPlan {
            mode,
            choice,
            fill_a,
            fill_b,
            tile: tile_size(),
        }
    }
}

/// Sampled fraction of finite (`< INF`) entries, over up to
/// [`DENSITY_SAMPLE_ROWS`] evenly strided rows.
fn sampled_fill(m: &DistMatrix) -> f64 {
    let n = m.n();
    if n == 0 {
        return 0.0;
    }
    let sample = n.min(DENSITY_SAMPLE_ROWS);
    let mut finite = 0usize;
    let mut seen = 0usize;
    for s in 0..sample {
        // `s·n/sample` spreads the sample over the whole index range even
        // when `sample` does not divide `n` (a plain `n/sample` stride
        // would sample a prefix and mis-plan half-empty matrices).
        let row = m.row(s * n / sample);
        finite += row.iter().filter(|&&w| w < INF).count();
        seen += n;
    }
    finite as f64 / seen.max(1) as f64
}

/// Largest finite entry over the same strided row sample [`sampled_fill`]
/// uses (`0` if the sample is all-infinite). A sampled entry **above** a
/// bound proves the matrix ineligible for that width, so this fast-rejects
/// the full O(n²) eligibility scans for wide-weight matrices; a sampled
/// maximum *below* a bound is only a hint and must still be confirmed by
/// the exact scan (an unsampled row may hold a wider entry — truncating it
/// would corrupt results).
fn sampled_entry_cap(m: &DistMatrix) -> u64 {
    let n = m.n();
    if n == 0 {
        return 0;
    }
    let sample = n.min(DENSITY_SAMPLE_ROWS);
    let mut cap = 0u64;
    for s in 0..sample {
        for &w in m.row(s * n / sample) {
            if w < INF && w > cap {
                cap = w;
            }
        }
    }
    cap
}

/// Inside the dense family: the narrowest lane kernel whose exactness
/// bound every finite entry of both operands fits — `u16` ultra, then
/// `u32` compact, else the full-width `u64` lanes. The sampled entry cap
/// fast-rejects widths the sample already disproves; full scans confirm
/// the rest (bound checks must be exact, only the *order* they are tried
/// in is sampled).
fn dense_choice(a: &DistMatrix, b: &DistMatrix) -> KernelChoice {
    let cap = sampled_entry_cap(a).max(sampled_entry_cap(b));
    if cap <= ULTRA_MAX_ENTRY && ultra_eligible(a) && ultra_eligible(b) {
        KernelChoice::DenseUltra
    } else if cap <= COMPACT_MAX_ENTRY && compact_eligible(a) && compact_eligible(b) {
        KernelChoice::DenseCompact
    } else {
        KernelChoice::DenseLanes
    }
}

/// Whether every entry is either infinite or at most [`COMPACT_MAX_ENTRY`].
fn compact_eligible(m: &DistMatrix) -> bool {
    m.raw().iter().all(|&w| w >= INF || w <= COMPACT_MAX_ENTRY)
}

/// Whether every entry is either infinite or at most [`ULTRA_MAX_ENTRY`].
fn ultra_eligible(m: &DistMatrix) -> bool {
    m.raw().iter().all(|&w| w >= INF || w <= ULTRA_MAX_ENTRY)
}

/// Opens the per-multiply `cc_obs` span (`op[choice]`, e.g.
/// `minplus[dense-ultra]`) tagged with the plan's dispatch inputs. One
/// relaxed atomic load when tracing is off — the name is never formatted.
fn kernel_span(op: &str, n: usize, plan: &KernelPlan) -> cc_obs::SpanGuard {
    let mut sp = cc_obs::span_lazy(|| format!("{op}[{}]", plan.choice.name()));
    if sp.is_active() {
        sp.attr("kernel_code", plan.choice.code() as f64);
        sp.attr("n", n as f64);
        sp.attr("fill", plan.fill_a * plan.fill_b);
        sp.attr("tile", plan.tile as f64);
    }
    sp
}

/// The engine's distance product `A ⋆ B`: plans the multiply under `mode`
/// and runs the chosen kernel. Output is bit-identical to
/// [`dense::distance_product`] for every mode.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn min_plus(a: &DistMatrix, b: &DistMatrix, mode: KernelMode, exec: ExecPolicy) -> DistMatrix {
    min_plus_planned(a, b, &KernelPlan::choose(a, b, mode), exec)
}

/// [`min_plus`] with a precomputed [`KernelPlan`].
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn min_plus_planned(
    a: &DistMatrix,
    b: &DistMatrix,
    plan: &KernelPlan,
    exec: ExecPolicy,
) -> DistMatrix {
    assert_eq!(a.n(), b.n(), "distance product dimension mismatch");
    let n = a.n();
    let _sp = kernel_span("minplus", n, plan);
    match plan.choice {
        KernelChoice::DenseLanes => dense::distance_product_lanes_opts(a, b, exec, plan.tile),
        KernelChoice::DenseCompact => {
            // A plan may be reused after its operands changed (the fields
            // are public); re-verify the compact bound — `w as u32` would
            // silently truncate wide entries — and fall back to the wide
            // lane kernel if it no longer holds. Same bits either way.
            if !(compact_eligible(a) && compact_eligible(b)) {
                return dense::distance_product_lanes_opts(a, b, exec, plan.tile);
            }
            let a32 = to_compact(a.raw());
            let b32 = to_compact(b.raw());
            from_compact(n, &lanes_kernel::<u32>(n, &a32, &b32, exec, plan.tile))
        }
        KernelChoice::DenseUltra => {
            // Same stale-plan discipline as the compact arm.
            if !(ultra_eligible(a) && ultra_eligible(b)) {
                return min_plus_planned(
                    a,
                    b,
                    &KernelPlan {
                        choice: dense_choice(a, b),
                        ..*plan
                    },
                    exec,
                );
            }
            let a16 = to_ultra(a.raw());
            let b16 = to_ultra(b.raw());
            from_ultra(n, &lanes_kernel::<u16>(n, &a16, &b16, exec, plan.tile))
        }
        KernelChoice::SparseSharded => {
            let s = dense_to_sparse(a);
            let t = dense_to_sparse(b);
            sparse_to_dense(&sparse_product_with(&s, &t, None, exec).matrix)
        }
    }
}

/// The engine's self-product `A ⋆ A`: plans like [`min_plus`] but runs the
/// dense families on the blocked-Floyd–Warshall-style **k-tiled** kernel
/// (small row strips held L1-resident across the full `k` sweep — see
/// [`dense::KTILED_ROWS`]) instead of the row-streaming lane kernel. This
/// is the multiply shape of every [`power`]/[`closure`] squaring.
/// Bit-identical to `min_plus(a, a, mode, exec)` for every mode.
pub fn square(a: &DistMatrix, mode: KernelMode, exec: ExecPolicy) -> DistMatrix {
    square_planned(a, &KernelPlan::choose(a, a, mode), exec)
}

/// [`square`] with a precomputed [`KernelPlan`].
pub fn square_planned(a: &DistMatrix, plan: &KernelPlan, exec: ExecPolicy) -> DistMatrix {
    let n = a.n();
    let _sp = kernel_span("square", n, plan);
    match plan.choice {
        KernelChoice::DenseLanes => dense::square_ktiled_opts(a, exec, plan.tile),
        KernelChoice::DenseCompact => {
            if !compact_eligible(a) {
                return dense::square_ktiled_opts(a, exec, plan.tile);
            }
            let a32 = to_compact(a.raw());
            from_compact(n, &ktiled_kernel::<u32>(n, &a32, exec, plan.tile))
        }
        KernelChoice::DenseUltra => {
            if !ultra_eligible(a) {
                return square_planned(
                    a,
                    &KernelPlan {
                        choice: dense_choice(a, a),
                        ..*plan
                    },
                    exec,
                );
            }
            let a16 = to_ultra(a.raw());
            from_ultra(n, &ktiled_kernel::<u16>(n, &a16, exec, plan.tile))
        }
        KernelChoice::SparseSharded => min_plus_planned(a, a, plan, exec),
    }
}

/// `A^h` through the engine: binary exponentiation where every multiply is
/// re-planned (so squaring an adjacency-shaped matrix starts sparse and
/// migrates to the dense kernels as it fills in), and every self-product —
/// the repeated squarings that dominate the exponentiation — runs on the
/// k-tiled [`square`] path. `A^0` is the tropical identity. Bit-identical
/// to [`dense::power`].
pub fn power(a: &DistMatrix, h: u64, mode: KernelMode, exec: ExecPolicy) -> DistMatrix {
    dense::power_by(a, h, |x, y| {
        if std::ptr::eq(x, y) {
            square(x, mode, exec)
        } else {
            min_plus(x, y, mode, exec)
        }
    })
}

/// Exact APSP by repeated engine squaring until fixpoint — every multiply
/// is a self-product and runs on the k-tiled [`square`] path; returns the
/// distance matrix and the number of squarings. Bit-identical to
/// [`dense::closure`].
pub fn closure(a: &DistMatrix, mode: KernelMode, exec: ExecPolicy) -> (DistMatrix, usize) {
    dense::closure_by(a, |x, y| {
        if std::ptr::eq(x, y) {
            square(x, mode, exec)
        } else {
            min_plus(x, y, mode, exec)
        }
    })
}

/// A sparse product routed through the engine: when the operands are dense
/// enough (or `mode` forces it), the multiply runs on the tiled dense
/// kernel and the result is re-sparsified; otherwise the sharded sparse
/// kernel runs directly. Returns the [`SparseProduct`] — matrix, densities,
/// and CDKL21 round charge all **identical** for every mode (the charge is
/// computed from measured densities, never from the kernel that ran) —
/// plus the [`KernelChoice`] that was made.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn sparse_product_planned(
    s: &SparseMatrix,
    t: &SparseMatrix,
    rho_out_hint: Option<f64>,
    mode: KernelMode,
    exec: ExecPolicy,
) -> (SparseProduct, KernelChoice) {
    assert_eq!(s.n(), t.n(), "sparse product dimension mismatch");
    let n = s.n();
    let fill_s = s.density() / n.max(1) as f64;
    let fill_t = t.density() / n.max(1) as f64;
    let go_dense = match mode {
        KernelMode::Dense => true,
        KernelMode::Sparse => false,
        KernelMode::Auto => fill_s * fill_t > SPARSE_FILL_CUTOFF,
    };
    if !go_dense {
        let _sp = kernel_span(
            "spmm",
            n,
            &KernelPlan {
                mode,
                choice: KernelChoice::SparseSharded,
                fill_a: fill_s,
                fill_b: fill_t,
                tile: tile_size(),
            },
        );
        return (
            sparse_product_with(s, t, rho_out_hint, exec),
            KernelChoice::SparseSharded,
        );
    }
    let a = sparse_to_dense(s);
    let b = sparse_to_dense(t);
    let plan = KernelPlan {
        mode,
        choice: dense_choice(&a, &b),
        fill_a: fill_s,
        fill_b: fill_t,
        tile: tile_size(),
    };
    let _sp = kernel_span("spmm", n, &plan);
    let c = min_plus_planned(&a, &b, &plan, exec);
    let out = dense_to_sparse(&c);
    let rho_s = s.density();
    let rho_t = t.density();
    let rho_out = out.density().max(rho_out_hint.unwrap_or(0.0));
    let rounds = cdkl_rounds(n, rho_s, rho_t, rho_out);
    (
        SparseProduct {
            matrix: out,
            densities: (rho_s, rho_t, rho_out),
            rounds,
        },
        plan.choice,
    )
}

/// Dense → sparse: finite entries only, per-row in column order (the same
/// canonical shape [`crate::sparse`] produces).
fn dense_to_sparse(m: &DistMatrix) -> SparseMatrix {
    let n = m.n();
    let rows: Vec<Vec<(NodeId, Weight)>> = (0..n)
        .map(|u| {
            m.row(u)
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, w)| w < INF)
                .collect()
        })
        .collect();
    SparseMatrix::from_rows(n, rows)
}

/// Sparse → dense: missing entries become `∞` (no implicit diagonal).
fn sparse_to_dense(s: &SparseMatrix) -> DistMatrix {
    let n = s.n();
    let mut m = DistMatrix::from_raw(n, vec![INF; n * n]);
    for u in 0..n {
        for &(v, w) in s.row(u) {
            m.set(u, v, w);
        }
    }
    m
}

/// `u64` tropical data → the compact `u32` representation (`≥ INF` maps to
/// the `u32` sentinel; callers must have checked [`COMPACT_MAX_ENTRY`]).
fn to_compact(src: &[Weight]) -> Vec<u32> {
    src.iter()
        .map(|&w| if w >= INF { COMPACT_TOP } else { w as u32 })
        .collect()
}

/// Compact result → `u64` tropical data (`≥` the `u32` sentinel maps back
/// to `INF`).
fn from_compact(n: usize, src: &[u32]) -> DistMatrix {
    let data: Vec<Weight> = src
        .iter()
        .map(|&w| if w >= COMPACT_TOP { INF } else { w as u64 })
        .collect();
    DistMatrix::from_raw(n, data)
}

/// `u64` tropical data → the ultra-compact `u16` representation (`≥ INF`
/// maps to the `u16` sentinel; callers must have checked
/// [`ULTRA_MAX_ENTRY`]).
fn to_ultra(src: &[Weight]) -> Vec<u16> {
    src.iter()
        .map(|&w| if w >= INF { ULTRA_TOP } else { w as u16 })
        .collect()
}

/// Ultra-compact result → `u64` tropical data (`≥` the `u16` sentinel maps
/// back to `INF`).
fn from_ultra(n: usize, src: &[u16]) -> DistMatrix {
    let data: Vec<Weight> = src
        .iter()
        .map(|&w| if w >= ULTRA_TOP { INF } else { w as u64 })
        .collect();
    DistMatrix::from_raw(n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{adjacency_matrix, distance_product};
    use cc_graph::graph::{Direction, Graph};
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, fill: f64, max_w: Weight, seed: u64) -> DistMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<Weight> = (0..n * n)
            .map(|_| {
                if rng.gen_bool(fill) {
                    rng.gen_range(0..=max_w)
                } else {
                    INF
                }
            })
            .collect();
        DistMatrix::from_raw(n, data)
    }

    #[test]
    fn every_mode_matches_naive_reference() {
        for (seed, fill, max_w) in [(1u64, 0.05, 40), (2, 0.5, 40), (3, 0.9, INF - 1)] {
            let a = random_matrix(19, fill, max_w, seed);
            let b = random_matrix(19, fill, max_w, seed + 50);
            let naive = distance_product(&a, &b);
            for mode in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
                let out = min_plus(&a, &b, mode, ExecPolicy::Seq);
                assert_eq!(out, naive, "seed={seed} fill={fill} mode={mode}");
            }
        }
    }

    #[test]
    fn auto_dispatch_tracks_density() {
        let sparse = random_matrix(64, 0.02, 30, 9);
        let dense = random_matrix(64, 0.8, 30, 10);
        assert_eq!(
            KernelPlan::choose(&sparse, &sparse, KernelMode::Auto).choice,
            KernelChoice::SparseSharded
        );
        // Small weights (≤ 30) on a dense matrix land on the u16 kernel.
        let plan = KernelPlan::choose(&dense, &dense, KernelMode::Auto);
        assert_eq!(plan.choice, KernelChoice::DenseUltra);
        assert!(plan.fill_a > 0.5, "fill_a = {}", plan.fill_a);
        // Mid-range weights (> u16 bound, ≤ u32 bound) land on compact.
        let mid = random_matrix(64, 0.8, COMPACT_MAX_ENTRY / 2, 11);
        assert_eq!(
            KernelPlan::choose(&mid, &mid, KernelMode::Auto).choice,
            KernelChoice::DenseCompact
        );
    }

    #[test]
    fn ultra_dispatch_needs_both_operands_bounded() {
        let small = random_matrix(16, 0.9, ULTRA_MAX_ENTRY, 21);
        let mut wide = random_matrix(16, 0.9, ULTRA_MAX_ENTRY, 22);
        wide.set(7, 3, ULTRA_MAX_ENTRY + 1);
        assert_eq!(
            KernelPlan::choose(&small, &small, KernelMode::Dense).choice,
            KernelChoice::DenseUltra
        );
        let demoted = KernelPlan::choose(&small, &wide, KernelMode::Dense);
        assert_eq!(demoted.choice, KernelChoice::DenseCompact);
        // Still bit-identical on the mixed pair.
        let naive = distance_product(&small, &wide);
        assert_eq!(
            min_plus(&small, &wide, KernelMode::Dense, ExecPolicy::Seq),
            naive
        );
    }

    #[test]
    fn ultra_boundary_entries_round_trip() {
        // Entries at exactly the u16 bound still compute exactly (their sum
        // is the largest finite value the kernel can produce).
        let mut a = DistMatrix::infinite(3);
        a.set(0, 1, ULTRA_MAX_ENTRY);
        a.set(1, 2, ULTRA_MAX_ENTRY);
        let plan = KernelPlan::choose(&a, &a, KernelMode::Dense);
        assert_eq!(plan.choice, KernelChoice::DenseUltra);
        let out = min_plus_planned(&a, &a, &plan, ExecPolicy::Seq);
        assert_eq!(out.get(0, 2), 2 * ULTRA_MAX_ENTRY);
        assert_eq!(out, distance_product(&a, &a));
    }

    #[test]
    fn stale_ultra_plan_falls_back_without_truncation() {
        let mut a = random_matrix(10, 0.9, ULTRA_MAX_ENTRY, 23);
        let plan = KernelPlan::choose(&a, &a, KernelMode::Dense);
        assert_eq!(plan.choice, KernelChoice::DenseUltra);
        a.set(0, 1, COMPACT_MAX_ENTRY + 5); // past BOTH narrow bounds
        let out = min_plus_planned(&a, &a, &plan, ExecPolicy::Seq);
        assert_eq!(out, distance_product(&a, &a));
        let sq = square_planned(&a, &plan, ExecPolicy::Seq);
        assert_eq!(sq, distance_product(&a, &a));
    }

    #[test]
    fn engine_square_matches_min_plus_for_every_mode() {
        for (seed, max_w) in [
            (31u64, 40),
            (32, ULTRA_MAX_ENTRY + 9),
            (33, COMPACT_MAX_ENTRY * 2),
        ] {
            for fill in [0.03, 0.6] {
                let a = random_matrix(17, fill, max_w, seed);
                let naive = distance_product(&a, &a);
                for mode in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
                    for threads in [1usize, 2, 4] {
                        let out = square(&a, mode, ExecPolicy::with_threads(threads));
                        assert_eq!(
                            out, naive,
                            "seed={seed} fill={fill} mode={mode} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_width_and_density_are_reported() {
        assert_eq!(KernelChoice::DenseLanes.lane_width(), Some(8));
        assert_eq!(KernelChoice::DenseCompact.lane_width(), Some(8));
        assert_eq!(KernelChoice::DenseUltra.lane_width(), Some(16));
        assert_eq!(KernelChoice::SparseSharded.lane_width(), None);
        assert_eq!(KernelChoice::DenseLanes.bytes_per_cell(), Some(8));
        assert_eq!(KernelChoice::DenseUltra.bytes_per_cell(), Some(2));
    }

    #[test]
    fn sampled_fill_covers_the_whole_row_range() {
        // Regression: first half empty, second half fully dense, at an n
        // where a truncating `n / sample` stride would sample only the
        // empty prefix and report fill ≈ 0.
        let n = 127;
        let mut data = vec![INF; n * n];
        for u in (n / 2)..n {
            for v in 0..n {
                data[u * n + v] = 3;
            }
        }
        let m = DistMatrix::from_raw(n, data);
        let fill = KernelPlan::choose(&m, &m, KernelMode::Auto).fill_a;
        assert!(
            (0.3..=0.7).contains(&fill),
            "half-dense matrix sampled as fill {fill}"
        );
    }

    #[test]
    fn stale_compact_plan_falls_back_to_the_wide_kernel() {
        // A plan chosen for bounded operands, reused after an entry grew
        // past the compact bound, must not truncate.
        let mut a = DistMatrix::infinite(6);
        for u in 0..6 {
            for v in 0..6 {
                a.set(u, v, ULTRA_MAX_ENTRY + 2); // compact, not ultra
            }
        }
        let plan = KernelPlan::choose(&a, &a, KernelMode::Dense);
        assert_eq!(plan.choice, KernelChoice::DenseCompact);
        a.set(0, 1, COMPACT_MAX_ENTRY + 7); // would truncate under `as u32`
        let out = min_plus_planned(&a, &a, &plan, ExecPolicy::Seq);
        assert_eq!(out, distance_product(&a, &a));
    }

    #[test]
    fn wide_entries_disable_the_compact_kernel() {
        let mut wide = random_matrix(16, 0.8, 30, 11);
        wide.set(3, 4, COMPACT_MAX_ENTRY + 1);
        assert_eq!(
            KernelPlan::choose(&wide, &wide, KernelMode::Dense).choice,
            KernelChoice::DenseLanes
        );
        // Still bit-identical.
        let naive = distance_product(&wide, &wide);
        assert_eq!(
            min_plus(&wide, &wide, KernelMode::Dense, ExecPolicy::Seq),
            naive
        );
    }

    #[test]
    fn compact_boundary_entries_round_trip() {
        // Entries at exactly the compact bound still compute exactly.
        let mut a = DistMatrix::infinite(3);
        a.set(0, 1, COMPACT_MAX_ENTRY);
        a.set(1, 2, COMPACT_MAX_ENTRY);
        let plan = KernelPlan::choose(&a, &a, KernelMode::Dense);
        assert_eq!(plan.choice, KernelChoice::DenseCompact);
        let out = min_plus_planned(&a, &a, &plan, ExecPolicy::Seq);
        assert_eq!(out.get(0, 2), 2 * COMPACT_MAX_ENTRY);
        assert_eq!(out, distance_product(&a, &a));
    }

    #[test]
    fn engine_power_matches_dense_power() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut edges = Vec::new();
        for u in 0..14usize {
            for v in (u + 1)..14 {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(1..40u64)));
                }
            }
        }
        let g = Graph::from_edges(14, Direction::Undirected, &edges);
        let a = adjacency_matrix(&g);
        for h in [0u64, 1, 3, 6] {
            let reference = crate::dense::power(&a, h);
            for mode in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
                assert_eq!(
                    power(&a, h, mode, ExecPolicy::Seq),
                    reference,
                    "h={h} mode={mode}"
                );
            }
        }
    }

    #[test]
    fn engine_closure_matches_dense_closure() {
        let a = random_matrix(12, 0.3, 50, 13);
        let (reference, ref_sq) = crate::dense::closure(&a);
        for mode in [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse] {
            let (out, sq) = closure(&a, mode, ExecPolicy::Seq);
            assert_eq!(out, reference, "mode={mode}");
            assert_eq!(sq, ref_sq, "mode={mode}");
        }
    }

    #[test]
    fn sparse_product_planned_is_mode_invariant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mk = |rng: &mut rand::rngs::StdRng, per_row: usize| {
            let rows = (0..20)
                .map(|_| {
                    (0..per_row)
                        .map(|_| (rng.gen_range(0..20), rng.gen_range(0..100u64)))
                        .collect()
                })
                .collect();
            SparseMatrix::from_rows(20, rows)
        };
        let s = mk(&mut rng, 12);
        let t = mk(&mut rng, 9);
        let (reference, _) =
            sparse_product_planned(&s, &t, Some(3.0), KernelMode::Sparse, ExecPolicy::Seq);
        for mode in [KernelMode::Auto, KernelMode::Dense] {
            let (out, _) = sparse_product_planned(&s, &t, Some(3.0), mode, ExecPolicy::Seq);
            assert_eq!(out.matrix, reference.matrix, "mode={mode}");
            assert_eq!(out.densities, reference.densities, "mode={mode}");
            assert_eq!(out.rounds, reference.rounds, "mode={mode}");
        }
    }

    #[test]
    fn kernel_mode_parses_and_prints() {
        assert_eq!(KernelMode::parse("dense"), Some(KernelMode::Dense));
        assert_eq!(KernelMode::parse(" sparse "), Some(KernelMode::Sparse));
        assert_eq!(KernelMode::parse("auto"), Some(KernelMode::Auto));
        assert_eq!(KernelMode::parse("fast"), None);
        assert_eq!(KernelMode::Dense.to_string(), "dense");
        assert_eq!("auto".parse::<KernelMode>(), Ok(KernelMode::Auto));
        assert!("bogus".parse::<KernelMode>().is_err());
    }
}
